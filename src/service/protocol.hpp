// The losynthd wire protocol: one JSON object per input line, one JSON
// object per output line, so any language with a JSON library can drive
// the synthesis flow over a pipe without linking C++.
//
// Ops (field "op"):
//   synthesize  run (or cache-serve) one job; {"async":true} returns the
//               job id immediately instead of blocking
//   wait        block until an async job finishes and return its outcome
//   cancel      cancel a queued/running job by id
//   sweep       submit a list of jobs and return outcomes in order
//   stats       scheduler + cache metrics snapshot (metrics.hpp schema)
//   health      queue / circuit-breaker / journal liveness snapshot
//   topologies  registered topology names
//   shutdown    acknowledge and stop the read loop
//
// Higher layers extend the protocol without a dependency cycle through
// registerOp() / registerStatsSection(): lo_explore installs its
// explore / explore_result ops this way (explore/service_ops.hpp).
//
// Every response carries "ok"; failures put a human-readable reason in
// "error" and never kill the daemon: malformed JSON and over-long lines
// (kMaxRequestLineBytes) answer {"ok":false,...}.
// Admission rejections answer with a *structured* error object instead of
// a bare string -- {"error":{"code":"overloaded"|"circuit_open"|
// "queue_full","message":...,"queue_depth":N,"retry_after_ms":N}} -- so
// clients can back off programmatically.  An unknown op answers the same
// way: {"error":{"code":"unknown_op","message":...,"known_ops":[...]}}.
//
// Synthesize / sweep acks carry the job's content-addressed result-cache
// key ("cache_key", absent for no_cache jobs), so routers and smokes can
// address results -- and shard them -- without re-deriving FNV-1a hashes
// client-side.  {"summary":true} omits the (large) "result" body from
// done outcomes; the result stays addressable through the cache key.
// See README.md for a request / response example and DESIGN.md for the
// full schema.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>

#include "service/scheduler.hpp"

namespace lo::service {

/// Requests longer than this are rejected with a structured error before
/// parsing, so a hostile or broken client cannot balloon daemon memory.
inline constexpr std::size_t kMaxRequestLineBytes = 1 << 20;

/// Parse the shared job fields of a synthesize/sweep entry (topology,
/// case, model, bias, spec, corner, priority, deadline_seconds,
/// max_retries, no_cache).  This is the protocol's lenient schema, not the
/// journal's full-fidelity one (serialize.hpp); it is exposed so the
/// cluster router derives exactly the cache key the shard will.
[[nodiscard]] JobRequest parseJobRequest(const Json& request);

class ServiceProtocol {
 public:
  explicit ServiceProtocol(JobScheduler& scheduler) : scheduler_(scheduler) {}

  /// Handle one request line; always returns a single-line JSON response.
  [[nodiscard]] std::string handleLine(const std::string& line);

  /// True once a shutdown request has been acknowledged.
  [[nodiscard]] bool shutdownRequested() const { return shutdown_; }

  /// Serve line-by-line until EOF or shutdown; flushes after every line.
  void serve(std::istream& in, std::ostream& out);

  /// Extension seam for higher layers: handle requests whose "op" equals
  /// `op` with `handler`.  Built-in ops cannot be overridden; registering
  /// a duplicate extension op throws std::invalid_argument.  Handlers run
  /// on the protocol thread; thrown exceptions become {"ok":false,...}.
  using OpHandler = std::function<Json(const Json& request)>;
  void registerOp(const std::string& op, OpHandler handler);

  /// Add a named section to the `stats` response (e.g. "explorations").
  using StatsProvider = std::function<Json()>;
  void registerStatsSection(const std::string& key, StatsProvider provider);

  /// Test seam (testkit fault plans): transform every response line just
  /// before it leaves handleLine().  Used to emit truncated / corrupted
  /// responses deterministically, so client-side transport-error handling
  /// can be exercised; identity when unset.  The daemon itself never sees
  /// the transform's output -- its state advances exactly as if the clean
  /// response had been sent.
  void setResponseTransform(std::function<std::string(std::string)> transform) {
    responseTransform_ = std::move(transform);
  }

 private:
  [[nodiscard]] Json handle(const Json& request);
  [[nodiscard]] Json handleSynthesize(const Json& request);
  [[nodiscard]] Json handleSweep(const Json& request);
  [[nodiscard]] Json handleStats() const;
  [[nodiscard]] Json handleHealth() const;
  [[nodiscard]] Json outcomeJson(const JobStatus& status, bool includeTrace,
                                 bool summary) const;

  JobScheduler& scheduler_;
  bool shutdown_ = false;
  std::map<std::string, OpHandler> extraOps_;
  std::map<std::string, StatsProvider> statsSections_;
  std::function<std::string(std::string)> responseTransform_;
};

}  // namespace lo::service
