// The losynthd wire protocol: one JSON object per input line, one JSON
// object per output line, so any language with a JSON library can drive
// the synthesis flow over a pipe without linking C++.
//
// Ops (field "op"):
//   synthesize  run (or cache-serve) one job; {"async":true} returns the
//               job id immediately instead of blocking
//   wait        block until an async job finishes and return its outcome
//   cancel      cancel a queued/running job by id
//   sweep       submit a list of jobs and return outcomes in order
//   stats       scheduler + cache metrics snapshot (metrics.hpp schema)
//   topologies  registered topology names
//   shutdown    acknowledge and stop the read loop
//
// Every response carries "ok"; failures put a human-readable reason in
// "error" and never kill the daemon.  See README.md for a request /
// response example and DESIGN.md for the full schema.
#pragma once

#include <iosfwd>
#include <string>

#include "service/scheduler.hpp"

namespace lo::service {

class ServiceProtocol {
 public:
  explicit ServiceProtocol(JobScheduler& scheduler) : scheduler_(scheduler) {}

  /// Handle one request line; always returns a single-line JSON response.
  [[nodiscard]] std::string handleLine(const std::string& line);

  /// True once a shutdown request has been acknowledged.
  [[nodiscard]] bool shutdownRequested() const { return shutdown_; }

  /// Serve line-by-line until EOF or shutdown; flushes after every line.
  void serve(std::istream& in, std::ostream& out);

 private:
  [[nodiscard]] Json handle(const Json& request);
  [[nodiscard]] Json handleSynthesize(const Json& request);
  [[nodiscard]] Json handleSweep(const Json& request);
  [[nodiscard]] Json handleStats() const;
  /// Parse the shared job fields of a synthesize/sweep entry.
  [[nodiscard]] JobRequest parseJob(const Json& request) const;
  [[nodiscard]] Json outcomeJson(const JobStatus& status, bool includeTrace) const;

  JobScheduler& scheduler_;
  bool shutdown_ = false;
};

}  // namespace lo::service
