// JobJournal: the scheduler's crash-safety spine -- an append-only,
// fsync'd, write-ahead log of job lifecycle records -- plus FramedLog,
// the reusable checksummed frame layer underneath it (shared with the
// explore session journal, so every durable log in the system tears and
// recovers the same way).
//
// Every record is framed as
//
//   u32 payload length (little-endian)  |  u64 FNV-1a of the payload  |  payload
//
// where the payload is one compact JSON object ({"type":"submitted",...}).
// Durable appends (the default) are on disk before they return (fwrite +
// fflush + fsync), so a job whose submission was acknowledged is
// guaranteed to be found by a replay after a SIGKILL.  Callers may mark an
// append non-durable (append(rec, false)): it is still flushed to the OS
// -- so it survives a process kill and stays visible to replayFile() --
// but skips the fsync; the scheduler uses this for lifecycle records
// (started/retried/finished/cancelled), whose loss at worst re-enqueues a
// finished job that the content-addressed result cache then serves without
// an engine re-run.  Because every durable append flushes its
// predecessors, the log is always a prefix-consistent record sequence.
//
// A process that dies mid-append leaves a *torn* final record; replay()
// tolerates exactly that -- it stops at the first frame whose length runs
// past EOF or whose checksum mismatches, truncates the wreckage away, and
// reports everything before it.  An append that *fails* mid-write (short
// fwrite, e.g. transient ENOSPC) truncates the log back to the last good
// frame boundary before throwing, so later acknowledged appends are never
// stranded behind a torn frame; only if that truncation itself fails does
// the journal freeze fail-stop.
//
// Replay semantics (what JobScheduler does with the digest):
//   * a `submitted` record with no `finished`/`cancelled` counterpart is a
//     job the dead process still owed an answer for -> re-enqueue it;
//   * a job with a terminal record needs nothing: its result (if "done")
//     is already in the result cache, keyed by the record's cache key;
//   * replay is idempotent -- replaying the same log twice yields the same
//     digest, and re-enqueued jobs keep their original ids.
//
// compact() rewrites the log to only the still-live submitted records once
// the recovered backlog has drained, so the journal never grows without
// bound across restarts.
//
// The journal speaks Json, not JobRequest: the scheduler serialises
// requests through service/serialize.hpp, which keeps this file free of
// scheduler dependencies (the replay bench loads journals standalone).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace lo::service {

// --------------------------------------------------------------------------
// FramedLog: the checksummed frame layer, payload-agnostic.

struct FramedLogOptions {
  /// Full path of the log file; the parent directory is created if
  /// missing.  Must be non-empty.
  std::string path;
  /// fsync every frame appended with durable=true (the crash-safety
  /// guarantee).  Turning this off trades durability of the last few
  /// frames for throughput; replay still works on whatever reached the
  /// disk.  Non-durable appends only fflush regardless.
  bool fsyncEachRecord = true;
  /// Test seam (testkit journal_torn_write): consulted once per append.
  /// Firing writes only the first half of the frame and freezes the log
  /// -- byte-for-byte what a process SIGKILLed mid-append leaves.
  std::function<bool()> tornWriteFault;
  /// Test seam: a firing append writes only half its frame and *fails*
  /// without freezing -- a transient short write (ENOSPC), exercising the
  /// truncate-back-to-good-boundary recovery in append().
  std::function<bool()> shortWriteFault;
};

/// What a frame-level replay found: every intact payload in log order.
struct FrameReplay {
  std::vector<std::string> payloads;
  bool tornTail = false;             ///< A torn final frame was dropped.
  std::uint64_t truncatedBytes = 0;  ///< Bytes past the last good boundary.
};

/// An append-only log of checksummed frames with torn-tail recovery.  All
/// higher-level journals (job journal, explore session journal) are thin
/// record codecs over this class, so they share one tear/recovery/compact
/// behaviour and one on-disk format.
class FramedLog {
 public:
  explicit FramedLog(FramedLogOptions options);
  ~FramedLog();

  FramedLog(const FramedLog&) = delete;
  FramedLog& operator=(const FramedLog&) = delete;

  /// Payload validator: a frame whose bytes checksum correctly but whose
  /// payload the owning record layer cannot decode is treated exactly like
  /// a torn frame (it and everything after it is truncated away).
  using PayloadValidator = std::function<bool(const std::string&)>;

  /// Read the log, truncating a torn tail so later appends start on a
  /// clean frame boundary, and return every intact payload.  Safe to call
  /// again later; throws std::runtime_error only on I/O errors, never on
  /// torn data.
  [[nodiscard]] FrameReplay replay(const PayloadValidator& valid = {});

  /// Parse a log file read-only (no truncation, no side effects).
  [[nodiscard]] static FrameReplay replayFile(const std::string& path,
                                              const PayloadValidator& valid = {});

  /// Append one payload; durable (the default) fsyncs before returning.  A
  /// failed write truncates back to the last good frame boundary and
  /// throws; the log freezes only if even the truncation fails.  No-op
  /// after freeze().
  void append(const std::string& payload, bool durable = true);

  /// Rewrite the log to exactly `payloads`, via tmp + fsync + rename.
  /// No-op after freeze().
  void rewrite(const std::vector<std::string>& payloads);

  /// Test seam: silently drop every subsequent append/rewrite, as if the
  /// process had died at this instant.  The file keeps whatever it holds.
  void freeze();

  [[nodiscard]] const std::string& path() const { return options_.path; }
  [[nodiscard]] std::uint64_t recordsInLog() const;  ///< Frames currently on disk.
  [[nodiscard]] std::uint64_t appended() const;      ///< Appends since open.
  [[nodiscard]] std::uint64_t compactions() const;   ///< rewrite() count.
  [[nodiscard]] bool frozen() const;

 private:
  void closeLocked();
  bool openForAppendLocked();
  bool writeFrameLocked(std::FILE* f, const std::string& payload, bool durable);

  FramedLogOptions options_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  bool frozen_ = false;
  /// Offset of the last fully-appended frame boundary in the open log;
  /// a failed append truncates back to here.
  std::uint64_t goodOffset_ = 0;
  std::uint64_t recordsInLog_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t compactions_ = 0;
};

// --------------------------------------------------------------------------
// JobJournal: the scheduler's record layer over FramedLog.

enum class JournalRecordType { kSubmitted, kStarted, kRetried, kFinished, kCancelled };

[[nodiscard]] constexpr const char* journalRecordTypeName(JournalRecordType t) {
  switch (t) {
    case JournalRecordType::kSubmitted: return "submitted";
    case JournalRecordType::kStarted: return "started";
    case JournalRecordType::kRetried: return "retried";
    case JournalRecordType::kFinished: return "finished";
    case JournalRecordType::kCancelled: return "cancelled";
  }
  return "?";
}

/// Inverse of journalRecordTypeName; throws std::invalid_argument.
[[nodiscard]] JournalRecordType journalRecordTypeFromName(const std::string& name);

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kSubmitted;
  std::uint64_t id = 0;    ///< Scheduler job id; stable across restarts.
  std::string cacheKey;    ///< Result-cache key ("" for bypass-cache jobs).
  std::string state;       ///< Terminal state name (kFinished only).
  int attempt = 0;         ///< Attempt / retry ordinal (kStarted, kRetried).
  Json job;                ///< Serialised JobRequest (kSubmitted only).

  [[nodiscard]] Json toJson() const;
  [[nodiscard]] static JournalRecord fromJson(const Json& j);
};

struct JournalOptions {
  /// Directory holding the log (created if missing); empty disables the
  /// journal entirely at the scheduler level.
  std::string dir;
  /// See FramedLogOptions::fsyncEachRecord.
  bool fsyncEachRecord = true;
  /// See FramedLogOptions::tornWriteFault / shortWriteFault.
  std::function<bool()> tornWriteFault;
  std::function<bool()> shortWriteFault;
};

/// What a replay found.  `records` holds every intact record in log order;
/// `pending` is the digest the scheduler acts on.
struct JournalReplay {
  std::vector<JournalRecord> records;
  std::vector<JournalRecord> pending;  ///< Submitted, never finished/cancelled.
  std::uint64_t finished = 0;          ///< Terminal records seen.
  std::uint64_t maxId = 0;
  bool tornTail = false;               ///< A torn final record was dropped.
  std::uint64_t truncatedBytes = 0;    ///< Bytes cut from the tail.
};

class JobJournal {
 public:
  explicit JobJournal(JournalOptions options);

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Read the log, truncating a torn tail so later appends start on a
  /// clean frame boundary, and return the digest.  Safe to call again
  /// later (tests replay twice to prove idempotence); throws
  /// std::runtime_error only on I/O errors, never on torn data.
  [[nodiscard]] JournalReplay replay();

  /// Parse a journal file read-only (no truncation, no side effects).
  [[nodiscard]] static JournalReplay replayFile(const std::string& path);

  /// Append one record; durable (the default) fsyncs before returning,
  /// non-durable only flushes (see the header comment for when that is
  /// sound).  A failed write truncates back to the last good frame
  /// boundary and throws; the journal freezes only if even the truncation
  /// fails.  No-op after simulateCrash().
  void append(const JournalRecord& record, bool durable = true);

  /// Rewrite the log to exactly `live` (the still-running/queued submitted
  /// records), dropping everything replay would discard.  No-op after
  /// simulateCrash().
  void compact(const std::vector<JournalRecord>& live);

  /// Test seam: silently drop every subsequent append/compact, as if the
  /// process had died at this instant.  The file keeps whatever it holds.
  void simulateCrash() { log_.freeze(); }

  [[nodiscard]] std::string logPath() const { return log_.path(); }
  [[nodiscard]] std::uint64_t recordsInLog() const { return log_.recordsInLog(); }
  [[nodiscard]] std::uint64_t appended() const { return log_.appended(); }
  [[nodiscard]] std::uint64_t compactions() const { return log_.compactions(); }
  [[nodiscard]] bool frozen() const { return log_.frozen(); }

 private:
  FramedLog log_;
};

}  // namespace lo::service
