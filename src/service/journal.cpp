#include "service/journal.hpp"

#include <cstring>
#include <filesystem>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "service/cache.hpp"  // ResultCache::fnv1a

namespace lo::service {

namespace {

/// 8-byte file magic; bump the digit when the frame layout changes so a
/// stale-format log is reset instead of misparsed.
constexpr char kMagic[8] = {'L', 'O', 'S', 'W', 'A', 'L', '1', '\n'};
constexpr std::size_t kMagicBytes = sizeof kMagic;
constexpr std::size_t kFrameHeaderBytes = 4 + 8;  // u32 length + u64 checksum.
/// Sanity bound on one record; anything larger is treated as corruption.
constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

void putU32(unsigned char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}
void putU64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint32_t getU32(const unsigned char* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}
std::uint64_t getU64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

bool syncFile(std::FILE* f) {
  bool ok = std::fflush(f) == 0;
#ifndef _WIN32
  ok = fsync(fileno(f)) == 0 && ok;
#endif
  return ok;
}

std::string frameBytes(const std::string& payload) {
  std::string frame(kFrameHeaderBytes, '\0');
  putU32(reinterpret_cast<unsigned char*>(frame.data()),
         static_cast<std::uint32_t>(payload.size()));
  putU64(reinterpret_cast<unsigned char*>(frame.data()) + 4,
         ResultCache::fnv1a(payload));
  frame += payload;
  return frame;
}

}  // namespace

JournalRecordType journalRecordTypeFromName(const std::string& name) {
  for (const JournalRecordType t :
       {JournalRecordType::kSubmitted, JournalRecordType::kStarted,
        JournalRecordType::kRetried, JournalRecordType::kFinished,
        JournalRecordType::kCancelled}) {
    if (name == journalRecordTypeName(t)) return t;
  }
  throw std::invalid_argument("unknown journal record type \"" + name + "\"");
}

Json JournalRecord::toJson() const {
  Json j = Json::object();
  j.set("type", journalRecordTypeName(type));
  j.set("id", id);
  switch (type) {
    case JournalRecordType::kSubmitted:
      j.set("key", cacheKey);
      j.set("job", job);
      break;
    case JournalRecordType::kStarted:
    case JournalRecordType::kRetried:
      j.set("attempt", attempt);
      break;
    case JournalRecordType::kFinished:
      j.set("state", state);
      j.set("key", cacheKey);
      break;
    case JournalRecordType::kCancelled:
      break;
  }
  return j;
}

JournalRecord JournalRecord::fromJson(const Json& j) {
  JournalRecord rec;
  rec.type = journalRecordTypeFromName(j.at("type").asString());
  rec.id = j.at("id").asUint64();
  rec.cacheKey = j.at("key").asString();
  rec.state = j.at("state").asString();
  rec.attempt = j.at("attempt").asInt();
  if (const Json* job = j.find("job")) rec.job = *job;
  return rec;
}

JobJournal::JobJournal(JournalOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw std::invalid_argument("JobJournal needs a directory");
  }
  std::filesystem::create_directories(options_.dir);
}

JobJournal::~JobJournal() {
  const std::lock_guard<std::mutex> lock(mutex_);
  closeLocked();
}

std::string JobJournal::logPath() const {
  return (std::filesystem::path(options_.dir) / "journal.wal").string();
}

void JobJournal::closeLocked() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool JobJournal::openForAppendLocked() {
  if (file_ != nullptr) return true;
  const std::string path = logPath();
  const bool fresh = !std::filesystem::exists(path) ||
                     std::filesystem::file_size(path) == 0;
  goodOffset_ = fresh ? 0 : std::filesystem::file_size(path);
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) return false;
  if (fresh) {
    if (std::fwrite(kMagic, 1, kMagicBytes, file_) != kMagicBytes ||
        !syncFile(file_)) {
      closeLocked();
      return false;
    }
    goodOffset_ = kMagicBytes;
  }
  return true;
}

bool JobJournal::writeFrameLocked(std::FILE* f, const std::string& payload,
                                  bool durable) {
  const std::string frame = frameBytes(payload);
  if (options_.tornWriteFault && options_.tornWriteFault()) {
    // The injected SIGKILL-mid-write: half a frame reaches the disk and
    // the process never writes again.
    const std::size_t torn = frame.size() / 2;
    (void)std::fwrite(frame.data(), 1, torn, f);
    (void)syncFile(f);
    frozen_ = true;
    return false;
  }
  if (options_.shortWriteFault && options_.shortWriteFault()) {
    // The injected transient ENOSPC: half a frame lands and the write
    // reports failure, but the journal itself survives.
    (void)std::fwrite(frame.data(), 1, frame.size() / 2, f);
    return false;
  }
  bool ok = std::fwrite(frame.data(), 1, frame.size(), f) == frame.size();
  if (durable && options_.fsyncEachRecord) {
    ok = syncFile(f) && ok;
  } else {
    // Flush to the OS so the frame survives a process kill and stays
    // visible to replayFile(); only the fsync (power-loss durability) is
    // skipped for non-durable records.
    ok = std::fflush(f) == 0 && ok;
  }
  return ok;
}

void JobJournal::append(const JournalRecord& record, bool durable) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (frozen_) return;
  if (!openForAppendLocked()) {
    throw std::runtime_error("journal: cannot open " + logPath() +
                             " for append");
  }
  const std::string payload = record.toJson().dump();
  if (writeFrameLocked(file_, payload, durable)) {
    ++appended_;
    ++recordsInLog_;
    goodOffset_ += kFrameHeaderBytes + payload.size();
  } else if (!frozen_) {
    // Part of the frame may have reached the disk.  Leaving it there would
    // strand every later (possibly acknowledged and fsync'd) append behind
    // a torn frame that replay stops at -- so cut back to the last good
    // frame boundary; if even that fails, freeze fail-stop.
    closeLocked();
    std::error_code ec;
    std::filesystem::resize_file(logPath(), goodOffset_, ec);
    if (ec) {
      frozen_ = true;
      throw std::runtime_error("journal: append to " + logPath() +
                               " failed and the torn tail could not be "
                               "truncated; journal frozen");
    }
    throw std::runtime_error("journal: append to " + logPath() +
                             " failed (torn tail truncated)");
  }
}

JournalReplay JobJournal::replay() {
  const std::lock_guard<std::mutex> lock(mutex_);
  closeLocked();  // Reopen cleanly after any truncation below.

  JournalReplay replay = replayFile(logPath());
  if (replay.truncatedBytes > 0 && !frozen_) {
    // Cut the torn tail (or a stale-format file) away so the next append
    // starts on a clean frame boundary.
    const std::string path = logPath();
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec && size >= replay.truncatedBytes) {
      std::filesystem::resize_file(path, size - replay.truncatedBytes, ec);
    }
    if (ec) {
      throw std::runtime_error("journal: cannot truncate torn tail of " + path);
    }
  }
  recordsInLog_ = replay.records.size();
  return replay;
}

JournalReplay JobJournal::replayFile(const std::string& path) {
  JournalReplay replay;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return replay;  // No log yet: empty digest.

  std::fseek(f, 0, SEEK_END);
  const long fileSize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);

  char magic[kMagicBytes];
  std::size_t good = 0;  // Offset of the last intact frame boundary.
  if (std::fread(magic, 1, kMagicBytes, f) == kMagicBytes &&
      std::memcmp(magic, kMagic, kMagicBytes) == 0) {
    good = kMagicBytes;
    for (;;) {
      unsigned char header[kFrameHeaderBytes];
      if (std::fread(header, 1, kFrameHeaderBytes, f) != kFrameHeaderBytes) break;
      const std::uint32_t length = getU32(header);
      const std::uint64_t checksum = getU64(header + 4);
      if (length > kMaxPayloadBytes) break;
      std::string payload(length, '\0');
      if (length > 0 && std::fread(payload.data(), 1, length, f) != length) break;
      if (ResultCache::fnv1a(payload) != checksum) break;
      JournalRecord record;
      try {
        record = JournalRecord::fromJson(Json::parse(payload));
      } catch (const std::exception&) {
        break;  // A checksummed-but-unparseable payload: treat as torn.
      }
      replay.records.push_back(std::move(record));
      good += kFrameHeaderBytes + length;
    }
  }
  std::fclose(f);

  if (fileSize > 0 && static_cast<std::size_t>(fileSize) > good) {
    replay.tornTail = good > 0;  // A bad magic is a reset, not a torn tail.
    replay.truncatedBytes = static_cast<std::uint64_t>(fileSize) - good;
  }

  // Digest: which submitted jobs never reached a terminal record.
  std::vector<std::uint64_t> terminalIds;
  for (const JournalRecord& rec : replay.records) {
    if (rec.id > replay.maxId) replay.maxId = rec.id;
    if (rec.type == JournalRecordType::kFinished ||
        rec.type == JournalRecordType::kCancelled) {
      terminalIds.push_back(rec.id);
      ++replay.finished;
    }
  }
  for (const JournalRecord& rec : replay.records) {
    if (rec.type != JournalRecordType::kSubmitted) continue;
    bool done = false;
    for (const std::uint64_t id : terminalIds) {
      if (id == rec.id) {
        done = true;
        break;
      }
    }
    if (!done) replay.pending.push_back(rec);
  }
  return replay;
}

void JobJournal::compact(const std::vector<JournalRecord>& live) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (frozen_) return;
  closeLocked();

  const std::string path = logPath();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("journal: cannot open " + tmp + " for compaction");
  }
  bool ok = std::fwrite(kMagic, 1, kMagicBytes, f) == kMagicBytes;
  for (const JournalRecord& rec : live) {
    if (!ok || frozen_) break;
    // Non-durable per frame: the single syncFile below covers the whole
    // rewrite, instead of one fsync per live record.
    ok = writeFrameLocked(f, rec.toJson().dump(), /*durable=*/false) && ok;
  }
  ok = syncFile(f) && ok;
  ok = std::fclose(f) == 0 && ok;
  if (frozen_) return;  // tornWriteFault fired mid-compaction.
  std::error_code ec;
  if (ok) {
    std::filesystem::rename(tmp, path, ec);
    ok = !ec;
  } else {
    std::filesystem::remove(tmp, ec);
  }
  if (!ok) {
    throw std::runtime_error("journal: compaction of " + path + " failed");
  }
  recordsInLog_ = live.size();
  ++compactions_;
}

void JobJournal::simulateCrash() {
  const std::lock_guard<std::mutex> lock(mutex_);
  frozen_ = true;
  closeLocked();
}

std::uint64_t JobJournal::recordsInLog() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recordsInLog_;
}

std::uint64_t JobJournal::appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::uint64_t JobJournal::compactions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return compactions_;
}

bool JobJournal::frozen() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return frozen_;
}

}  // namespace lo::service
