#include "service/journal.hpp"

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "service/cache.hpp"  // ResultCache::fnv1a

namespace lo::service {

namespace {

/// 8-byte file magic; bump the digit when the frame layout changes so a
/// stale-format log is reset instead of misparsed.
constexpr char kMagic[8] = {'L', 'O', 'S', 'W', 'A', 'L', '1', '\n'};
constexpr std::size_t kMagicBytes = sizeof kMagic;
constexpr std::size_t kFrameHeaderBytes = 4 + 8;  // u32 length + u64 checksum.
/// Sanity bound on one record; anything larger is treated as corruption.
constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

void putU32(unsigned char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}
void putU64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint32_t getU32(const unsigned char* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}
std::uint64_t getU64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

bool syncFile(std::FILE* f) {
  bool ok = std::fflush(f) == 0;
#ifndef _WIN32
  ok = fsync(fileno(f)) == 0 && ok;
#endif
  return ok;
}

std::string frameBytes(const std::string& payload) {
  std::string frame(kFrameHeaderBytes, '\0');
  putU32(reinterpret_cast<unsigned char*>(frame.data()),
         static_cast<std::uint32_t>(payload.size()));
  putU64(reinterpret_cast<unsigned char*>(frame.data()) + 4,
         ResultCache::fnv1a(payload));
  frame += payload;
  return frame;
}

}  // namespace

// --------------------------------------------------------------------------
// FramedLog

FramedLog::FramedLog(FramedLogOptions options) : options_(std::move(options)) {
  if (options_.path.empty()) {
    throw std::invalid_argument("FramedLog needs a path");
  }
  const std::filesystem::path parent =
      std::filesystem::path(options_.path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
}

FramedLog::~FramedLog() {
  const std::lock_guard<std::mutex> lock(mutex_);
  closeLocked();
}

void FramedLog::closeLocked() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool FramedLog::openForAppendLocked() {
  if (file_ != nullptr) return true;
  const std::string& path = options_.path;
  const bool fresh = !std::filesystem::exists(path) ||
                     std::filesystem::file_size(path) == 0;
  goodOffset_ = fresh ? 0 : std::filesystem::file_size(path);
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) return false;
  if (fresh) {
    if (std::fwrite(kMagic, 1, kMagicBytes, file_) != kMagicBytes ||
        !syncFile(file_)) {
      closeLocked();
      return false;
    }
    goodOffset_ = kMagicBytes;
  }
  return true;
}

bool FramedLog::writeFrameLocked(std::FILE* f, const std::string& payload,
                                 bool durable) {
  const std::string frame = frameBytes(payload);
  if (options_.tornWriteFault && options_.tornWriteFault()) {
    // The injected SIGKILL-mid-write: half a frame reaches the disk and
    // the process never writes again.
    const std::size_t torn = frame.size() / 2;
    (void)std::fwrite(frame.data(), 1, torn, f);
    (void)syncFile(f);
    frozen_ = true;
    return false;
  }
  if (options_.shortWriteFault && options_.shortWriteFault()) {
    // The injected transient ENOSPC: half a frame lands and the write
    // reports failure, but the log itself survives.
    (void)std::fwrite(frame.data(), 1, frame.size() / 2, f);
    return false;
  }
  bool ok = std::fwrite(frame.data(), 1, frame.size(), f) == frame.size();
  if (durable && options_.fsyncEachRecord) {
    ok = syncFile(f) && ok;
  } else {
    // Flush to the OS so the frame survives a process kill and stays
    // visible to replayFile(); only the fsync (power-loss durability) is
    // skipped for non-durable records.
    ok = std::fflush(f) == 0 && ok;
  }
  return ok;
}

void FramedLog::append(const std::string& payload, bool durable) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (frozen_) return;
  if (!openForAppendLocked()) {
    throw std::runtime_error("journal: cannot open " + options_.path +
                             " for append");
  }
  if (writeFrameLocked(file_, payload, durable)) {
    ++appended_;
    ++recordsInLog_;
    goodOffset_ += kFrameHeaderBytes + payload.size();
  } else if (!frozen_) {
    // Part of the frame may have reached the disk.  Leaving it there would
    // strand every later (possibly acknowledged and fsync'd) append behind
    // a torn frame that replay stops at -- so cut back to the last good
    // frame boundary; if even that fails, freeze fail-stop.
    closeLocked();
    std::error_code ec;
    std::filesystem::resize_file(options_.path, goodOffset_, ec);
    if (ec) {
      frozen_ = true;
      throw std::runtime_error("journal: append to " + options_.path +
                               " failed and the torn tail could not be "
                               "truncated; journal frozen");
    }
    throw std::runtime_error("journal: append to " + options_.path +
                             " failed (torn tail truncated)");
  }
}

FrameReplay FramedLog::replay(const PayloadValidator& valid) {
  const std::lock_guard<std::mutex> lock(mutex_);
  closeLocked();  // Reopen cleanly after any truncation below.

  FrameReplay replay = replayFile(options_.path, valid);
  if (replay.truncatedBytes > 0 && !frozen_) {
    // Cut the torn tail (or a stale-format file) away so the next append
    // starts on a clean frame boundary.
    const std::string& path = options_.path;
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec && size >= replay.truncatedBytes) {
      std::filesystem::resize_file(path, size - replay.truncatedBytes, ec);
    }
    if (ec) {
      throw std::runtime_error("journal: cannot truncate torn tail of " + path);
    }
  }
  recordsInLog_ = replay.payloads.size();
  return replay;
}

FrameReplay FramedLog::replayFile(const std::string& path,
                                  const PayloadValidator& valid) {
  FrameReplay replay;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return replay;  // No log yet: empty digest.

  std::fseek(f, 0, SEEK_END);
  const long fileSize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);

  char magic[kMagicBytes];
  std::size_t good = 0;  // Offset of the last intact frame boundary.
  if (std::fread(magic, 1, kMagicBytes, f) == kMagicBytes &&
      std::memcmp(magic, kMagic, kMagicBytes) == 0) {
    good = kMagicBytes;
    for (;;) {
      unsigned char header[kFrameHeaderBytes];
      if (std::fread(header, 1, kFrameHeaderBytes, f) != kFrameHeaderBytes) break;
      const std::uint32_t length = getU32(header);
      const std::uint64_t checksum = getU64(header + 4);
      if (length > kMaxPayloadBytes) break;
      std::string payload(length, '\0');
      if (length > 0 && std::fread(payload.data(), 1, length, f) != length) break;
      if (ResultCache::fnv1a(payload) != checksum) break;
      // A checksummed frame the record layer cannot decode is treated as
      // torn: it and everything after it is cut away.
      if (valid && !valid(payload)) break;
      replay.payloads.push_back(std::move(payload));
      good += kFrameHeaderBytes + length;
    }
  }
  std::fclose(f);

  if (fileSize > 0 && static_cast<std::size_t>(fileSize) > good) {
    replay.tornTail = good > 0;  // A bad magic is a reset, not a torn tail.
    replay.truncatedBytes = static_cast<std::uint64_t>(fileSize) - good;
  }
  return replay;
}

void FramedLog::rewrite(const std::vector<std::string>& payloads) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (frozen_) return;
  closeLocked();

  const std::string& path = options_.path;
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("journal: cannot open " + tmp + " for compaction");
  }
  bool ok = std::fwrite(kMagic, 1, kMagicBytes, f) == kMagicBytes;
  for (const std::string& payload : payloads) {
    if (!ok || frozen_) break;
    // Non-durable per frame: the single syncFile below covers the whole
    // rewrite, instead of one fsync per live record.
    ok = writeFrameLocked(f, payload, /*durable=*/false) && ok;
  }
  ok = syncFile(f) && ok;
  ok = std::fclose(f) == 0 && ok;
  if (frozen_) return;  // tornWriteFault fired mid-compaction.
  std::error_code ec;
  if (ok) {
    std::filesystem::rename(tmp, path, ec);
    ok = !ec;
  } else {
    std::filesystem::remove(tmp, ec);
  }
  if (!ok) {
    throw std::runtime_error("journal: compaction of " + path + " failed");
  }
  recordsInLog_ = payloads.size();
  ++compactions_;
}

void FramedLog::freeze() {
  const std::lock_guard<std::mutex> lock(mutex_);
  frozen_ = true;
  closeLocked();
}

std::uint64_t FramedLog::recordsInLog() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recordsInLog_;
}

std::uint64_t FramedLog::appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::uint64_t FramedLog::compactions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return compactions_;
}

bool FramedLog::frozen() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return frozen_;
}

// --------------------------------------------------------------------------
// JobJournal

namespace {

/// Frames whose payloads parse as journal records are intact; anything
/// else is treated as torn (same contract the inline parse used to give).
bool validJournalPayload(const std::string& payload) {
  try {
    (void)JournalRecord::fromJson(Json::parse(payload));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

FramedLogOptions framedOptionsFor(const JournalOptions& options) {
  if (options.dir.empty()) {
    throw std::invalid_argument("JobJournal needs a directory");
  }
  FramedLogOptions framed;
  framed.path = (std::filesystem::path(options.dir) / "journal.wal").string();
  framed.fsyncEachRecord = options.fsyncEachRecord;
  framed.tornWriteFault = options.tornWriteFault;
  framed.shortWriteFault = options.shortWriteFault;
  return framed;
}

JournalReplay digestFrames(FrameReplay frames) {
  JournalReplay replay;
  replay.tornTail = frames.tornTail;
  replay.truncatedBytes = frames.truncatedBytes;
  replay.records.reserve(frames.payloads.size());
  for (const std::string& payload : frames.payloads) {
    replay.records.push_back(JournalRecord::fromJson(Json::parse(payload)));
  }

  // Digest: which submitted jobs never reached a terminal record.
  std::vector<std::uint64_t> terminalIds;
  for (const JournalRecord& rec : replay.records) {
    if (rec.id > replay.maxId) replay.maxId = rec.id;
    if (rec.type == JournalRecordType::kFinished ||
        rec.type == JournalRecordType::kCancelled) {
      terminalIds.push_back(rec.id);
      ++replay.finished;
    }
  }
  for (const JournalRecord& rec : replay.records) {
    if (rec.type != JournalRecordType::kSubmitted) continue;
    bool done = false;
    for (const std::uint64_t id : terminalIds) {
      if (id == rec.id) {
        done = true;
        break;
      }
    }
    if (!done) replay.pending.push_back(rec);
  }
  return replay;
}

}  // namespace

JournalRecordType journalRecordTypeFromName(const std::string& name) {
  for (const JournalRecordType t :
       {JournalRecordType::kSubmitted, JournalRecordType::kStarted,
        JournalRecordType::kRetried, JournalRecordType::kFinished,
        JournalRecordType::kCancelled}) {
    if (name == journalRecordTypeName(t)) return t;
  }
  throw std::invalid_argument("unknown journal record type \"" + name + "\"");
}

Json JournalRecord::toJson() const {
  Json j = Json::object();
  j.set("type", journalRecordTypeName(type));
  j.set("id", id);
  switch (type) {
    case JournalRecordType::kSubmitted:
      j.set("key", cacheKey);
      j.set("job", job);
      break;
    case JournalRecordType::kStarted:
    case JournalRecordType::kRetried:
      j.set("attempt", attempt);
      break;
    case JournalRecordType::kFinished:
      j.set("state", state);
      j.set("key", cacheKey);
      break;
    case JournalRecordType::kCancelled:
      break;
  }
  return j;
}

JournalRecord JournalRecord::fromJson(const Json& j) {
  JournalRecord rec;
  rec.type = journalRecordTypeFromName(j.at("type").asString());
  rec.id = j.at("id").asUint64();
  rec.cacheKey = j.at("key").asString();
  rec.state = j.at("state").asString();
  rec.attempt = j.at("attempt").asInt();
  if (const Json* job = j.find("job")) rec.job = *job;
  return rec;
}

JobJournal::JobJournal(JournalOptions options)
    : log_(framedOptionsFor(options)) {}

void JobJournal::append(const JournalRecord& record, bool durable) {
  log_.append(record.toJson().dump(), durable);
}

JournalReplay JobJournal::replay() {
  return digestFrames(log_.replay(validJournalPayload));
}

JournalReplay JobJournal::replayFile(const std::string& path) {
  return digestFrames(FramedLog::replayFile(path, validJournalPayload));
}

void JobJournal::compact(const std::vector<JournalRecord>& live) {
  std::vector<std::string> payloads;
  payloads.reserve(live.size());
  for (const JournalRecord& rec : live) payloads.push_back(rec.toJson().dump());
  log_.rewrite(payloads);
}

}  // namespace lo::service
