#include "verify/verify.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/fft.hpp"
#include "sim/measure.hpp"
#include "sim/simulator.hpp"

namespace lo::verify {

namespace {

using circuit::Circuit;
using circuit::NodeId;
using circuit::Waveform;

void requireUsable(const VerificationSetup& setup, const VerificationOptions& options) {
  if (!setup.supported || !setup.preLayout || !setup.postLayout) {
    throw std::invalid_argument(
        "runVerification: topology does not supply a verification setup");
  }
  if (options.thdCycles <= 0 || options.thdSettleCycles < 0 ||
      options.thdSamplesPerCycle <= 0 || options.thdFundamentalHz <= 0.0) {
    throw std::invalid_argument("runVerification: bad THD options");
  }
  const std::size_t n = static_cast<std::size_t>(options.thdCycles) *
                        static_cast<std::size_t>(options.thdSamplesPerCycle);
  if (!sim::isPowerOfTwo(n)) {
    throw std::invalid_argument(
        "runVerification: thdCycles * thdSamplesPerCycle (" + std::to_string(n) +
        ") must be a power of two");
  }
  if (options.sweepPoints < 3) {
    throw std::invalid_argument("runVerification: sweepPoints must be >= 3");
  }
}

sim::SimOptions simOptionsFor(const tech::Technology& t,
                              const VerificationOptions& options) {
  sim::SimOptions opt;
  opt.tempK = t.temperature;
  opt.solver = options.referenceSolver ? sim::SolverMode::kReference
                                       : sim::SolverMode::kFast;
  return opt;
}

/// Hard unity buffer driven by the verify tone; returns the steady-state
/// THD of the output waveform.
double measureThd(const tech::Technology& t, const device::MosModel& model,
                  const sizing::AmpInstantiateFn& instantiate, double inputCm,
                  const layout::ParasiticReport* parasitics,
                  const VerificationOptions& options) {
  Circuit c;
  c.title = "thd testbench";
  instantiate(c);
  const NodeId out = *c.findNode("out");
  const NodeId inn = *c.findNode("inn");
  const NodeId inp = *c.findNode("inp");
  c.addVSource("VSHORT", out, inn, Waveform::makeDc(0.0));
  c.addVSource("VIN", inp, circuit::kGround,
               Waveform::makeSin(inputCm, options.thdAmplitudeV,
                                 options.thdFundamentalHz));
  if (parasitics) layout::annotateCircuit(c, *parasitics);

  const double period = 1.0 / options.thdFundamentalHz;
  const double dt = period / options.thdSamplesPerCycle;
  const double tStop = period * (options.thdSettleCycles + options.thdCycles);
  sim::Simulator sim(c, t, model, simOptionsFor(t, options));
  const auto tran = sim.transient(tStop, dt);

  const std::size_t n = static_cast<std::size_t>(options.thdCycles) *
                        static_cast<std::size_t>(options.thdSamplesPerCycle);
  const std::vector<double> samples = sim::tailSamples(tran, out, n);
  // The capture holds exactly thdCycles periods, so the fundamental falls
  // on bin thdCycles and every harmonic on an exact multiple -- no leakage.
  return sim::thdPercent(samples, static_cast<std::size_t>(options.thdCycles),
                         options.harmonics);
}

/// Inverting gain stage: inp pinned at the common mode, input through R1,
/// feedback through 4*R1.  The output swing is the range of output
/// voltages over which the stage tracks its ideal line.
void measureSwing(const tech::Technology& t, const device::MosModel& model,
                  const sizing::AmpInstantiateFn& instantiate, double inputCm,
                  double vdd, const layout::ParasiticReport* parasitics,
                  const VerificationOptions& options, ExtendedMeasures& m) {
  constexpr double kGain = 4.0;
  constexpr double kR1 = 100e3;
  Circuit c;
  c.title = "swing testbench";
  instantiate(c);
  const NodeId out = *c.findNode("out");
  const NodeId inn = *c.findNode("inn");
  const NodeId inp = *c.findNode("inp");
  const NodeId nin = c.node("swing_in");
  c.addVSource("VCM", inp, circuit::kGround, Waveform::makeDc(inputCm));
  c.addVSource("VIN", nin, circuit::kGround, Waveform::makeDc(inputCm));
  c.addResistor("R1", nin, inn, kR1);
  c.addResistor("RFB", out, inn, kGain * kR1);
  if (parasitics) layout::annotateCircuit(c, *parasitics);

  // Sweep the input so the ideal output covers a bit beyond both rails.
  const double vLo = inputCm - (vdd + 0.2 - inputCm) / kGain;
  const double vHi = inputCm + (inputCm + 0.2) / kGain;
  sim::Simulator sim(c, t, model, simOptionsFor(t, options));
  const auto sweep = sim.dcSweep("VIN", vLo, vHi, options.sweepPoints);

  bool any = false;
  for (const auto& pt : sweep) {
    const double ideal = inputCm - kGain * (pt.value - inputCm);
    const double v = pt.solution.voltage(out);
    if (std::abs(v - ideal) >= options.trackingTolerance) continue;
    if (!any || v < m.outputSwingLow) m.outputSwingLow = v;
    if (!any || v > m.outputSwingHigh) m.outputSwingHigh = v;
    any = true;
  }
  if (!any) {
    // The stage never tracked: report a collapsed swing at the common mode.
    m.outputSwingLow = m.outputSwingHigh = inputCm;
  }
}

/// Unity buffer swept rail to rail; the ICMR is the window where the
/// output tracks the input (parasitic-aware measureUsableRange).
void measureIcmr(const tech::Technology& t, const device::MosModel& model,
                 const sizing::AmpInstantiateFn& instantiate, double vdd,
                 const layout::ParasiticReport* parasitics,
                 const VerificationOptions& options, ExtendedMeasures& m) {
  Circuit c;
  c.title = "icmr testbench";
  instantiate(c);
  const NodeId out = *c.findNode("out");
  const NodeId inn = *c.findNode("inn");
  const NodeId inp = *c.findNode("inp");
  c.addVSource("VSHORT", out, inn, Waveform::makeDc(0.0));
  c.addVSource("VIN", inp, circuit::kGround, Waveform::makeDc(vdd / 2));
  if (parasitics) layout::annotateCircuit(c, *parasitics);

  sim::Simulator sim(c, t, model, simOptionsFor(t, options));
  const auto sweep = sim.dcSweep("VIN", 0.05, vdd - 0.05, options.sweepPoints);

  bool inRange = false;
  for (const auto& pt : sweep) {
    const bool tracks =
        std::abs(pt.solution.voltage(out) - pt.value) < options.trackingTolerance;
    if (tracks && !inRange) {
      m.icmrLow = pt.value;
      inRange = true;
    }
    if (tracks) m.icmrHigh = pt.value;
  }
}

}  // namespace

ExtendedMeasures measureExtended(const tech::Technology& t,
                                 const device::MosModel& model,
                                 const sizing::AmpInstantiateFn& instantiate,
                                 double inputCm, double vdd,
                                 const layout::ParasiticReport* parasitics,
                                 const VerificationOptions& options) {
  ExtendedMeasures m;
  m.thdPercent = measureThd(t, model, instantiate, inputCm, parasitics, options);
  measureSwing(t, model, instantiate, inputCm, vdd, parasitics, options, m);
  measureIcmr(t, model, instantiate, vdd, parasitics, options, m);
  return m;
}

VerificationReport runVerification(const tech::Technology& t,
                                   const device::MosModel& model,
                                   const VerificationSetup& setup,
                                   const sizing::OtaSpecs& specs,
                                   const sizing::VerifyOptions& simOptions,
                                   const VerificationOptions& options,
                                   const sizing::OtaPerformance* postLayoutCore) {
  requireUsable(setup, options);

  VerificationReport report;
  report.ran = true;
  report.preLayout = sizing::measureAmplifier(t, model, setup.preLayout,
                                              setup.inputCm, setup.vdd,
                                              /*parasitics=*/nullptr, simOptions);
  report.postLayout = postLayoutCore != nullptr
                          ? *postLayoutCore
                          : sizing::measureAmplifier(t, model, setup.postLayout,
                                                     setup.inputCm, setup.vdd,
                                                     setup.parasitics, simOptions);
  report.preExtended = measureExtended(t, model, setup.preLayout, setup.inputCm,
                                       setup.vdd, /*parasitics=*/nullptr, options);
  report.postExtended = measureExtended(t, model, setup.postLayout, setup.inputCm,
                                        setup.vdd, setup.parasitics, options);
  // Offset and PSRR are already part of the core record; restate them so
  // the extended block carries the full new-spec surface on its own.
  report.preExtended.offsetMv = report.preLayout.offsetMv;
  report.preExtended.psrrDb = report.preLayout.psrrDb;
  report.postExtended.offsetMv = report.postLayout.offsetMv;
  report.postExtended.psrrDb = report.postLayout.psrrDb;

  const double tol = options.relTolerance;
  enum class Judge { kAtLeast, kAtMost, kAbsAtMost };
  const auto row = [&](const char* name, double pre, double post, double limit,
                       bool constrained, Judge judge) {
    SpecDelta d;
    d.name = name;
    d.preLayout = pre;
    d.postLayout = post;
    d.limit = limit;
    d.constrained = constrained;
    if (constrained) {
      switch (judge) {
        case Judge::kAtLeast: d.pass = post >= limit * (1.0 - tol); break;
        case Judge::kAtMost: d.pass = post <= limit * (1.0 + tol); break;
        case Judge::kAbsAtMost: d.pass = std::abs(post) <= limit * (1.0 + tol); break;
      }
    }
    report.deltas.push_back(std::move(d));
  };

  row("gbw_hz", report.preLayout.gbwHz, report.postLayout.gbwHz, specs.gbw, true,
      Judge::kAtLeast);
  row("phase_margin_deg", report.preLayout.phaseMarginDeg,
      report.postLayout.phaseMarginDeg, specs.phaseMarginDeg, true, Judge::kAtLeast);
  row("output_swing_low", report.preExtended.outputSwingLow,
      report.postExtended.outputSwingLow, specs.outputLow, true, Judge::kAtMost);
  row("output_swing_high", report.preExtended.outputSwingHigh,
      report.postExtended.outputSwingHigh, specs.outputHigh, true, Judge::kAtLeast);
  row("icmr_low", report.preExtended.icmrLow, report.postExtended.icmrLow,
      specs.inputCmLow, true, Judge::kAtMost);
  row("icmr_high", report.preExtended.icmrHigh, report.postExtended.icmrHigh,
      specs.inputCmHigh, true, Judge::kAtLeast);
  row("thd_percent", report.preExtended.thdPercent, report.postExtended.thdPercent,
      specs.thdMaxPercent, specs.thdMaxPercent > 0.0, Judge::kAtMost);
  row("psrr_db", report.preExtended.psrrDb, report.postExtended.psrrDb,
      specs.psrrMinDb, specs.psrrMinDb > 0.0, Judge::kAtLeast);
  row("offset_mv", report.preExtended.offsetMv, report.postExtended.offsetMv,
      specs.offsetMaxMv, specs.offsetMaxMv > 0.0, Judge::kAbsAtMost);

  report.pass = true;
  for (const SpecDelta& d : report.deltas) {
    if (d.constrained && !d.pass) report.pass = false;
  }
  return report;
}

}  // namespace lo::verify
