// lo_verify: the post-layout verification tier.
//
// After sizing and layout converge the engine has two netlists for the
// same cell: the schematic-level sized design and the extracted design
// (fold-quantised junctions, drawn passives) annotated with the routing /
// coupling / well parasitics the layout tool reported.  This library
// re-simulates both sides and turns the comparison into a structured
// VerificationReport: per-spec pre- vs post-layout deltas plus a pass /
// fail verdict against the user's tolerances -- the closed-loop check the
// paper calls verification-by-simulation, widened to the extended spec
// surface (THD, PSRR, output swing, ICMR, input-referred offset).
//
// Measurement definitions:
//  * THD -- hard unity-feedback buffer driven by a sine at the verify
//    tone; an integer number of steady-state cycles is sampled at a
//    power-of-two rate and handed to sim::fft (exact bin alignment, no
//    leakage), THD = RMS(harmonics 2..N) / fundamental.
//  * Output swing -- inverting gain stage (R1 in, 4*R1 feedback, inp held
//    at the input common mode) swept at DC; the swing is the output range
//    over which the stage tracks its ideal line within the tracking
//    tolerance.
//  * ICMR -- unity buffer swept rail to rail; the window where the output
//    tracks the input (the measureUsableRange pattern, parasitic-aware).
//  * Offset -- DC unity feedback forces out = inp - Voffset at the
//    operating point.
//  * PSRR -- AC solve with the excitation moved onto the supply branch
//    (Simulator::acFrom) against the differential gain.
//
// The library sits between lo_sizing and lo_core: it reuses the sizing
// testbenches (measureAmplifier, AmpInstantiateFn) and is driven by the
// engine through core::Topology::verificationSetup().
#pragma once

#include <string>
#include <vector>

#include "layout/extract.hpp"
#include "sizing/ota_spec.hpp"
#include "sizing/verify.hpp"

namespace lo::verify {

/// Knobs of the post-layout verification stage.  Everything here is part
/// of a job's identity (the result-cache key covers it when enabled).
struct VerificationOptions {
  bool enabled = false;
  /// Relative slack applied to every constrained spec when judging
  /// pass/fail (a post-layout GBW within (1 - tol) of the target passes).
  double relTolerance = 0.10;
  double thdFundamentalHz = 1e6;  ///< Verify tone frequency.
  double thdAmplitudeV = 0.05;    ///< Verify tone amplitude [V].
  int thdSettleCycles = 2;        ///< Cycles discarded before analysis.
  int thdCycles = 4;              ///< Analysed steady-state cycles.
  int thdSamplesPerCycle = 64;    ///< thdCycles * thdSamplesPerCycle must be 2^k.
  int harmonics = 5;              ///< Highest harmonic included in THD.
  int sweepPoints = 41;           ///< DC sweep resolution (swing / ICMR).
  double trackingTolerance = 0.02;  ///< Tracking window for swing / ICMR [V].
  /// Run the measurements on the simulator's pre-optimization reference
  /// solve path.  Bit-identical to the fast path by construction, so --
  /// unlike every knob above -- it is NOT part of a job's identity and is
  /// excluded from serialization and the result-cache key.
  bool referenceSolver = false;
};

/// The measurements beyond the Table 1 core that the verification tier
/// adds (offset and PSRR are re-stated here from the core record so the
/// report is self-contained).
struct ExtendedMeasures {
  double thdPercent = 0.0;
  double psrrDb = 0.0;
  double outputSwingLow = 0.0;   ///< Lowest tracked output voltage [V].
  double outputSwingHigh = 0.0;  ///< Highest tracked output voltage [V].
  double icmrLow = 0.0;          ///< Input common-mode window [V].
  double icmrHigh = 0.0;
  double offsetMv = 0.0;
};

/// One spec row of the report: what the schematic promised, what the
/// extracted layout delivers, and whether the post-layout figure clears
/// the limit (within VerificationOptions::relTolerance).
struct SpecDelta {
  std::string name;
  double preLayout = 0.0;
  double postLayout = 0.0;
  double limit = 0.0;
  bool constrained = false;  ///< The spec carries a user limit.
  bool pass = true;          ///< Always true for unconstrained rows.

  [[nodiscard]] double delta() const { return postLayout - preLayout; }
};

struct VerificationReport {
  bool ran = false;
  bool pass = false;  ///< Every constrained spec row passed.
  sizing::OtaPerformance preLayout;   ///< Core measures, schematic netlist.
  sizing::OtaPerformance postLayout;  ///< Core measures, extracted netlist.
  ExtendedMeasures preExtended;
  ExtendedMeasures postExtended;
  std::vector<SpecDelta> deltas;

  [[nodiscard]] const SpecDelta* find(const std::string& name) const {
    for (const SpecDelta& d : deltas) {
      if (d.name == name) return &d;
    }
    return nullptr;
  }
};

/// What a topology hands the verification stage: how to instantiate the
/// schematic-level and extracted netlists, and the generation-mode
/// parasitic report to annotate the extracted side with.
struct VerificationSetup {
  bool supported = false;
  sizing::AmpInstantiateFn preLayout;   ///< Sized (schematic) design.
  sizing::AmpInstantiateFn postLayout;  ///< Extracted design.
  const layout::ParasiticReport* parasitics = nullptr;  ///< Post-layout only.
  double inputCm = 0.0;
  double vdd = 0.0;
};

/// Measure THD, output swing and ICMR for one netlist (offset and PSRR
/// come from sizing::measureAmplifier's core record).  Exposed for tests.
[[nodiscard]] ExtendedMeasures measureExtended(
    const tech::Technology& t, const device::MosModel& model,
    const sizing::AmpInstantiateFn& instantiate, double inputCm, double vdd,
    const layout::ParasiticReport* parasitics, const VerificationOptions& options);

/// Run the full pre- vs post-layout comparison.  `postLayoutCore` is the
/// engine's existing extracted-netlist measurement (reused instead of
/// re-simulated); pass nullptr to measure it here.  Throws
/// std::invalid_argument on an unusable setup or options.
[[nodiscard]] VerificationReport runVerification(
    const tech::Technology& t, const device::MosModel& model,
    const VerificationSetup& setup, const sizing::OtaSpecs& specs,
    const sizing::VerifyOptions& simOptions, const VerificationOptions& options,
    const sizing::OtaPerformance* postLayoutCore = nullptr);

}  // namespace lo::verify
