#include "geom/geometry.hpp"

namespace lo::geom {

Point apply(Orient o, Point p) {
  switch (o) {
    case Orient::kR0: return p;
    case Orient::kR90: return {-p.y, p.x};
    case Orient::kR180: return {-p.x, -p.y};
    case Orient::kR270: return {p.y, -p.x};
    case Orient::kMX: return {p.x, -p.y};
    case Orient::kMY: return {-p.x, p.y};
    case Orient::kMXR90: return {-p.y, -p.x};
    case Orient::kMYR90: return {p.y, p.x};
  }
  return p;
}

Rect apply(Orient o, const Rect& r) {
  const Point a = apply(o, Point{r.x0, r.y0});
  const Point b = apply(o, Point{r.x1, r.y1});
  return Rect{a.x, a.y, b.x, b.y};  // Constructor normalises.
}

void ShapeList::merge(const ShapeList& other, Orient o, Coord dx, Coord dy) {
  shapes_.reserve(shapes_.size() + other.shapes_.size());
  for (const Shape& s : other.shapes_) {
    Shape t = s;
    t.rect = apply(o, s.rect).translated(dx, dy);
    shapes_.push_back(std::move(t));
  }
}

Rect ShapeList::bbox() const {
  if (shapes_.empty()) return Rect{};
  Rect box = shapes_.front().rect;
  for (const Shape& s : shapes_) box = box.merged(s.rect);
  return box;
}

Rect ShapeList::bbox(tech::Layer layer) const {
  Rect box;
  bool first = true;
  for (const Shape& s : shapes_) {
    if (s.layer != layer) continue;
    box = first ? s.rect : box.merged(s.rect);
    first = false;
  }
  return first ? Rect{} : box;
}

std::vector<Shape> ShapeList::onLayer(tech::Layer layer) const {
  std::vector<Shape> out;
  for (const Shape& s : shapes_) {
    if (s.layer == layer) out.push_back(s);
  }
  return out;
}

std::vector<Shape> ShapeList::onNet(const std::string& net) const {
  std::vector<Shape> out;
  for (const Shape& s : shapes_) {
    if (s.net == net) out.push_back(s);
  }
  return out;
}

double ShapeList::drawnAreaM2(tech::Layer layer) const {
  double area = 0.0;
  for (const Shape& s : shapes_) {
    if (s.layer == layer) area += s.rect.areaM2();
  }
  return area;
}

}  // namespace lo::geom
