// Integer-nanometre rectilinear geometry for the layout system.
//
// All layout shapes are axis-aligned rectangles on symbolic layers.  Using
// integer coordinates makes grid snapping, DRC and area bookkeeping exact.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "tech/layers.hpp"

namespace lo::geom {

using Coord = std::int64_t;  ///< Position / distance in nanometres.

struct Point {
  Coord x = 0;
  Coord y = 0;
  friend bool operator==(const Point&, const Point&) = default;
  [[nodiscard]] Point operator+(Point o) const { return {x + o.x, y + o.y}; }
  [[nodiscard]] Point operator-(Point o) const { return {x - o.x, y - o.y}; }
};

/// Axis-aligned rectangle, half-open semantics are NOT used: [x0,x1]x[y0,y1]
/// with x0 <= x1 and y0 <= y1 after normalize().
struct Rect {
  Coord x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  Rect() = default;
  Rect(Coord ax0, Coord ay0, Coord ax1, Coord ay1) : x0(ax0), y0(ay0), x1(ax1), y1(ay1) {
    normalize();
  }

  friend bool operator==(const Rect&, const Rect&) = default;

  void normalize() {
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
  }

  [[nodiscard]] Coord width() const { return x1 - x0; }
  [[nodiscard]] Coord height() const { return y1 - y0; }
  [[nodiscard]] bool empty() const { return width() == 0 || height() == 0; }
  [[nodiscard]] Point center() const { return {(x0 + x1) / 2, (y0 + y1) / 2}; }
  [[nodiscard]] double areaNm2() const {
    return static_cast<double>(width()) * static_cast<double>(height());
  }
  /// Area in square metres.
  [[nodiscard]] double areaM2() const { return areaNm2() * 1e-18; }
  /// Perimeter in metres.
  [[nodiscard]] double perimeterM() const {
    return 2.0 * static_cast<double>(width() + height()) * 1e-9;
  }

  [[nodiscard]] Rect translated(Coord dx, Coord dy) const {
    return {x0 + dx, y0 + dy, x1 + dx, y1 + dy};
  }
  [[nodiscard]] Rect inflated(Coord d) const { return {x0 - d, y0 - d, x1 + d, y1 + d}; }

  [[nodiscard]] bool contains(Point p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  [[nodiscard]] bool containsRect(const Rect& r) const {
    return r.x0 >= x0 && r.x1 <= x1 && r.y0 >= y0 && r.y1 <= y1;
  }
  /// True if the interiors overlap (touching edges do not count).
  [[nodiscard]] bool overlaps(const Rect& r) const {
    return x0 < r.x1 && r.x0 < x1 && y0 < r.y1 && r.y0 < y1;
  }
  /// True if the rectangles overlap or share boundary.
  [[nodiscard]] bool touches(const Rect& r) const {
    return x0 <= r.x1 && r.x0 <= x1 && y0 <= r.y1 && r.y0 <= y1;
  }

  /// Bounding box of the union.
  [[nodiscard]] Rect merged(const Rect& r) const {
    return {std::min(x0, r.x0), std::min(y0, r.y0), std::max(x1, r.x1), std::max(y1, r.y1)};
  }

  /// Intersection; empty() rect when disjoint.
  [[nodiscard]] Rect intersected(const Rect& r) const {
    const Coord ix0 = std::max(x0, r.x0), iy0 = std::max(y0, r.y0);
    const Coord ix1 = std::min(x1, r.x1), iy1 = std::min(y1, r.y1);
    if (ix0 >= ix1 || iy0 >= iy1) return Rect{};
    Rect out;
    out.x0 = ix0; out.y0 = iy0; out.x1 = ix1; out.y1 = iy1;
    return out;
  }

  /// Minimum axis-aligned separation between two disjoint rects (0 if they
  /// touch or overlap).  Used by the DRC spacing checks.
  [[nodiscard]] Coord distanceTo(const Rect& r) const {
    const Coord dx = std::max<Coord>({r.x0 - x1, x0 - r.x1, 0});
    const Coord dy = std::max<Coord>({r.y0 - y1, y0 - r.y1, 0});
    // Rectilinear rules measure euclidean corner-to-corner only when both
    // separations are non-zero; we use the max-norm convention common in
    // lambda rules: the spacing violation is on the larger of the two axes
    // only if the projections overlap, otherwise the diagonal distance.
    if (dx == 0) return dy;
    if (dy == 0) return dx;
    return std::max(dx, dy);
  }
};

/// One rectangle on a symbolic layer, optionally tagged with the net name it
/// belongs to (used by the extractor).
struct Shape {
  tech::Layer layer = tech::Layer::kMetal1;
  Rect rect;
  std::string net;  ///< Empty when the shape is not net-tagged.
};

/// Eight rectilinear orientations (GDSII-style R0..R270 and mirrored).
enum class Orient : std::uint8_t { kR0, kR90, kR180, kR270, kMX, kMY, kMXR90, kMYR90 };

/// Apply an orientation about the origin.
[[nodiscard]] Point apply(Orient o, Point p);
/// Apply an orientation about the origin to a rect (result normalised).
[[nodiscard]] Rect apply(Orient o, const Rect& r);

/// A bag of shapes; the unit of composition for layout cells.
class ShapeList {
 public:
  void add(tech::Layer layer, const Rect& r, std::string net = {}) {
    if (!r.empty()) shapes_.push_back({layer, r, std::move(net)});
  }
  void add(const Shape& s) {
    if (!s.rect.empty()) shapes_.push_back(s);
  }
  /// Append all of `other`, transformed by `o` then translated by (dx, dy).
  void merge(const ShapeList& other, Orient o = Orient::kR0, Coord dx = 0, Coord dy = 0);

  [[nodiscard]] const std::vector<Shape>& shapes() const { return shapes_; }
  [[nodiscard]] bool empty() const { return shapes_.empty(); }
  [[nodiscard]] std::size_t size() const { return shapes_.size(); }

  /// Bounding box across all layers; empty Rect if no shapes.
  [[nodiscard]] Rect bbox() const;
  /// Bounding box restricted to one layer; empty Rect if none.
  [[nodiscard]] Rect bbox(tech::Layer layer) const;

  /// All shapes on one layer.
  [[nodiscard]] std::vector<Shape> onLayer(tech::Layer layer) const;
  /// All shapes tagged with `net`.
  [[nodiscard]] std::vector<Shape> onNet(const std::string& net) const;

  /// Total drawn area on a layer [m^2], counting overlaps twice (the
  /// generators avoid overlapping same-layer shapes on purpose).
  [[nodiscard]] double drawnAreaM2(tech::Layer layer) const;

  void clear() { shapes_.clear(); }

 private:
  std::vector<Shape> shapes_;
};

}  // namespace lo::geom
