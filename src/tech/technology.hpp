// Technology description: the single object that makes every generator and
// model in this project technology independent.
//
// A Technology bundles design rules, per-layer electrical coefficients
// (capacitance, sheet resistance, electromigration limits) and the MOS model
// cards.  It can be built programmatically (generic060()) or loaded from a
// simple sectioned "key = value" text file (fromFile()/parse()).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "tech/design_rules.hpp"
#include "tech/layers.hpp"
#include "tech/model_card.hpp"

namespace lo::tech {

/// Electrical properties of one mask layer.
struct LayerElectrical {
  double capAreaPerM2 = 0.0;    ///< Cap to substrate per area [F/m^2].
  double capFringePerM = 0.0;   ///< Fringe cap per edge length [F/m].
  double capCouplePerM = 0.0;   ///< Coupling cap per parallel-run length at
                                ///< minimum spacing [F/m].
  double sheetResOhmSq = 0.0;   ///< Sheet resistance [ohm/square].
  double emMaxAmpPerM = 0.0;    ///< Electromigration limit: max DC current
                                ///< per metre of wire width [A/m].
};

/// Process corners for design-centering studies: threshold and mobility
/// shifts applied on top of a nominal technology.
enum class ProcessCorner { kTypical, kSlow, kFast, kSlowNFastP, kFastNSlowP };

[[nodiscard]] constexpr const char* cornerName(ProcessCorner c) {
  switch (c) {
    case ProcessCorner::kTypical: return "tt";
    case ProcessCorner::kSlow: return "ss";
    case ProcessCorner::kFast: return "ff";
    case ProcessCorner::kSlowNFastP: return "sf";
    case ProcessCorner::kFastNSlowP: return "fs";
  }
  return "?";
}

/// Thrown by the tech-file parser on malformed input.
class TechParseError : public std::runtime_error {
 public:
  explicit TechParseError(const std::string& what) : std::runtime_error(what) {}
};

class Technology {
 public:
  std::string name = "generic060";
  DesignRules rules;
  MosModelCard nmos;
  MosModelCard pmos;

  double nominalVdd = 3.3;          ///< Default supply voltage [V].
  double temperature = 300.15;      ///< Default analysis temperature [K].
  double contactMaxAmp = 0.6e-3;    ///< Max DC current per contact cut [A].
  double via1MaxAmp = 0.8e-3;       ///< Max DC current per via cut [A].
  double contactResOhm = 6.0;       ///< Resistance per contact cut [ohm].

  /// N-well junction capacitance to substrate (floating-well parasitic,
  /// paper section 2: "Exact well sizes so that floating well capacitance
  /// can be calculated").
  double nwellCapAreaPerM2 = 0.10e-3;   ///< [F/m^2]
  double nwellCapPerimPerM = 0.50e-9;   ///< [F/m]

  /// Poly/metal1 plate capacitor density (used by the capacitor generator
  /// for compensation capacitors). [F/m^2]
  double plateCapPerM2 = 0.50e-3;

  [[nodiscard]] const LayerElectrical& layer(Layer l) const {
    return layers_[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] LayerElectrical& layer(Layer l) {
    return layers_[static_cast<std::size_t>(l)];
  }

  [[nodiscard]] const MosModelCard& card(MosType type) const {
    return type == MosType::kNmos ? nmos : pmos;
  }

  /// Minimum drawn wire width on a routing layer [nm].
  [[nodiscard]] Nm minWireWidth(Layer l) const;

  /// Minimum same-layer spacing on a routing layer [nm].
  [[nodiscard]] Nm minWireSpacing(Layer l) const;

  /// Width (grid-snapped, >= layer minimum) a wire on `l` needs to carry
  /// `amps` of DC current without violating the electromigration limit.
  [[nodiscard]] Nm wireWidthForCurrent(Layer l, double amps) const;

  /// Number of contact cuts required to carry `amps` of DC current (>= 1).
  [[nodiscard]] int contactsForCurrent(double amps) const;

  /// Built-in synthetic 0.6 um CMOS process used throughout the paper
  /// reproduction (the paper uses an unnamed 0.6 um technology).
  [[nodiscard]] static Technology generic060();

  /// A coarser companion process (1.0 um class) used by the technology
  /// evaluation example (paper section 4: "A technology evaluation
  /// interface ... helps to choose the most suitable technology").
  [[nodiscard]] static Technology generic100();

  /// This technology shifted to a process corner (vto +/-8%, kp -/+12% per
  /// device type; temperature unchanged).
  [[nodiscard]] Technology atCorner(ProcessCorner corner) const;

  /// Parse a technology file; throws TechParseError on malformed input.
  [[nodiscard]] static Technology parse(std::string_view text);
  [[nodiscard]] static Technology fromFile(const std::string& path);

  /// Serialise to the same text format parse() accepts (round-trippable).
  [[nodiscard]] std::string toText() const;

 private:
  std::array<LayerElectrical, kLayerCount> layers_{};
};

}  // namespace lo::tech
