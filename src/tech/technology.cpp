#include "tech/technology.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "tech/units.hpp"

namespace lo::tech {

double MosModelCard::cox() const { return kEps0 * kEpsrSiO2 / tox; }

double MosModelCard::kpAt(double tempK) const {
  return kp * std::pow(tempK / tempRef, mobilityExponent);
}

Nm Technology::minWireWidth(Layer l) const {
  switch (l) {
    case Layer::kPoly: return rules.polyMinWidth;
    case Layer::kMetal1: return rules.metal1MinWidth;
    case Layer::kMetal2: return rules.metal2MinWidth;
    default: throw std::invalid_argument("minWireWidth: not a routing layer");
  }
}

Nm Technology::minWireSpacing(Layer l) const {
  switch (l) {
    case Layer::kPoly: return rules.polySpacing;
    case Layer::kMetal1: return rules.metal1Spacing;
    case Layer::kMetal2: return rules.metal2Spacing;
    default: throw std::invalid_argument("minWireSpacing: not a routing layer");
  }
}

Nm Technology::wireWidthForCurrent(Layer l, double amps) const {
  const double limit = layer(l).emMaxAmpPerM;
  Nm width = minWireWidth(l);
  if (limit > 0.0 && amps > 0.0) {
    const Nm emWidth = metersToNm(std::abs(amps) / limit);
    width = std::max(width, emWidth);
  }
  return rules.snapUp(width);
}

int Technology::contactsForCurrent(double amps) const {
  if (contactMaxAmp <= 0.0 || amps <= 0.0) return 1;
  return std::max(1, static_cast<int>(std::ceil(std::abs(amps) / contactMaxAmp)));
}

Technology Technology::generic060() {
  Technology t;
  t.name = "generic060";
  // Design rules: defaults in DesignRules are already the 0.6 um set.

  // NMOS card.
  t.nmos.name = "nmos060";
  t.nmos.type = MosType::kNmos;
  t.nmos.vto = 0.75;
  t.nmos.kp = 110e-6;
  t.nmos.gamma = 0.55;
  t.nmos.phi = 0.70;
  t.nmos.earlyPerMeter = 8.0e6;   // VA = 8 V/um * L
  t.nmos.tox = 14e-9;
  t.nmos.ld = 50e-9;
  t.nmos.theta = 0.15;
  t.nmos.cj = 0.65e-3;
  t.nmos.cjsw = 0.40e-9;
  t.nmos.mj = 0.50;
  t.nmos.mjsw = 0.33;
  t.nmos.pb = 0.9;
  t.nmos.cgso = 0.12e-9;
  t.nmos.cgdo = 0.12e-9;
  t.nmos.cgbo = 0.10e-9;
  t.nmos.kf = 2.0e-27;
  t.nmos.af = 1.0;
  t.nmos.slopeFactor = 1.3;

  // PMOS card.
  t.pmos = t.nmos;
  t.pmos.name = "pmos060";
  t.pmos.type = MosType::kPmos;
  t.pmos.vto = 0.85;
  t.pmos.kp = 38e-6;
  t.pmos.gamma = 0.45;
  t.pmos.earlyPerMeter = 12.0e6;
  t.pmos.cj = 0.85e-3;
  t.pmos.cjsw = 0.45e-9;
  t.pmos.mjsw = 0.35;
  t.pmos.kf = 0.6e-27;

  // Layer electricals.
  auto& poly = t.layer(Layer::kPoly);
  poly.capAreaPerM2 = 0.09e-3;
  poly.capFringePerM = 0.05e-9;
  poly.capCouplePerM = 0.04e-9;
  poly.sheetResOhmSq = 25.0;
  poly.emMaxAmpPerM = 0.3e3;  // 0.3 mA/um: poly is a poor current carrier.

  auto& m1 = t.layer(Layer::kMetal1);
  m1.capAreaPerM2 = 0.030e-3;
  m1.capFringePerM = 0.080e-9;
  m1.capCouplePerM = 0.085e-9;
  m1.sheetResOhmSq = 0.07;
  m1.emMaxAmpPerM = 1.0e3;  // 1 mA/um.

  auto& m2 = t.layer(Layer::kMetal2);
  m2.capAreaPerM2 = 0.020e-3;
  m2.capFringePerM = 0.060e-9;
  m2.capCouplePerM = 0.070e-9;
  m2.sheetResOhmSq = 0.04;
  m2.emMaxAmpPerM = 1.0e3;

  auto& act = t.layer(Layer::kActive);
  act.sheetResOhmSq = 80.0;

  return t;
}

Technology Technology::generic100() {
  Technology t = generic060();
  t.name = "generic100";
  // Scale geometry by 5/3 and degrade the electrical figures accordingly.
  auto scale = [](Nm v) { return v * 5 / 3; };
  DesignRules& r = t.rules;
  r.polyMinWidth = scale(r.polyMinWidth);
  r.polySpacing = scale(r.polySpacing);
  r.polyEndcap = scale(r.polyEndcap);
  r.activeMinWidth = scale(r.activeMinWidth);
  r.activeSpacing = scale(r.activeSpacing);
  r.activeToWell = scale(r.activeToWell);
  r.contactSize = scale(r.contactSize);
  r.contactSpacing = scale(r.contactSpacing);
  r.contactToGate = scale(r.contactToGate);
  r.metal1MinWidth = scale(r.metal1MinWidth);
  r.metal1Spacing = scale(r.metal1Spacing);
  r.metal2MinWidth = scale(r.metal2MinWidth);
  r.metal2Spacing = scale(r.metal2Spacing);
  r.nwellOverActive = scale(r.nwellOverActive);
  r.nwellSpacing = scale(r.nwellSpacing);

  t.nmos.tox = 20e-9;
  t.nmos.kp = 75e-6;
  t.nmos.vto = 0.85;
  t.nmos.earlyPerMeter = 6.0e6;
  t.pmos.tox = 20e-9;
  t.pmos.kp = 26e-6;
  t.pmos.vto = 0.95;
  t.pmos.earlyPerMeter = 9.0e6;
  return t;
}

namespace {

// ---- Tech file serialisation / parsing ----
//
// Format: "[section]" headers with "key = value" lines; '#' starts a comment.
// Sections: [tech], [rules], [layer <name>], [model nmos], [model pmos].

struct KeyWriter {
  std::ostringstream out;
  void section(std::string_view s) { out << "[" << s << "]\n"; }
  void kv(std::string_view k, double v) { out << k << " = " << v << "\n"; }
  void kv(std::string_view k, std::int64_t v) { out << k << " = " << v << "\n"; }
  void kv(std::string_view k, const std::string& v) { out << k << " = " << v << "\n"; }
};

void writeCard(KeyWriter& w, const MosModelCard& c) {
  w.kv("name", c.name);
  w.kv("vto", c.vto);
  w.kv("kp", c.kp);
  w.kv("gamma", c.gamma);
  w.kv("phi", c.phi);
  w.kv("early_per_meter", c.earlyPerMeter);
  w.kv("tox", c.tox);
  w.kv("ld", c.ld);
  w.kv("theta", c.theta);
  w.kv("cj", c.cj);
  w.kv("cjsw", c.cjsw);
  w.kv("mj", c.mj);
  w.kv("mjsw", c.mjsw);
  w.kv("pb", c.pb);
  w.kv("cgso", c.cgso);
  w.kv("cgdo", c.cgdo);
  w.kv("cgbo", c.cgbo);
  w.kv("kf", c.kf);
  w.kv("af", c.af);
  w.kv("slope_factor", c.slopeFactor);
  w.kv("vto_temp_coeff", c.vtoTempCoeff);
  w.kv("mobility_exponent", c.mobilityExponent);
}

bool setCardKey(MosModelCard& c, std::string_view key, std::string_view value) {
  auto num = [&] {
    try {
      return std::stod(std::string(value));
    } catch (const std::exception&) {
      throw TechParseError("bad model value '" + std::string(value) + "'");
    }
  };
  if (key == "name") { c.name = std::string(value); return true; }
  if (key == "vto") { c.vto = num(); return true; }
  if (key == "kp") { c.kp = num(); return true; }
  if (key == "gamma") { c.gamma = num(); return true; }
  if (key == "phi") { c.phi = num(); return true; }
  if (key == "early_per_meter") { c.earlyPerMeter = num(); return true; }
  if (key == "tox") { c.tox = num(); return true; }
  if (key == "ld") { c.ld = num(); return true; }
  if (key == "theta") { c.theta = num(); return true; }
  if (key == "cj") { c.cj = num(); return true; }
  if (key == "cjsw") { c.cjsw = num(); return true; }
  if (key == "mj") { c.mj = num(); return true; }
  if (key == "mjsw") { c.mjsw = num(); return true; }
  if (key == "pb") { c.pb = num(); return true; }
  if (key == "cgso") { c.cgso = num(); return true; }
  if (key == "cgdo") { c.cgdo = num(); return true; }
  if (key == "cgbo") { c.cgbo = num(); return true; }
  if (key == "kf") { c.kf = num(); return true; }
  if (key == "af") { c.af = num(); return true; }
  if (key == "slope_factor") { c.slopeFactor = num(); return true; }
  if (key == "vto_temp_coeff") { c.vtoTempCoeff = num(); return true; }
  if (key == "mobility_exponent") { c.mobilityExponent = num(); return true; }
  return false;
}

struct RuleEntry {
  std::string_view key;
  Nm DesignRules::* member;
};

constexpr RuleEntry kRuleEntries[] = {
    {"grid", &DesignRules::grid},
    {"poly_min_width", &DesignRules::polyMinWidth},
    {"poly_spacing", &DesignRules::polySpacing},
    {"poly_endcap", &DesignRules::polyEndcap},
    {"active_min_width", &DesignRules::activeMinWidth},
    {"active_spacing", &DesignRules::activeSpacing},
    {"active_to_well", &DesignRules::activeToWell},
    {"contact_size", &DesignRules::contactSize},
    {"contact_spacing", &DesignRules::contactSpacing},
    {"contact_to_gate", &DesignRules::contactToGate},
    {"active_over_contact", &DesignRules::activeOverContact},
    {"poly_over_contact", &DesignRules::polyOverContact},
    {"metal1_over_contact", &DesignRules::metal1OverContact},
    {"via1_size", &DesignRules::via1Size},
    {"via1_spacing", &DesignRules::via1Spacing},
    {"metal1_over_via1", &DesignRules::metal1OverVia1},
    {"metal2_over_via1", &DesignRules::metal2OverVia1},
    {"metal1_min_width", &DesignRules::metal1MinWidth},
    {"metal1_spacing", &DesignRules::metal1Spacing},
    {"metal2_min_width", &DesignRules::metal2MinWidth},
    {"metal2_spacing", &DesignRules::metal2Spacing},
    {"nwell_over_active", &DesignRules::nwellOverActive},
    {"nwell_spacing", &DesignRules::nwellSpacing},
    {"select_over_active", &DesignRules::selectOverActive},
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

}  // namespace

std::string Technology::toText() const {
  KeyWriter w;
  w.section("tech");
  w.kv("name", name);
  w.kv("nominal_vdd", nominalVdd);
  w.kv("temperature", temperature);
  w.kv("contact_max_amp", contactMaxAmp);
  w.kv("via1_max_amp", via1MaxAmp);
  w.kv("contact_res_ohm", contactResOhm);
  w.kv("nwell_cap_area", nwellCapAreaPerM2);
  w.kv("nwell_cap_perim", nwellCapPerimPerM);
  w.kv("plate_cap", plateCapPerM2);

  w.section("rules");
  for (const RuleEntry& e : kRuleEntries) w.kv(e.key, rules.*(e.member));

  for (Layer l : kAllLayers) {
    const LayerElectrical& le = layer(l);
    w.section(std::string("layer ") + std::string(layerName(l)));
    w.kv("cap_area", le.capAreaPerM2);
    w.kv("cap_fringe", le.capFringePerM);
    w.kv("cap_couple", le.capCouplePerM);
    w.kv("sheet_res", le.sheetResOhmSq);
    w.kv("em_max_amp_per_m", le.emMaxAmpPerM);
  }

  w.section("model nmos");
  writeCard(w, nmos);
  w.section("model pmos");
  writeCard(w, pmos);
  return w.out.str();
}

Technology Technology::atCorner(ProcessCorner corner) const {
  Technology t = *this;
  auto slow = [](MosModelCard& c) {
    c.vto *= 1.08;
    c.kp *= 0.88;
  };
  auto fast = [](MosModelCard& c) {
    c.vto *= 0.92;
    c.kp *= 1.12;
  };
  switch (corner) {
    case ProcessCorner::kTypical: break;
    case ProcessCorner::kSlow: slow(t.nmos); slow(t.pmos); break;
    case ProcessCorner::kFast: fast(t.nmos); fast(t.pmos); break;
    case ProcessCorner::kSlowNFastP: slow(t.nmos); fast(t.pmos); break;
    case ProcessCorner::kFastNSlowP: fast(t.nmos); slow(t.pmos); break;
  }
  t.name = name + "_" + cornerName(corner);
  return t;
}

Technology Technology::parse(std::string_view text) {
  Technology t = generic060();  // Parse on top of sane defaults.
  std::string section = "tech";
  std::string sectionArg;

  std::size_t pos = 0;
  int lineNo = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++lineNo;
    if (line.empty() || line.front() == '#') continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        throw TechParseError("line " + std::to_string(lineNo) + ": unterminated section header");
      }
      std::string_view body = trim(line.substr(1, line.size() - 2));
      const std::size_t sp = body.find(' ');
      section = std::string(trim(body.substr(0, sp)));
      sectionArg = sp == std::string_view::npos ? "" : std::string(trim(body.substr(sp + 1)));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw TechParseError("line " + std::to_string(lineNo) + ": expected 'key = value'");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    auto num = [&] {
      try {
        return std::stod(std::string(value));
      } catch (const std::exception&) {
        throw TechParseError("line " + std::to_string(lineNo) + ": bad number '" +
                             std::string(value) + "'");
      }
    };

    if (section == "tech") {
      if (key == "name") t.name = std::string(value);
      else if (key == "nominal_vdd") t.nominalVdd = num();
      else if (key == "temperature") t.temperature = num();
      else if (key == "contact_max_amp") t.contactMaxAmp = num();
      else if (key == "via1_max_amp") t.via1MaxAmp = num();
      else if (key == "contact_res_ohm") t.contactResOhm = num();
      else if (key == "nwell_cap_area") t.nwellCapAreaPerM2 = num();
      else if (key == "nwell_cap_perim") t.nwellCapPerimPerM = num();
      else if (key == "plate_cap") t.plateCapPerM2 = num();
      else throw TechParseError("line " + std::to_string(lineNo) + ": unknown tech key '" +
                                std::string(key) + "'");
    } else if (section == "rules") {
      bool found = false;
      for (const RuleEntry& e : kRuleEntries) {
        if (e.key == key) {
          t.rules.*(e.member) = static_cast<Nm>(num());
          found = true;
          break;
        }
      }
      if (!found) {
        throw TechParseError("line " + std::to_string(lineNo) + ": unknown rule '" +
                             std::string(key) + "'");
      }
    } else if (section == "layer") {
      const auto layerId = layerFromName(sectionArg);
      if (!layerId) throw TechParseError("unknown layer '" + sectionArg + "'");
      LayerElectrical& le = t.layer(*layerId);
      if (key == "cap_area") le.capAreaPerM2 = num();
      else if (key == "cap_fringe") le.capFringePerM = num();
      else if (key == "cap_couple") le.capCouplePerM = num();
      else if (key == "sheet_res") le.sheetResOhmSq = num();
      else if (key == "em_max_amp_per_m") le.emMaxAmpPerM = num();
      else throw TechParseError("line " + std::to_string(lineNo) + ": unknown layer key '" +
                                std::string(key) + "'");
    } else if (section == "model") {
      MosModelCard* card = nullptr;
      if (sectionArg == "nmos") card = &t.nmos;
      else if (sectionArg == "pmos") card = &t.pmos;
      else throw TechParseError("unknown model section '" + sectionArg + "'");
      if (!setCardKey(*card, key, value)) {
        throw TechParseError("line " + std::to_string(lineNo) + ": unknown model key '" +
                             std::string(key) + "'");
      }
    } else {
      throw TechParseError("unknown section '" + section + "'");
    }
  }
  t.nmos.type = MosType::kNmos;
  t.pmos.type = MosType::kPmos;
  return t;
}

Technology Technology::fromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TechParseError("cannot open technology file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace lo::tech
