// Physical constants and unit helpers shared by every library in the project.
//
// Conventions:
//   * Electrical quantities are SI (volts, amps, farads, ohms, hertz, meters).
//   * Layout geometry is integer nanometres (see geom::Coord); the helpers
//     here convert between drawn nanometres and SI metres.
#pragma once

#include <cstdint>

namespace lo {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double kElectronCharge = 1.602176634e-19;
/// Permittivity of free space [F/m].
inline constexpr double kEps0 = 8.8541878128e-12;
/// Relative permittivity of SiO2.
inline constexpr double kEpsrSiO2 = 3.9;
/// Default analysis temperature [K] (27 C, SPICE default).
inline constexpr double kRoomTemperature = 300.15;

/// Thermal voltage kT/q at temperature `tempK` [V].
[[nodiscard]] constexpr double thermalVoltage(double tempK = kRoomTemperature) {
  return kBoltzmann * tempK / kElectronCharge;
}

// --- Unit multipliers (value * kMicro reads as "value in micro-units"). ---
inline constexpr double kTera = 1e12;
inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;
inline constexpr double kAtto = 1e-18;

/// Convert drawn nanometres (layout grid units) to metres.
[[nodiscard]] constexpr double nmToMeters(std::int64_t nm) {
  return static_cast<double>(nm) * 1e-9;
}

/// Convert metres to drawn nanometres, truncating toward zero.
[[nodiscard]] constexpr std::int64_t metersToNm(double m) {
  return static_cast<std::int64_t>(m * 1e9);
}

}  // namespace lo
