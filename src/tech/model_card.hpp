// MOS transistor model cards.
//
// A single card parameterises both supported device models (Level 1 and the
// EKV-style all-region model in src/device).  The sizing tool and the
// simulator consume the same card through the same model code, which is the
// accuracy argument of the paper (section 4: "Accuracy with respect to
// simulation is greatly improved by using the same transistor models").
#pragma once

#include <string>

namespace lo::tech {

enum class MosType { kNmos, kPmos };

struct MosModelCard {
  std::string name = "nmos";
  MosType type = MosType::kNmos;

  // --- Threshold and transconductance. ---
  double vto = 0.75;        ///< Zero-bias threshold voltage [V] (magnitude).
  double kp = 110e-6;       ///< Transconductance parameter u0*Cox [A/V^2].
  double gamma = 0.55;      ///< Body-effect coefficient [sqrt(V)].
  double phi = 0.7;         ///< Surface potential [V].
  double earlyPerMeter = 8e6;  ///< Early voltage per channel length [V/m];
                               ///< VA = earlyPerMeter * Leff.
  double tox = 14e-9;       ///< Gate oxide thickness [m].
  double ld = 50e-9;        ///< Lateral diffusion [m]; Leff = L - 2*ld.
  double theta = 0.15;      ///< Mobility degradation with gate drive [1/V].

  // --- Junction (diffusion) capacitances. ---
  double cj = 0.44e-3;      ///< Zero-bias area junction cap [F/m^2].
  double cjsw = 0.25e-9;    ///< Zero-bias sidewall junction cap [F/m].
  double mj = 0.5;          ///< Area grading coefficient.
  double mjsw = 0.33;       ///< Sidewall grading coefficient.
  double pb = 0.9;          ///< Junction built-in potential [V].

  // --- Overlap capacitances. ---
  double cgso = 0.12e-9;    ///< Gate-source overlap cap per width [F/m].
  double cgdo = 0.12e-9;    ///< Gate-drain overlap cap per width [F/m].
  double cgbo = 0.10e-9;    ///< Gate-bulk overlap cap per length [F/m].

  // --- Noise. ---
  double kf = 2.0e-27;      ///< Flicker noise coefficient (SPICE KF).
  double af = 1.0;          ///< Flicker noise exponent (SPICE AF).

  // --- EKV extras. ---
  double slopeFactor = 1.3;  ///< Subthreshold slope factor n.

  // --- Temperature behaviour (applied about tempRef). ---
  double tempRef = 300.15;          ///< Reference temperature [K].
  double vtoTempCoeff = -1.5e-3;    ///< d|VTO|/dT [V/K] (magnitude shrinks).
  double mobilityExponent = -1.5;   ///< kp(T) = kp (T/tempRef)^exponent.

  /// Threshold magnitude at temperature T [V].
  [[nodiscard]] double vtoAt(double tempK) const {
    return vto + vtoTempCoeff * (tempK - tempRef);
  }
  /// Transconductance parameter at temperature T [A/V^2].
  [[nodiscard]] double kpAt(double tempK) const;

  /// Gate oxide capacitance per area [F/m^2].
  [[nodiscard]] double cox() const;

  /// Effective channel length for a drawn length [m].
  [[nodiscard]] double leff(double drawnL) const {
    const double l = drawnL - 2.0 * ld;
    return l > 1e-9 ? l : 1e-9;
  }

  /// Sign of the drain current flow: +1 for NMOS, -1 for PMOS.
  [[nodiscard]] double polarity() const { return type == MosType::kNmos ? 1.0 : -1.0; }
};

}  // namespace lo::tech
