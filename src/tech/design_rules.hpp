// Geometric design rules for the symbolic layout generators.
//
// All distances are drawn nanometres.  The rule set is deliberately flat (a
// plain struct) rather than a generic rule deck: the procedural generators
// reference rules by name, which keeps them readable and fast, and a new
// technology only has to fill in this struct (paper, section 3,
// "Technology independence").
#pragma once

#include <cstdint>

namespace lo::tech {

using Nm = std::int64_t;  ///< Drawn distance in nanometres.

struct DesignRules {
  Nm grid = 50;  ///< Layout grid; all shape edges snap to multiples of this.

  // --- Transistor core rules. ---
  Nm polyMinWidth = 600;        ///< Minimum drawn gate length.
  Nm polySpacing = 800;         ///< Poly-to-poly spacing (gate pitch driver).
  Nm polyEndcap = 600;          ///< Gate poly extension beyond active.
  Nm activeMinWidth = 800;      ///< Minimum drawn transistor width.
  Nm activeSpacing = 1200;      ///< Active-to-active spacing.
  Nm activeToWell = 1200;       ///< P-active to N-well edge (outside well).

  // --- Contacts and vias. ---
  Nm contactSize = 600;         ///< Square contact cut edge.
  Nm contactSpacing = 600;      ///< Cut-to-cut spacing.
  Nm contactToGate = 600;       ///< Contact cut to gate poly spacing.
  Nm activeOverContact = 100;   ///< Active enclosure of contact cut (kept tight
                                ///< so a minimum-width finger can be contacted).
  Nm polyOverContact = 300;     ///< Poly enclosure of contact cut.
  Nm metal1OverContact = 200;   ///< Metal1 enclosure of contact cut.
  Nm via1Size = 600;
  Nm via1Spacing = 600;
  Nm metal1OverVia1 = 200;
  Nm metal2OverVia1 = 300;

  // --- Routing layers. ---
  Nm metal1MinWidth = 800;
  Nm metal1Spacing = 800;
  Nm metal2MinWidth = 900;
  Nm metal2Spacing = 900;

  // --- Wells and selects. ---
  Nm nwellOverActive = 1200;    ///< N-well enclosure of P-active.
  Nm nwellSpacing = 2400;
  Nm selectOverActive = 400;    ///< N+/P+ implant enclosure of active.

  /// Snap a distance up to the next grid multiple.
  [[nodiscard]] Nm snapUp(Nm value) const {
    const Nm rem = value % grid;
    return rem == 0 ? value : value + (grid - rem);
  }

  /// Snap a distance down to the previous grid multiple.
  [[nodiscard]] Nm snapDown(Nm value) const { return value - value % grid; }

  /// Snap to the nearest grid multiple (ties round up).
  [[nodiscard]] Nm snapNearest(Nm value) const {
    const Nm down = snapDown(value);
    return (value - down) * 2 >= grid ? down + grid : down;
  }

  /// Width of a source/drain diffusion strip that carries a contact row:
  /// gate spacing + cut + enclosure on the outer edge.
  [[nodiscard]] Nm contactedDiffusionExtent() const {
    return contactToGate + contactSize + activeOverContact;
  }

  /// Width of a diffusion strip shared between two gates with a contact row
  /// in the middle (internal diffusion of a folded transistor).
  [[nodiscard]] Nm sharedContactedDiffusionExtent() const {
    return 2 * contactToGate + contactSize;
  }
};

}  // namespace lo::tech
