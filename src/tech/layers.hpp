// Mask layer identifiers for the symbolic layout system.
//
// The layout generator (CAIRO-class library in src/layout) emits geometry on
// these symbolic layers; the Technology object maps each layer to design
// rules, capacitance coefficients and sheet resistance, which is what makes
// the generators technology independent (paper, section 3, "Technology
// independence").
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace lo::tech {

enum class Layer : std::uint8_t {
  kNWell = 0,   ///< N-well (PMOS bulk).
  kActive,      ///< Diffusion (source/drain and channel area).
  kPoly,        ///< Polysilicon gates and local interconnect.
  kNPlus,       ///< N+ implant select.
  kPPlus,       ///< P+ implant select.
  kContact,     ///< Active/poly to metal1 contact cut.
  kMetal1,      ///< First metal routing layer.
  kVia1,        ///< Metal1 to metal2 cut.
  kMetal2,      ///< Second metal routing layer.
};

inline constexpr std::size_t kLayerCount = 9;

inline constexpr std::array<Layer, kLayerCount> kAllLayers = {
    Layer::kNWell, Layer::kActive,  Layer::kPoly,
    Layer::kNPlus, Layer::kPPlus,   Layer::kContact,
    Layer::kMetal1, Layer::kVia1,   Layer::kMetal2,
};

[[nodiscard]] constexpr std::string_view layerName(Layer layer) {
  switch (layer) {
    case Layer::kNWell: return "nwell";
    case Layer::kActive: return "active";
    case Layer::kPoly: return "poly";
    case Layer::kNPlus: return "nplus";
    case Layer::kPPlus: return "pplus";
    case Layer::kContact: return "contact";
    case Layer::kMetal1: return "metal1";
    case Layer::kVia1: return "via1";
    case Layer::kMetal2: return "metal2";
  }
  return "unknown";
}

/// Parse a layer name as written by layerName(); empty optional on failure.
[[nodiscard]] constexpr std::optional<Layer> layerFromName(std::string_view name) {
  for (Layer layer : kAllLayers) {
    if (layerName(layer) == name) return layer;
  }
  return std::nullopt;
}

/// True for layers that carry current and therefore have electromigration
/// width rules (paper, section 3, "Reliability constraints").
[[nodiscard]] constexpr bool isRoutingLayer(Layer layer) {
  return layer == Layer::kPoly || layer == Layer::kMetal1 || layer == Layer::kMetal2;
}

}  // namespace lo::tech
