// Row-based placement over height-quantized primitives.
//
// Analog placement after the slicing era is row-disciplined (arXiv
// 2606.21767): devices become height-quantized row primitives -- every
// item's shape menu is grid-snapped by the motif/stack generators -- and
// the placer decides row assignment and in-row ordering instead of
// arbitrary cuts.  This module is the generic middle of the layout
// pipeline: topology generators declare *items* (motifs, matched stacks,
// passives) and *constraints* (layout/constraints.hpp), the RowPlacer
// finds an arrangement that satisfies the constraints, and the existing
// slicing-tree shape-function optimiser (layout/slicing.hpp) remains the
// evaluation backend that picks each item's fold alternative and packs
// the rows.
//
// Two search modes:
//   * kDeclared -- rows and in-row orders exactly as the SameRow
//     constraints declare them.  This compiles to the same slicing tree
//     the hand-written generators used to build (PMOS rows share a
//     sub-column separated by well gaps, mixed transitions get the
//     well-clearance gap) and therefore reproduces their floorplans
//     byte-for-byte.
//   * kSeeded -- a deterministic seeded search over in-row orderings
//     (mirror pairs permute as units around the symmetry axis, free items
//     redistribute to the row ends) and row re-assignment of unpinned
//     items, scored by area plus estimated wirelength; candidates that
//     break a declared symmetry are rejected by the DRC symmetry audit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "layout/constraints.hpp"
#include "layout/router.hpp"
#include "layout/slicing.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

enum class RowKind { kNmos, kPmos, kPassive };

[[nodiscard]] const char* rowKindName(RowKind kind);

/// One placeable unit: a transistor motif, a matched stack or a passive.
struct RowItem {
  std::string name;
  RowKind kind = RowKind::kNmos;
  /// PMOS items: the net their well ties to.  Consecutive PMOS rows with
  /// different well nets are separated by the well-spacing gap; items in
  /// one row must agree on the well.
  std::string wellNet;
  /// Tag-along devices (bias-generator legs): pinned at the row's right
  /// end in declared order and excluded from the row's routing band.
  bool annex = false;
  /// Height-quantized shape menu, one entry per legal fold alternative.
  std::vector<ShapeOption> options;
  /// Nets the item's ports touch, for the wirelength estimate.
  std::vector<std::string> nets;
};

/// Vertical extent of a row's core items (annex items excluded), used to
/// carve the routing channels between rows.
struct RowBand {
  geom::Coord lo = 0;
  geom::Coord hi = 0;
};

struct RowAssignment {
  RowKind kind = RowKind::kNmos;
  std::string wellNet;
  geom::Coord spacing = 0;
  std::vector<std::string> items;  ///< Final left-to-right order.
  RowBand band;
};

enum class RowSearch {
  kDeclared,  ///< Constraint-declared rows/orders (legacy-exact backend).
  kSeeded,    ///< Seeded deterministic search for better arrangements.
};

struct RowPlacerOptions {
  ShapeConstraint shape;
  RowSearch search = RowSearch::kDeclared;
  std::uint64_t seed = 1;
  int candidates = 96;    ///< Search candidates beyond the declared one.
  int threads = 1;        ///< Parallel candidate evaluation (result is
                          ///< independent of the thread count).
  /// Cost of one nm of estimated wire in nm^2 of equivalent area -- the
  /// footprint of a ~50 nm strip per default; raise to trade area for
  /// shorter wires.
  double wireCostNm = 50.0;
};

struct RowPlacement {
  FloorplanResult floorplan;
  std::map<std::string, int> tags;  ///< Chosen fold alternative per item.
  std::vector<RowAssignment> rows;  ///< Bottom to top.
  double estimatedWirelengthNm = 0.0;
  double scoreNm2 = 0.0;            ///< area + wireCostNm * wirelength.
  int candidatesEvaluated = 0;
};

class RowPlacer {
 public:
  /// Validates the constraints against the item names (throws
  /// std::invalid_argument on violations, mixed-kind rows or
  /// disagreeing wells within a row).
  RowPlacer(const tech::Technology& t, std::vector<RowItem> items,
            ConstraintSet constraints);

  [[nodiscard]] RowPlacement place(const RowPlacerOptions& options) const;

  [[nodiscard]] const std::vector<RowItem>& items() const { return items_; }
  [[nodiscard]] const ConstraintSet& constraints() const { return constraints_; }

 private:
  const tech::Technology& tech_;
  std::vector<RowItem> items_;
  ConstraintSet constraints_;
};

/// Routing channels around the placed rows: one band below the bottom row,
/// one between each pair of adjacent rows and one above the top row,
/// inset by the metal1 spacing rule; the outer bands extend `margin`.
[[nodiscard]] std::vector<Channel> rowChannels(const tech::Technology& t,
                                               const RowPlacement& placement,
                                               geom::Coord margin);

/// One placed item's active-area footprint, for merged well generation.
struct RowActive {
  tech::MosType type = tech::MosType::kNmos;
  std::string wellNet;  ///< PMOS: the net the well ties to.
  geom::Rect active;
};

/// Merged wells and selects, the row discipline's well-sharing rule: PMOS
/// actives grouped by well net get one N-well (net-tagged, for the
/// floating-well capacitance extraction) plus a P+ select each; all NMOS
/// actives share one N+ select.  Group order follows first appearance.
[[nodiscard]] geom::ShapeList mergedRowWells(const tech::Technology& t,
                                             const std::vector<RowActive>& actives);

}  // namespace lo::layout
