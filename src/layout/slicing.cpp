#include "layout/slicing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lo::layout {

std::unique_ptr<SlicingNode> SlicingNode::leaf(std::string name,
                                               std::vector<ShapeOption> options) {
  if (options.empty()) throw std::invalid_argument("slicing leaf needs at least one option");
  auto n = std::make_unique<SlicingNode>();
  n->kind_ = Kind::kLeaf;
  n->name_ = std::move(name);
  n->options_ = std::move(options);
  return n;
}

std::unique_ptr<SlicingNode> SlicingNode::row(
    std::vector<std::unique_ptr<SlicingNode>> children, geom::Coord spacing) {
  if (children.empty()) throw std::invalid_argument("slicing row needs children");
  auto n = std::make_unique<SlicingNode>();
  n->kind_ = Kind::kRow;
  n->children_ = std::move(children);
  n->spacing_ = spacing;
  return n;
}

std::unique_ptr<SlicingNode> SlicingNode::column(
    std::vector<std::unique_ptr<SlicingNode>> children, geom::Coord spacing) {
  if (children.empty()) throw std::invalid_argument("slicing column needs children");
  auto n = std::make_unique<SlicingNode>();
  n->kind_ = Kind::kColumn;
  n->children_ = std::move(children);
  n->spacing_ = spacing;
  return n;
}

namespace {

using geom::Coord;

/// One Pareto point of a (partial) shape function with back pointers.
struct SfEntry {
  Coord w = 0, h = 0;
  int a = -1;  ///< Leaf: option index.  Composite: entry in previous partial.
  int b = -1;  ///< Composite: entry in the k-th child's function.
};

struct Sf {
  std::vector<SfEntry> entries;
};

constexpr std::size_t kMaxEntries = 96;

/// Keep only Pareto-optimal entries, sorted by width; thin if oversized.
Sf prune(Sf sf) {
  std::sort(sf.entries.begin(), sf.entries.end(), [](const SfEntry& x, const SfEntry& y) {
    return x.w != y.w ? x.w < y.w : x.h < y.h;
  });
  Sf out;
  for (const SfEntry& e : sf.entries) {
    if (out.entries.empty() || e.h < out.entries.back().h) out.entries.push_back(e);
  }
  if (out.entries.size() > kMaxEntries) {
    Sf thin;
    const double step = static_cast<double>(out.entries.size() - 1) / (kMaxEntries - 1);
    for (std::size_t i = 0; i < kMaxEntries; ++i) {
      thin.entries.push_back(out.entries[static_cast<std::size_t>(i * step + 0.5)]);
    }
    out = std::move(thin);
  }
  return out;
}

Sf combine(const Sf& lhs, const Sf& rhs, bool isRow, Coord spacing) {
  Sf out;
  out.entries.reserve(lhs.entries.size() * rhs.entries.size());
  for (std::size_t i = 0; i < lhs.entries.size(); ++i) {
    for (std::size_t j = 0; j < rhs.entries.size(); ++j) {
      SfEntry e;
      if (isRow) {
        e.w = lhs.entries[i].w + rhs.entries[j].w + spacing;
        e.h = std::max(lhs.entries[i].h, rhs.entries[j].h);
      } else {
        e.w = std::max(lhs.entries[i].w, rhs.entries[j].w);
        e.h = lhs.entries[i].h + rhs.entries[j].h + spacing;
      }
      e.a = static_cast<int>(i);
      e.b = static_cast<int>(j);
      out.entries.push_back(e);
    }
  }
  return prune(std::move(out));
}

/// Shape functions of a node: `final` plus the left-fold intermediates that
/// make the chosen entry traceable back to each child.
struct NodeSf {
  Sf final;
  std::vector<Sf> partials;
  std::vector<NodeSf> children;
};

NodeSf computeSf(const SlicingNode& node) {
  NodeSf out;
  if (node.kind() == SlicingNode::Kind::kLeaf) {
    Sf sf;
    for (std::size_t i = 0; i < node.options().size(); ++i) {
      const ShapeOption& o = node.options()[i];
      sf.entries.push_back({o.w, o.h, static_cast<int>(i), -1});
    }
    out.final = prune(std::move(sf));
    return out;
  }
  const bool isRow = node.kind() == SlicingNode::Kind::kRow;
  for (const auto& c : node.children()) out.children.push_back(computeSf(*c));
  out.partials.push_back(out.children[0].final);
  for (std::size_t k = 1; k < out.children.size(); ++k) {
    out.partials.push_back(
        combine(out.partials.back(), out.children[k].final, isRow, node.spacing()));
  }
  out.final = out.partials.back();
  return out;
}

void realize(const SlicingNode& node, const NodeSf& sf, int entryIdx, Coord x0, Coord y0,
             std::map<std::string, PlacedLeaf>& leaves) {
  if (node.kind() == SlicingNode::Kind::kLeaf) {
    const SfEntry& e = sf.final.entries[entryIdx];
    const ShapeOption& opt = node.options()[e.a];
    leaves[node.name()] = {opt.tag, geom::Rect(x0, y0, x0 + opt.w, y0 + opt.h)};
    return;
  }
  const bool isRow = node.kind() == SlicingNode::Kind::kRow;
  const std::size_t n = sf.children.size();

  // Unwind the left fold to recover each child's chosen entry.
  std::vector<int> choice(n, 0);
  int idx = entryIdx;
  for (std::size_t k = n; k-- > 1;) {
    const SfEntry& e = sf.partials[k].entries[idx];
    choice[k] = e.b;
    idx = e.a;
  }
  choice[0] = idx;

  const SfEntry& total = sf.partials[n - 1].entries[entryIdx];
  Coord cursor = isRow ? x0 : y0;
  for (std::size_t k = 0; k < n; ++k) {
    const SfEntry& ce = sf.children[k].final.entries[choice[k]];
    // Centre in the cross direction; advance in the slicing direction.
    const Coord cx = isRow ? cursor : x0 + (total.w - ce.w) / 2;
    const Coord cy = isRow ? y0 + (total.h - ce.h) / 2 : cursor;
    realize(*node.children()[k], sf.children[k], choice[k], cx, cy, leaves);
    cursor += (isRow ? ce.w : ce.h) + node.spacing();
  }
}

}  // namespace

FloorplanResult SlicingTree::optimize(const ShapeConstraint& constraint) const {
  if (!root_) throw std::invalid_argument("SlicingTree: empty tree");
  const NodeSf sf = computeSf(*root_);
  const std::vector<SfEntry>& entries = sf.final.entries;
  if (entries.empty()) throw std::invalid_argument("SlicingTree: no feasible shape");

  auto fits = [&](const SfEntry& e) {
    if (constraint.maxWidth && e.w > *constraint.maxWidth) return false;
    if (constraint.maxHeight && e.h > *constraint.maxHeight) return false;
    if (constraint.aspectRatio) {
      const double ratio = static_cast<double>(e.w) / static_cast<double>(e.h);
      if (std::abs(std::log(ratio / *constraint.aspectRatio)) > std::log(1.3)) return false;
    }
    return true;
  };
  auto area = [](const SfEntry& e) {
    return static_cast<double>(e.w) * static_cast<double>(e.h);
  };
  /// Distance from feasibility, used only when nothing fits.
  auto violation = [&](const SfEntry& e) {
    double v = 0.0;
    if (constraint.maxWidth && e.w > *constraint.maxWidth) {
      v += static_cast<double>(e.w - *constraint.maxWidth);
    }
    if (constraint.maxHeight && e.h > *constraint.maxHeight) {
      v += static_cast<double>(e.h - *constraint.maxHeight);
    }
    if (constraint.aspectRatio) {
      const double ratio = static_cast<double>(e.w) / static_cast<double>(e.h);
      v += 1e6 * std::abs(std::log(ratio / *constraint.aspectRatio));
    }
    return v;
  };

  int best = -1;
  bool bestFits = false;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const bool f = fits(entries[i]);
    if (best < 0) {
      best = static_cast<int>(i);
      bestFits = f;
      continue;
    }
    if (f && !bestFits) {
      best = static_cast<int>(i);
      bestFits = true;
    } else if (f == bestFits) {
      const bool better = f ? area(entries[i]) < area(entries[best])
                            : violation(entries[i]) < violation(entries[best]);
      if (better) best = static_cast<int>(i);
    }
  }

  FloorplanResult result;
  result.width = entries[best].w;
  result.height = entries[best].h;
  realize(*root_, sf, best, 0, 0, result.leaves);
  return result;
}

}  // namespace lo::layout
