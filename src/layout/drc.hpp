// Geometric design-rule checker.
//
// Validates the generators' output against the Technology rules: minimum
// widths, same-layer spacing (net-aware: touching shapes of one net are a
// connection, overlapping shapes of different nets are a short), contact and
// via enclosures, and well / select enclosure of active.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "geom/geometry.hpp"
#include "layout/constraints.hpp"
#include "layout/slicing.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

struct DrcViolation {
  std::string rule;       ///< e.g. "metal1.width", "poly.spacing".
  std::string detail;
  geom::Rect where;
};

/// Checks: minimum widths, same-layer net-aware spacing, contact/via size
/// and enclosures, select/well enclosure of active, gate end-cap extension
/// (poly crossing active must stick out by polyEndcap on both sides) and
/// no contact cut over a gate region.
///
/// Run all checks; returns every violation found (empty = clean).
[[nodiscard]] std::vector<DrcViolation> runDrc(const tech::Technology& t,
                                               const geom::ShapeList& shapes);

/// Symmetry audit over a placed floorplan: every MirrorPair must mirror
/// about its row's vertical axis (equal outlines, same y extent) and every
/// SymmetryAxis item must be centred on that axis, within `tolerance`
/// (pass the layout grid).  Items sharing a row are found by overlapping
/// y extents, so rows with tag-along devices still audit their matched
/// core.  Violations use rules "symmetry.mirror" / "symmetry.axis".
[[nodiscard]] std::vector<DrcViolation> auditSymmetry(
    const ConstraintSet& constraints, const std::map<std::string, PlacedLeaf>& leaves,
    geom::Coord tolerance);

/// Geometric checks plus the symmetry audit of the declared constraints.
[[nodiscard]] std::vector<DrcViolation> runDrc(
    const tech::Technology& t, const geom::ShapeList& shapes,
    const ConstraintSet& constraints, const std::map<std::string, PlacedLeaf>& leaves);

/// Render a violation list for logs/tests.
[[nodiscard]] std::string formatViolations(const std::vector<DrcViolation>& violations);

}  // namespace lo::layout
