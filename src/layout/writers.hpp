// Layout output writers: SVG (for human inspection of Figs. 3 and 5) and
// CIF (Caltech Intermediate Form, the classic machine-readable mask format).
#pragma once

#include <string>

#include "geom/geometry.hpp"

namespace lo::layout {

/// Render shapes to an SVG document (y axis flipped so the layout reads
/// bottom-up as drawn).  Layers get fixed colours and opacity; net-tagged
/// shapes carry a <title> tooltip with the net name.
[[nodiscard]] std::string toSvg(const geom::ShapeList& shapes, double scale = 0.02);

/// Emit CIF: one layer command per used layer, boxes in centimicrons.
[[nodiscard]] std::string toCif(const geom::ShapeList& shapes,
                                const std::string& cellName = "TOP");

/// Emit binary GDSII: one structure containing a BOUNDARY per rectangle,
/// database unit 1 nm, user unit 1 um.  Layer numbers follow gdsLayerNumber().
[[nodiscard]] std::string toGds(const geom::ShapeList& shapes,
                                const std::string& cellName = "TOP");

/// GDS layer number assigned to a symbolic layer.
[[nodiscard]] int gdsLayerNumber(tech::Layer layer);

/// Parse a GDSII stream produced by toGds() (rectangular BOUNDARY elements
/// only); throws std::runtime_error on malformed input or non-rectangular
/// boundaries.  Net tags are not stored in GDS and come back empty.
[[nodiscard]] geom::ShapeList fromGds(const std::string& stream);

/// Write a string to a file; throws std::runtime_error on failure.
void writeFile(const std::string& path, const std::string& content);

/// Where examples and benches put generated artifacts (SVG/CIF/GDS/SPICE):
/// $LOS_OUT_DIR if set, else "examples/out".  Creates the directory on
/// first use and returns "<dir>/<name>", keeping generated files out of
/// the source tree.
[[nodiscard]] std::string outputPath(const std::string& name);

}  // namespace lo::layout
