// Parasitic extraction.
//
// Aggregates everything the sizing tool needs to compensate for the layout
// (paper, section 2): per-net routing capacitance (area + fringe), coupling
// capacitance between wires, exact floating-well capacitance from the drawn
// N-well shapes, and per-device junction geometry.  The same report is
// produced in parasitic-calculation mode (no geometry) and after generation
// (from the drawn shapes), and can be folded back into a circuit netlist as
// lumped capacitors plus annotated device geometries.
#pragma once

#include <map>
#include <string>

#include "circuit/circuit.hpp"
#include "layout/router.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

struct NetParasitics {
  double routingCap = 0.0;   ///< Wire area + fringe capacitance to ground [F].
  double wellCap = 0.0;      ///< Floating N-well junction capacitance [F].
  double routingRes = 0.0;   ///< Series wiring resistance estimate [ohm].
  std::map<std::string, double> coupling;  ///< To other nets [F].

  [[nodiscard]] double totalCap() const {
    double total = routingCap + wellCap;
    for (const auto& [net, cap] : coupling) total += cap;
    return total;
  }
};

struct ParasiticReport {
  std::map<std::string, NetParasitics> nets;

  [[nodiscard]] double capOn(const std::string& net) const {
    auto it = nets.find(net);
    return it == nets.end() ? 0.0 : it->second.totalCap();
  }
};

/// Capacitance of one N-well rectangle tied to a (non-ground) net [F].
[[nodiscard]] double wellCapOf(const tech::Technology& t, const geom::Rect& well);

/// Build a report from routing results and the drawn well shapes.
/// Wells tagged with an empty net, "gnd" or a supply net in `acGroundNets`
/// do not contribute (their cap lands between AC-ground nodes).
[[nodiscard]] ParasiticReport buildReport(const tech::Technology& t,
                                          const RoutingResult& routing,
                                          const geom::ShapeList& shapes,
                                          const std::vector<std::string>& acGroundNets);

/// Routing resistances below this default are lumped to zero when a report
/// is folded back into a circuit (sub-ohm wires are noise next to the
/// multi-kohm device impedances, and every extra node costs MNA time).
inline constexpr double kMinAnnotatedSeriesRes = 1.0;

/// Fold a report into a circuit: adds a grounded capacitor per net and a
/// coupling capacitor per net pair (names prefixed "CPAR_"/"CCPL_").
/// A net whose accumulated routing resistance reaches `minSeriesRes` is
/// split: a series resistor "RPAR_<net>" connects the device node to an
/// internal tap node "<net>_rpar", and that net's parasitic capacitors
/// attach to the tap, so the wire RC actually filters in simulation
/// instead of the resistance being dropped.  Nets missing from the
/// circuit are ignored.
void annotateCircuit(circuit::Circuit& c, const ParasiticReport& report,
                     double minSeriesRes = kMinAnnotatedSeriesRes);

}  // namespace lo::layout
