#include "layout/two_stage_layout.hpp"

#include <algorithm>
#include <limits>

#include "layout/mos_motif.hpp"
#include "tech/units.hpp"

namespace lo::layout {

namespace {

using circuit::TwoStageGroup;
using circuit::TwoStageOtaDesign;
using device::FoldPlan;
using device::FoldStyle;
using geom::Coord;
using geom::Rect;

std::vector<int> foldCandidates(const tech::Technology& t, double w, FoldStyle style,
                                int maxCandidates) {
  const double minW = nmToMeters(t.rules.activeMinWidth);
  std::vector<int> out;
  const int step = style == FoldStyle::kDrainInternal ? 2 : 1;
  for (int nf = step; static_cast<int>(out.size()) < maxCandidates; nf += step) {
    if (w / nf < minW) break;
    out.push_back(nf);
  }
  if (out.empty()) out.push_back(step);
  return out;
}

std::vector<ShapeOption> motifOptions(const tech::Technology& t, double w, double l,
                                      FoldStyle style, double current, int maxCandidates) {
  std::vector<ShapeOption> opts;
  for (int nf : foldCandidates(t, w, style, maxCandidates)) {
    const FoldPlan plan = device::planFoldsExact(t.rules, w, nf, style);
    const MosMotifInfo info = motifShape(t, plan, l, current);
    opts.push_back({info.width, info.height, nf});
  }
  return opts;
}

StackSpec pairSpec(const TwoStageOtaDesign& d, const TwoStageLayoutOptions& opt,
                   int fingers) {
  StackSpec s;
  s.name = "PAIR";
  s.type = tech::MosType::kNmos;
  s.unitWidth = d.inputPair.w / fingers;
  s.drawnL = d.inputPair.l;
  s.sourceNet = "tail";
  s.dummyGateNet = "gnd";
  s.devices = {{"MN1", fingers, "d1", "inn", d.tailCurrent / 2},
               {"MN2", fingers, "o1", "inp", d.tailCurrent / 2}};
  s.pattern = StackPattern::kCommonCentroid;
  s.dummiesPerSide = opt.dummiesPerSide;
  s.emitWellAndSelect = false;
  return s;
}

StackSpec mirrorSpec(const TwoStageOtaDesign& d, const TwoStageLayoutOptions& opt,
                     int fingers) {
  StackSpec s;
  s.name = "MIRROR";
  s.type = tech::MosType::kPmos;
  s.unitWidth = d.mirror.w / fingers;
  s.drawnL = d.mirror.l;
  s.sourceNet = "vdd";
  s.dummyGateNet = "vdd";
  s.bulkNet = "vdd";
  s.devices = {{"MP3", fingers, "d1", "d1", d.tailCurrent / 2},
               {"MP4", fingers, "o1", "d1", d.tailCurrent / 2}};
  s.pattern = StackPattern::kCommonCentroid;
  s.dummiesPerSide = opt.dummiesPerSide;
  s.emitWellAndSelect = false;
  return s;
}

struct MotifLeaf {
  const char* name;
  TwoStageGroup group;
  tech::MosType type;
  const char *drain, *gate, *source, *bulk;
};

const MotifLeaf kTail{"MN5", TwoStageGroup::kTail, tech::MosType::kNmos,
                      "tail", "vbn", "gnd", "gnd"};
const MotifLeaf kSink2{"MN7", TwoStageGroup::kSink2, tech::MosType::kNmos,
                       "out", "vbn", "gnd", "gnd"};
const MotifLeaf kDriver{"MP6", TwoStageGroup::kDriver, tech::MosType::kPmos,
                        "out", "o1", "vdd", "vdd"};

}  // namespace

TwoStageLayoutResult generateTwoStageLayout(const tech::Technology& t,
                                            const TwoStageOtaDesign& design,
                                            const TwoStageLayoutOptions& options,
                                            bool generateGeometry) {
  TwoStageLayoutResult result;
  const Coord rowGap = t.rules.activeSpacing;

  // --- Pre-build the passives (single shape each). ---
  CapacitorSpec ccSpec;
  ccSpec.name = "CC";
  ccSpec.farads = design.cc;
  ccSpec.bottomNet = "rzm";  // Bottom plate on the Rz side: its substrate
  ccSpec.topNet = "out";     // parasitic loads the midpoint, not the output.
  ccSpec.aspect = 2.0;
  const Cell ccCell = generateCapacitor(t, ccSpec, &result.ccInfo);

  ResistorSpec rzSpec;
  rzSpec.name = "RZ";
  rzSpec.ohms = design.rz;
  rzSpec.netA = "o1";
  rzSpec.netB = "rzm";
  const Cell rzCell = generateResistor(t, rzSpec, &result.rzInfo);

  // --- Slicing tree with symmetric second pass. ---
  auto buildTree = [&](const std::map<std::string, int>* fixed) {
    auto restrict = [&](const std::string& name, std::vector<ShapeOption> opts) {
      if (fixed) {
        const int tag = fixed->at(name);
        opts.erase(std::remove_if(opts.begin(), opts.end(),
                                  [&](const ShapeOption& o) { return o.tag != tag; }),
                   opts.end());
      }
      return SlicingNode::leaf(name, std::move(opts));
    };
    auto motifLeaf = [&](const MotifLeaf& m) {
      const device::MosGeometry& geo = design.geometry(m.group);
      return restrict(m.name,
                      motifOptions(t, geo.w, geo.l, options.foldStyle,
                                   twoStageGroupCurrent(design, m.group),
                                   options.maxFoldCandidates));
    };
    auto stackLeaf = [&](const char* name, bool isPair) {
      const double w = isPair ? design.inputPair.w : design.mirror.w;
      std::vector<ShapeOption> opts;
      for (int nf : foldCandidates(t, w, FoldStyle::kDrainInternal,
                                   options.maxFoldCandidates)) {
        const StackSpec s = isPair ? pairSpec(design, options, nf)
                                   : mirrorSpec(design, options, nf);
        const StackExtents e = stackExtents(t, s);
        opts.push_back({e.width, e.height, nf});
      }
      return restrict(name, std::move(opts));
    };

    std::vector<std::unique_ptr<SlicingNode>> bottom;
    bottom.push_back(motifLeaf(kTail));
    bottom.push_back(stackLeaf("PAIR", true));
    bottom.push_back(motifLeaf(kSink2));

    std::vector<std::unique_ptr<SlicingNode>> mid;
    const Rect ccBox = ccCell.bbox();
    const Rect rzBox = rzCell.bbox();
    mid.push_back(restrict("CC", {{ccBox.width(), ccBox.height(), 0}}));
    mid.push_back(restrict("RZ", {{rzBox.width(), rzBox.height(), 0}}));

    std::vector<std::unique_ptr<SlicingNode>> top;
    top.push_back(stackLeaf("MIRROR", false));
    top.push_back(motifLeaf(kDriver));

    const Coord routingAllowance = 16000;
    const Coord mixGap =
        t.rules.activeToWell + t.rules.nwellOverActive + rowGap + routingAllowance;
    std::vector<std::unique_ptr<SlicingNode>> rows;
    rows.push_back(SlicingNode::row(std::move(bottom), rowGap));
    rows.push_back(SlicingNode::row(std::move(mid), rowGap * 2));
    rows.push_back(SlicingNode::row(std::move(top), rowGap));
    return SlicingTree(SlicingNode::column(std::move(rows), mixGap));
  };

  const FloorplanResult fp1 = buildTree(nullptr).optimize(options.shape);
  std::map<std::string, int> tags;
  for (const auto& [name, leaf] : fp1.leaves) tags[name] = leaf.tag;
  const FloorplanResult fp = buildTree(&tags).optimize(options.shape);
  result.floorplan = fp;
  result.width = fp.width;
  result.height = fp.height;

  // --- Fold plans and junctions. ---
  auto motifPlan = [&](const MotifLeaf& m) {
    const device::MosGeometry& geo = design.geometry(m.group);
    const FoldPlan plan =
        device::planFoldsExact(t.rules, geo.w, tags.at(m.name), options.foldStyle);
    result.foldPlans[m.group] = plan;
    device::MosGeometry j = geo;
    device::applyDiffusionGeometry(t.rules, plan, j);
    result.junctions[m.group] = j;
  };
  motifPlan(kTail);
  motifPlan(kSink2);
  motifPlan(kDriver);

  const StackSpec pair = pairSpec(design, options, tags.at("PAIR"));
  const StackSpec mirror = mirrorSpec(design, options, tags.at("MIRROR"));
  result.pairPlan = planStack(pair);
  StackPlan mirrorPlan = planStack(mirror);
  fillStackJunctions(t.rules, pair, result.pairPlan);
  fillStackJunctions(t.rules, mirror, mirrorPlan);
  result.junctions[TwoStageGroup::kInputPair] = result.pairPlan.metrics[0].junctions;
  result.junctions[TwoStageGroup::kMirror] = mirrorPlan.metrics[0].junctions;
  {
    FoldPlan pp;
    pp.nf = tags.at("PAIR");
    pp.foldWidth = pair.unitWidth;
    pp.totalWidth = pp.foldWidth * pp.nf;
    pp.drainInternal = true;
    result.foldPlans[TwoStageGroup::kInputPair] = pp;
    FoldPlan mp = pp;
    mp.nf = tags.at("MIRROR");
    mp.foldWidth = mirror.unitWidth;
    mp.totalWidth = mp.foldWidth * mp.nf;
    result.foldPlans[TwoStageGroup::kMirror] = mp;
  }

  // --- Assemble. ---
  Cell assembly;
  assembly.name = "TWO_STAGE";
  std::vector<Rect> pmosActives, nmosActives;
  auto placeChild = [&](const Cell& child, const Rect& where,
                        std::vector<Rect>* actives) {
    const Rect box = child.bbox();
    const Coord dx = where.x0 - box.x0, dy = where.y0 - box.y0;
    assembly.place(child, geom::Orient::kR0, dx, dy);
    if (actives) {
      const Rect act = child.shapes.bbox(tech::Layer::kActive).translated(dx, dy);
      if (!act.empty()) actives->push_back(act);
    }
  };
  auto placeMotif = [&](const MotifLeaf& m) {
    MosMotifSpec spec;
    spec.name = m.name;
    spec.type = m.type;
    spec.plan = result.foldPlans[m.group];
    spec.drawnL = design.geometry(m.group).l;
    spec.terminalCurrent = twoStageGroupCurrent(design, m.group);
    spec.drainNet = m.drain;
    spec.gateNet = m.gate;
    spec.sourceNet = m.source;
    spec.bulkNet = m.bulk;
    spec.emitWellAndSelect = false;
    const Cell cell = generateMosMotif(t, spec);
    placeChild(cell, fp.leaves.at(m.name).rect,
               m.type == tech::MosType::kPmos ? &pmosActives : &nmosActives);
  };
  placeMotif(kTail);
  placeMotif(kSink2);
  placeMotif(kDriver);
  placeChild(generateStack(t, pair), fp.leaves.at("PAIR").rect, &nmosActives);
  placeChild(generateStack(t, mirror), fp.leaves.at("MIRROR").rect, &pmosActives);
  placeChild(ccCell, fp.leaves.at("CC").rect, nullptr);
  placeChild(rzCell, fp.leaves.at("RZ").rect, nullptr);

  // Wells / selects per row (all PMOS here sit in a VDD well).
  geom::ShapeList wellShapes;
  {
    Rect pAll, nAll;
    bool haveP = false, haveN = false;
    for (const Rect& r : pmosActives) {
      pAll = haveP ? pAll.merged(r) : r;
      haveP = true;
    }
    for (const Rect& r : nmosActives) {
      nAll = haveN ? nAll.merged(r) : r;
      haveN = true;
    }
    if (haveP) {
      wellShapes.add(tech::Layer::kNWell, pAll.inflated(t.rules.nwellOverActive), "vdd");
      wellShapes.add(tech::Layer::kPPlus, pAll.inflated(t.rules.selectOverActive));
    }
    if (haveN) {
      wellShapes.add(tech::Layer::kNPlus, nAll.inflated(t.rules.selectOverActive));
    }
  }

  // Routing channels around the three rows.
  std::vector<Channel> channels;
  {
    auto band = [&](std::initializer_list<const char*> names) {
      Coord lo = std::numeric_limits<Coord>::max(), hi = std::numeric_limits<Coord>::min();
      for (const char* n : names) {
        const Rect& r = fp.leaves.at(n).rect;
        lo = std::min(lo, r.y0);
        hi = std::max(hi, r.y1);
      }
      return std::make_pair(lo, hi);
    };
    const auto bot = band({"MN5", "PAIR", "MN7"});
    const auto mid = band({"CC", "RZ"});
    const auto top = band({"MIRROR", "MP6"});
    const Coord inset = t.rules.metal1Spacing;
    const Coord margin = 16000;
    channels.push_back({bot.first - margin, bot.first - inset});
    channels.push_back({bot.second + inset, mid.first - inset});
    channels.push_back({mid.second + inset, top.first - inset});
    channels.push_back({top.second + inset, top.second + margin});
  }

  const std::vector<NetRequest> nets = {
      {"tail", design.tailCurrent}, {"d1", design.tailCurrent / 2},
      {"o1", design.tailCurrent / 2}, {"out", design.stage2Current},
      {"rzm", 0.0}, {"inp", 0.0}, {"inn", 0.0}, {"vbn", 0.0},
      {"vdd", design.supplyCurrent()}, {"gnd", design.supplyCurrent()},
  };
  result.routing = routeCell(t, assembly, nets, channels, generateGeometry);
  result.parasitics = buildReport(t, result.routing, wellShapes, {"vdd"});
  // The passives' substrate parasitics join the report.
  result.parasitics.nets["rzm"].routingCap += result.ccInfo.bottomParasitic;
  result.parasitics.nets["o1"].routingCap += result.rzInfo.parasiticCap / 2.0;
  result.parasitics.nets["rzm"].routingCap += result.rzInfo.parasiticCap / 2.0;

  if (generateGeometry) {
    assembly.shapes.merge(wellShapes, geom::Orient::kR0, 0, 0);
    assembly.shapes.merge(result.routing.wires, geom::Orient::kR0, 0, 0);
    result.cell = std::move(assembly);
    const Rect box = result.cell.bbox();
    result.width = box.width();
    result.height = box.height();
  }
  return result;
}

}  // namespace lo::layout
