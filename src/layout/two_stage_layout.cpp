#include "layout/two_stage_layout.hpp"

#include <algorithm>
#include <stdexcept>

#include "layout/mos_motif.hpp"
#include "tech/units.hpp"

namespace lo::layout {

namespace {

using circuit::TwoStageGroup;
using circuit::TwoStageOtaDesign;
using device::FoldPlan;
using device::FoldStyle;
using geom::Coord;
using geom::Rect;

std::vector<int> foldCandidates(const tech::Technology& t, double w, FoldStyle style,
                                int maxCandidates) {
  const double minW = nmToMeters(t.rules.activeMinWidth);
  std::vector<int> out;
  const int step = style == FoldStyle::kDrainInternal ? 2 : 1;
  for (int nf = step; static_cast<int>(out.size()) < maxCandidates; nf += step) {
    if (w / nf < minW) break;
    out.push_back(nf);
  }
  if (out.empty()) out.push_back(step);
  return out;
}

std::vector<ShapeOption> motifOptions(const tech::Technology& t, double w, double l,
                                      FoldStyle style, double current, int maxCandidates) {
  std::vector<ShapeOption> opts;
  for (int nf : foldCandidates(t, w, style, maxCandidates)) {
    const FoldPlan plan = device::planFoldsExact(t.rules, w, nf, style);
    const MosMotifInfo info = motifShape(t, plan, l, current);
    opts.push_back({info.width, info.height, nf});
  }
  return opts;
}

const PlacementConstraint& matchingOrThrow(const ConstraintSet& constraints,
                                           const std::string& group) {
  const PlacementConstraint* c = constraints.matchingFor(group);
  if (!c || c->items.size() != 2) {
    throw std::invalid_argument(
        "two-stage layout needs a two-device matching constraint for '" + group + "'");
  }
  return *c;
}

/// Stack realising the input-pair matching constraint: device names and
/// pattern come from the declaration, nets from the topology.
StackSpec pairSpec(const TwoStageOtaDesign& d, const TwoStageLayoutOptions& opt,
                   const PlacementConstraint& matching, int fingers) {
  StackSpec s;
  s.name = matching.group;
  s.type = tech::MosType::kNmos;
  s.unitWidth = d.inputPair.w / fingers;
  s.drawnL = d.inputPair.l;
  s.sourceNet = "tail";
  s.dummyGateNet = "gnd";
  s.devices = {{matching.items[0], fingers, "d1", "inn", d.tailCurrent / 2},
               {matching.items[1], fingers, "o1", "inp", d.tailCurrent / 2}};
  s.pattern = matching.kind == ConstraintKind::kCommonCentroid
                  ? StackPattern::kCommonCentroid
                  : StackPattern::kInterdigitated;
  s.dummiesPerSide = opt.dummiesPerSide;
  s.emitWellAndSelect = false;
  return s;
}

StackSpec mirrorSpec(const TwoStageOtaDesign& d, const TwoStageLayoutOptions& opt,
                     const PlacementConstraint& matching, int fingers) {
  StackSpec s;
  s.name = matching.group;
  s.type = tech::MosType::kPmos;
  s.unitWidth = d.mirror.w / fingers;
  s.drawnL = d.mirror.l;
  s.sourceNet = "vdd";
  s.dummyGateNet = "vdd";
  s.bulkNet = "vdd";
  s.devices = {{matching.items[0], fingers, "d1", "d1", d.tailCurrent / 2},
               {matching.items[1], fingers, "o1", "d1", d.tailCurrent / 2}};
  s.pattern = matching.kind == ConstraintKind::kCommonCentroid
                  ? StackPattern::kCommonCentroid
                  : StackPattern::kInterdigitated;
  s.dummiesPerSide = opt.dummiesPerSide;
  s.emitWellAndSelect = false;
  return s;
}

struct MotifLeaf {
  const char* name;
  TwoStageGroup group;
  tech::MosType type;
  const char *drain, *gate, *source, *bulk;
};

const MotifLeaf kTail{"MN5", TwoStageGroup::kTail, tech::MosType::kNmos,
                      "tail", "vbn", "gnd", "gnd"};
const MotifLeaf kSink2{"MN7", TwoStageGroup::kSink2, tech::MosType::kNmos,
                       "out", "vbn", "gnd", "gnd"};
const MotifLeaf kDriver{"MP6", TwoStageGroup::kDriver, tech::MosType::kPmos,
                        "out", "o1", "vdd", "vdd"};

}  // namespace

ConstraintSet twoStagePlacementConstraints() {
  ConstraintSet cs;
  cs.add(PlacementConstraint::commonCentroid("PAIR", {"MN1", "MN2"}));
  cs.add(PlacementConstraint::commonCentroid("MIRROR", {"MP3", "MP4"}));
  // Three rows, bottom to top: diffusion, passives, diffusion-in-well.
  cs.add(PlacementConstraint::sameRow({"MN5", "PAIR", "MN7"}));
  cs.add(PlacementConstraint::sameRow({"CC", "RZ"}));
  cs.add(PlacementConstraint::sameRow({"MIRROR", "MP6"}));
  // The Miller compensation network stays tightly coupled.
  cs.add(PlacementConstraint::proximity("CC", "RZ"));
  return cs;
}

TwoStageLayoutResult generateTwoStageLayout(const tech::Technology& t,
                                            const TwoStageOtaDesign& design,
                                            const TwoStageLayoutOptions& options,
                                            bool generateGeometry) {
  TwoStageLayoutResult result;

  // --- Pre-build the passives (single shape each). ---
  CapacitorSpec ccSpec;
  ccSpec.name = "CC";
  ccSpec.farads = design.cc;
  ccSpec.bottomNet = "rzm";  // Bottom plate on the Rz side: its substrate
  ccSpec.topNet = "out";     // parasitic loads the midpoint, not the output.
  ccSpec.aspect = 2.0;
  const Cell ccCell = generateCapacitor(t, ccSpec, &result.ccInfo);

  ResistorSpec rzSpec;
  rzSpec.name = "RZ";
  rzSpec.ohms = design.rz;
  rzSpec.netA = "o1";
  rzSpec.netB = "rzm";
  const Cell rzCell = generateResistor(t, rzSpec, &result.rzInfo);

  // --- Constraint-driven row placement. ---
  const ConstraintSet constraints = twoStagePlacementConstraints();
  const PlacementConstraint& pairMatch = matchingOrThrow(constraints, "PAIR");
  const PlacementConstraint& mirrorMatch = matchingOrThrow(constraints, "MIRROR");

  std::vector<RowItem> items;
  auto motifItem = [&](const MotifLeaf& m) {
    const device::MosGeometry& geo = design.geometry(m.group);
    RowItem it;
    it.name = m.name;
    it.kind = m.type == tech::MosType::kPmos ? RowKind::kPmos : RowKind::kNmos;
    if (m.type == tech::MosType::kPmos) it.wellNet = m.bulk;
    it.options = motifOptions(t, geo.w, geo.l, options.foldStyle,
                              twoStageGroupCurrent(design, m.group),
                              options.maxFoldCandidates);
    it.nets = {m.drain, m.gate, m.source};
    return it;
  };
  auto stackItem = [&](const PlacementConstraint& matching, bool isPair) {
    const double w = isPair ? design.inputPair.w : design.mirror.w;
    RowItem it;
    it.name = matching.group;
    it.kind = isPair ? RowKind::kNmos : RowKind::kPmos;
    if (!isPair) it.wellNet = "vdd";
    for (int nf :
         foldCandidates(t, w, FoldStyle::kDrainInternal, options.maxFoldCandidates)) {
      const StackSpec s = isPair ? pairSpec(design, options, matching, nf)
                                 : mirrorSpec(design, options, matching, nf);
      const StackExtents e = stackExtents(t, s);
      it.options.push_back({e.width, e.height, nf});
    }
    it.nets = isPair ? std::vector<std::string>{"d1", "inn", "o1", "inp", "tail"}
                     : std::vector<std::string>{"d1", "o1", "vdd"};
    return it;
  };
  auto passiveItem = [&](const char* name, const Cell& cell,
                         std::vector<std::string> nets) {
    const Rect box = cell.bbox();
    RowItem it;
    it.name = name;
    it.kind = RowKind::kPassive;
    it.options = {{box.width(), box.height(), 0}};
    it.nets = std::move(nets);
    return it;
  };
  items.push_back(motifItem(kTail));
  items.push_back(stackItem(pairMatch, true));
  items.push_back(motifItem(kSink2));
  items.push_back(passiveItem("CC", ccCell, {"rzm", "out"}));
  items.push_back(passiveItem("RZ", rzCell, {"o1", "rzm"}));
  items.push_back(stackItem(mirrorMatch, false));
  items.push_back(motifItem(kDriver));

  const RowPlacer placer(t, std::move(items), constraints);
  RowPlacerOptions placerOptions;
  placerOptions.shape = options.shape;
  placerOptions.search = options.placerSearch;
  placerOptions.seed = options.placerSeed;
  placerOptions.candidates = options.placerCandidates;
  placerOptions.threads = options.placerThreads;
  placerOptions.wireCostNm = options.wireCostNm;
  const RowPlacement placement = placer.place(placerOptions);
  const FloorplanResult& fp = placement.floorplan;
  const std::map<std::string, int>& tags = placement.tags;
  result.placement = placement;
  result.floorplan = fp;
  result.width = fp.width;
  result.height = fp.height;

  // --- Fold plans and junctions. ---
  auto motifPlan = [&](const MotifLeaf& m) {
    const device::MosGeometry& geo = design.geometry(m.group);
    const FoldPlan plan =
        device::planFoldsExact(t.rules, geo.w, tags.at(m.name), options.foldStyle);
    result.foldPlans[m.group] = plan;
    device::MosGeometry j = geo;
    device::applyDiffusionGeometry(t.rules, plan, j);
    result.junctions[m.group] = j;
  };
  motifPlan(kTail);
  motifPlan(kSink2);
  motifPlan(kDriver);

  const StackSpec pair = pairSpec(design, options, pairMatch, tags.at("PAIR"));
  const StackSpec mirror = mirrorSpec(design, options, mirrorMatch, tags.at("MIRROR"));
  result.pairPlan = planStack(pair);
  StackPlan mirrorPlan = planStack(mirror);
  fillStackJunctions(t.rules, pair, result.pairPlan);
  fillStackJunctions(t.rules, mirror, mirrorPlan);
  result.junctions[TwoStageGroup::kInputPair] = result.pairPlan.metrics[0].junctions;
  result.junctions[TwoStageGroup::kMirror] = mirrorPlan.metrics[0].junctions;
  {
    FoldPlan pp;
    pp.nf = tags.at("PAIR");
    pp.foldWidth = pair.unitWidth;
    pp.totalWidth = pp.foldWidth * pp.nf;
    pp.drainInternal = true;
    result.foldPlans[TwoStageGroup::kInputPair] = pp;
    FoldPlan mp = pp;
    mp.nf = tags.at("MIRROR");
    mp.foldWidth = mirror.unitWidth;
    mp.totalWidth = mp.foldWidth * mp.nf;
    result.foldPlans[TwoStageGroup::kMirror] = mp;
  }

  // --- Assemble. ---
  Cell assembly;
  assembly.name = "TWO_STAGE";
  std::vector<RowActive> actives;
  auto placeChild = [&](const Cell& child, const Rect& where, tech::MosType type,
                        const char* wellNet) {
    const Rect box = child.bbox();
    const Coord dx = where.x0 - box.x0, dy = where.y0 - box.y0;
    assembly.place(child, geom::Orient::kR0, dx, dy);
    if (wellNet) {
      const Rect act = child.shapes.bbox(tech::Layer::kActive).translated(dx, dy);
      if (!act.empty()) actives.push_back({type, wellNet, act});
    }
  };
  auto placeMotif = [&](const MotifLeaf& m) {
    MosMotifSpec spec;
    spec.name = m.name;
    spec.type = m.type;
    spec.plan = result.foldPlans[m.group];
    spec.drawnL = design.geometry(m.group).l;
    spec.terminalCurrent = twoStageGroupCurrent(design, m.group);
    spec.drainNet = m.drain;
    spec.gateNet = m.gate;
    spec.sourceNet = m.source;
    spec.bulkNet = m.bulk;
    spec.emitWellAndSelect = false;
    const Cell cell = generateMosMotif(t, spec);
    placeChild(cell, fp.leaves.at(m.name).rect, m.type,
               m.type == tech::MosType::kPmos ? m.bulk : "");
  };
  placeMotif(kTail);
  placeMotif(kSink2);
  placeMotif(kDriver);
  placeChild(generateStack(t, pair), fp.leaves.at("PAIR").rect, tech::MosType::kNmos, "");
  placeChild(generateStack(t, mirror), fp.leaves.at("MIRROR").rect, tech::MosType::kPmos,
             "vdd");
  placeChild(ccCell, fp.leaves.at("CC").rect, tech::MosType::kNmos, nullptr);
  placeChild(rzCell, fp.leaves.at("RZ").rect, tech::MosType::kNmos, nullptr);

  // Wells / selects per row (all PMOS here sit in a VDD well).
  const geom::ShapeList wellShapes = mergedRowWells(t, actives);

  // Routing channels around the three rows.
  const std::vector<Channel> channels = rowChannels(t, placement, 16000);

  const std::vector<NetRequest> nets = {
      {"tail", design.tailCurrent}, {"d1", design.tailCurrent / 2},
      {"o1", design.tailCurrent / 2}, {"out", design.stage2Current},
      {"rzm", 0.0}, {"inp", 0.0}, {"inn", 0.0}, {"vbn", 0.0},
      {"vdd", design.supplyCurrent()}, {"gnd", design.supplyCurrent()},
  };
  result.routing = routeCell(t, assembly, nets, channels, generateGeometry);
  result.parasitics = buildReport(t, result.routing, wellShapes, {"vdd"});
  // The passives' substrate parasitics join the report.
  result.parasitics.nets["rzm"].routingCap += result.ccInfo.bottomParasitic;
  result.parasitics.nets["o1"].routingCap += result.rzInfo.parasiticCap / 2.0;
  result.parasitics.nets["rzm"].routingCap += result.rzInfo.parasiticCap / 2.0;

  if (generateGeometry) {
    assembly.shapes.merge(wellShapes, geom::Orient::kR0, 0, 0);
    assembly.shapes.merge(result.routing.wires, geom::Orient::kR0, 0, 0);
    result.cell = std::move(assembly);
    const Rect box = result.cell.bbox();
    result.width = box.width();
    result.height = box.height();
  }
  return result;
}

}  // namespace lo::layout
