#include "layout/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tech/units.hpp"

namespace lo::layout {

namespace {

using geom::Coord;
using geom::Rect;
using tech::Layer;

/// One horizontal trunk: a net's wire within one routing channel.
struct Trunk {
  std::string net;
  std::size_t netIdx = 0;   ///< Index into the per-net result array.
  int channel = -1;         ///< Channel index; -1 = unconstrained.
  Coord y = 0;              ///< Centre line.
  tech::Nm width = 0;
  Coord x0 = 0, x1 = 0;     ///< Port span (extended later for risers/nudges).
  double current = 0.0;
  std::vector<geom::Point> taps;
};

bool xSpansOverlap(Coord a0, Coord a1, Coord b0, Coord b1) { return a0 <= b1 && b0 <= a1; }

}  // namespace

double RoutingResult::totalCapOn(const std::string& net) const {
  const RoutedNet* rn = find(net);
  double total = rn ? rn->capToGround : 0.0;
  for (const auto& [pair, cap] : coupling) {
    if (pair.first == net || pair.second == net) total += cap;
  }
  return total;
}

RoutingResult routeCell(const tech::Technology& t, const Cell& cell,
                        const std::vector<NetRequest>& nets,
                        const std::vector<Channel>& channels, bool emitGeometry) {
  const tech::DesignRules& r = t.rules;
  RoutingResult result;

  const tech::Nm viaLandM1 = r.via1Size + 2 * r.metal1OverVia1;
  const tech::Nm viaLandM2 = r.via1Size + 2 * r.metal2OverVia1;
  const tech::LayerElectrical& m1 = t.layer(Layer::kMetal1);
  const tech::LayerElectrical& m2 = t.layer(Layer::kMetal2);

  auto nearestChannel = [&](Coord y) -> int {
    int best = -1;
    Coord bestDist = std::numeric_limits<Coord>::max();
    for (std::size_t c = 0; c < channels.size(); ++c) {
      const Coord clamped = std::clamp(y, channels[c].y0, channels[c].y1);
      const Coord dist = std::abs(clamped - y);
      if (dist < bestDist) {
        bestDist = dist;
        best = static_cast<int>(c);
      }
    }
    return best;
  };

  // --- Build trunks: one per (net, nearest channel of its ports). ---
  std::vector<Trunk> trunks;
  struct NetRisers {
    std::vector<std::size_t> trunkIdx;  ///< Trunks of this net, if > 1 a riser joins them.
  };
  std::vector<NetRisers> perNet;

  for (const NetRequest& req : nets) {
    const std::vector<Port> ports = cell.portsOn(req.net);
    if (ports.size() < 2) continue;
    const std::size_t netIdx = result.nets.size();
    RoutedNet rn;
    rn.net = req.net;
    result.nets.push_back(rn);
    perNet.push_back({});

    // Cluster taps by nearest channel.
    std::map<int, std::vector<geom::Point>> clusters;
    for (const Port& p : ports) {
      const geom::Point c = p.rect.center();
      clusters[nearestChannel(c.y)].push_back(c);
    }
    for (auto& [ch, taps] : clusters) {
      Trunk tr;
      tr.net = req.net;
      tr.netIdx = netIdx;
      tr.channel = ch;
      tr.current = req.current;
      tr.width = std::max(t.wireWidthForCurrent(Layer::kMetal1, req.current), viaLandM1);
      Coord ySum = 0;
      tr.x0 = taps.front().x;
      tr.x1 = tr.x0;
      for (const geom::Point& p : taps) {
        tr.x0 = std::min(tr.x0, p.x);
        tr.x1 = std::max(tr.x1, p.x);
        ySum += p.y;
      }
      Coord y = r.snapNearest(ySum / static_cast<Coord>(taps.size()));
      if (ch >= 0) {
        y = std::clamp(y, channels[ch].y0 + tr.width / 2, channels[ch].y1 - tr.width / 2);
      }
      tr.y = y;
      tr.taps = std::move(taps);
      perNet[netIdx].trunkIdx.push_back(trunks.size());
      trunks.push_back(std::move(tr));
    }
  }

  // --- Risers: nets spanning several channels get a vertical metal2 wire in
  // a reserved corridor left of the core; every cluster trunk extends to it.
  const Coord coreLeft = cell.shapes.empty() ? 0 : cell.bbox().x0;
  Coord riserCursor = coreLeft - r.metal2Spacing;
  struct Riser {
    std::size_t netIdx = 0;
    Coord x = 0;
    tech::Nm width = 0;
    Coord y0 = 0, y1 = 0;
  };
  std::vector<Riser> risers;
  for (std::size_t n = 0; n < perNet.size(); ++n) {
    if (perNet[n].trunkIdx.size() < 2) continue;
    Riser ri;
    ri.netIdx = n;
    ri.width = std::max(
        t.wireWidthForCurrent(Layer::kMetal2, trunks[perNet[n].trunkIdx[0]].current),
        viaLandM2);
    riserCursor -= ri.width;  // Right edge at previous cursor; centre below.
    ri.x = riserCursor + ri.width / 2;
    riserCursor -= r.metal2Spacing;
    ri.y0 = std::numeric_limits<Coord>::max();
    ri.y1 = std::numeric_limits<Coord>::min();
    for (std::size_t ti : perNet[n].trunkIdx) {
      trunks[ti].x0 = std::min(trunks[ti].x0, ri.x);
      ri.y0 = std::min(ri.y0, trunks[ti].y);
      ri.y1 = std::max(ri.y1, trunks[ti].y);
    }
    risers.push_back(ri);
  }

  // Branch metal2 width per trunk, needed both for the track pitch (so
  // branches arriving from opposite sides clear each other vertically) and
  // for the branch emission below.
  std::vector<tech::Nm> trunkBranchWidth(trunks.size());
  for (std::size_t i = 0; i < trunks.size(); ++i) {
    const double branchCurrent =
        trunks[i].current / std::max<std::size_t>(1, trunks[i].taps.size());
    trunkBranchWidth[i] =
        std::max(t.wireWidthForCurrent(Layer::kMetal2, branchCurrent), viaLandM2);
  }

  // --- Track packing per channel (never overflow into a cell row). ---
  // Track order within a channel follows the side the net enters from:
  // bottom-entering nets take the lowest tracks, top-entering nets the
  // highest, mixed nets sit in between.  This keeps the vertical branches of
  // different nets from overlapping inside the channel (the classic
  // channel-routing side ordering), so nearby columns never clash.
  auto sideOf = [&](const Trunk& tr) {
    if (tr.channel < 0) return 1;
    bool below = false, above = false;
    for (const geom::Point& p : tr.taps) {
      (p.y < channels[tr.channel].y0 ? below : above) = true;
    }
    if (below && !above) return 0;
    if (above && !below) return 2;
    return 1;
  };
  std::vector<std::size_t> order(trunks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int sa = sideOf(trunks[a]), sb = sideOf(trunks[b]);
    if (trunks[a].channel != trunks[b].channel) return trunks[a].channel < trunks[b].channel;
    if (sa != sb) return sa < sb;
    return trunks[a].y < trunks[b].y;
  });
  // Conflict test: spans inflated by the branch clearance so that nearby
  // (but non-overlapping) spans still stack on distinct tracks.
  const Coord spanMargin = 3000;
  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    Trunk& tr = trunks[order[oi]];
    Coord yMin = tr.channel >= 0 ? channels[tr.channel].y0 + tr.width / 2
                                 : std::numeric_limits<Coord>::min() / 2;
    for (std::size_t oj = 0; oj < oi; ++oj) {
      const Trunk& prev = trunks[order[oj]];
      if (prev.channel != tr.channel ||
          !xSpansOverlap(tr.x0 - spanMargin, tr.x1 + spanMargin, prev.x0, prev.x1)) {
        continue;
      }
      const Coord trunkGap = (tr.width + prev.width) / 2 + r.metal1Spacing;
      // Branches ending on the two tracks approach each other end-on; keep
      // the metal2 spacing between their end caps as well.
      const Coord branchGap = (trunkBranchWidth[order[oi]] + trunkBranchWidth[order[oj]]) / 2 +
                              r.metal2Spacing;
      yMin = std::max(yMin, prev.y + std::max(trunkGap, branchGap));
    }
    // Compact from the channel bottom; unconstrained trunks float at their
    // desired height and only bump on conflicts.
    tr.y = r.snapUp(tr.channel >= 0 ? yMin : std::max(tr.y, yMin));
  }
  // Riser extents follow the final trunk heights.
  for (Riser& ri : risers) {
    ri.y0 = std::numeric_limits<Coord>::max();
    ri.y1 = std::numeric_limits<Coord>::min();
    for (std::size_t ti : perNet[ri.netIdx].trunkIdx) {
      ri.y0 = std::min(ri.y0, trunks[ti].y);
      ri.y1 = std::max(ri.y1, trunks[ti].y);
    }
  }

  // --- Branches: vertical metal2 from each tap to its cluster trunk. ---
  struct Branch {
    std::size_t trunkIdx = 0;
    Coord portX = 0, portY = 0;
    Coord x = 0;
    tech::Nm width = 0;
    Coord y0 = 0, y1 = 0;
    int viaCuts = 1;
  };
  std::vector<Branch> branches;
  for (std::size_t i = 0; i < trunks.size(); ++i) {
    const Trunk& tr = trunks[i];
    const double branchCurrent = tr.current / std::max<std::size_t>(1, tr.taps.size());
    const tech::Nm bw = trunkBranchWidth[i];
    const int cuts = std::max(
        1,
        static_cast<int>(std::ceil(std::abs(branchCurrent) / std::max(t.via1MaxAmp, 1e-12))));
    for (const geom::Point& tap : tr.taps) {
      Branch b;
      b.trunkIdx = i;
      b.portX = tap.x;
      b.portY = tap.y;
      b.x = tap.x;
      b.width = bw;
      b.y0 = std::min(tap.y, tr.y);
      b.y1 = std::max(tap.y, tr.y);
      b.viaCuts = cuts;
      branches.push_back(b);
    }
  }

  // Column separation: nudge branches right until all different-net metal2
  // columns keep spacing and every port-level metal1 footprint (via landing
  // + stub) clears other footprints and foreign cell metal1.
  auto portFootprint = [&](const Branch& b) {
    const Coord x0 = std::min(b.portX, b.x) - viaLandM1 / 2;
    const Coord x1 = b.x + viaLandM1 / 2;
    return Rect(x0, b.portY - viaLandM1 / 2, x1, b.portY + viaLandM1 / 2);
  };
  std::vector<const geom::Shape*> cellM1;
  for (const geom::Shape& s : cell.shapes.shapes()) {
    if (s.layer == Layer::kMetal1) cellM1.push_back(&s);
  }
  // Safety valve: a branch that has drifted this far from its port is stuck
  // (e.g. two foreign ports in one column); freeze it rather than walk the
  // stub across the whole die.  The DRC will flag the residual conflict.
  const Coord maxNudge = 20000;
  auto frozen = [&](const Branch& b) { return b.x - b.portX > maxNudge; };
  for (int pass = 0; pass < 40; ++pass) {
    bool moved = false;
    for (std::size_t i = 0; i < branches.size(); ++i) {
      for (std::size_t j = i + 1; j < branches.size(); ++j) {
        Branch& a = branches[i];
        Branch& b = branches[j];
        if (trunks[a.trunkIdx].net == trunks[b.trunkIdx].net) continue;
        Branch& mover = (a.y1 - a.y0) <= (b.y1 - b.y0) ? a : b;
        const Branch& still = (&mover == &a) ? b : a;
        if (frozen(mover)) continue;
        // Vertical ranges padded by the end-cap extension (width/2 each)
        // plus the spacing rule: segments that merely come close vertically
        // still need the horizontal clearance.
        const Coord pad = (a.width + b.width) / 2 + r.metal2Spacing;
        if (a.y0 < b.y1 + pad && b.y0 < a.y1 + pad) {
          const Coord need = (a.width + b.width) / 2 + r.metal2Spacing;
          if (std::abs(a.x - b.x) < need) {
            mover.x = r.snapUp(still.x + need);
            moved = true;
            continue;
          }
        }
        const Rect fa = portFootprint(a);
        const Rect fb = portFootprint(b);
        if (fa.overlaps(fb) || fa.distanceTo(fb) < r.metal1Spacing) {
          mover.x = r.snapUp(mover.x + r.metal1Spacing + viaLandM1);
          moved = true;
        }
      }
      Branch& b = branches[i];
      const std::string& net = trunks[b.trunkIdx].net;
      for (const geom::Shape* s : cellM1) {
        if (s->net == net) continue;
        if (frozen(b)) break;
        const Rect f = portFootprint(b);
        if (f.overlaps(s->rect) || f.distanceTo(s->rect) < r.metal1Spacing) {
          b.x = r.snapUp(std::max(b.x, s->rect.x1 + r.metal1Spacing + viaLandM1 / 2));
          moved = true;
        }
      }
    }
    if (!moved) break;
  }

  // --- Emit trunks. ---
  for (std::size_t i = 0; i < trunks.size(); ++i) {
    const Trunk& tr = trunks[i];
    RoutedNet& rn = result.nets[tr.netIdx];
    Coord bx0 = tr.x0, bx1 = tr.x1;
    for (const Branch& b : branches) {
      if (b.trunkIdx != i) continue;
      bx0 = std::min(bx0, b.x);
      bx1 = std::max(bx1, b.x);
    }
    const Coord tx0 = bx0 - viaLandM1 / 2;
    const Coord tx1 = std::max(bx1 + viaLandM1 / 2, tx0 + viaLandM1);
    rn.trunkWidth = std::max(rn.trunkWidth, tr.width);
    rn.trunkLength += nmToMeters(tx1 - tx0);
    rn.capToGround +=
        nmToMeters(tx1 - tx0) * (nmToMeters(tr.width) * m1.capAreaPerM2 + 2.0 * m1.capFringePerM);
    // Sheet resistance of the trunk run (squares = length / width).
    rn.resistanceOhm +=
        static_cast<double>(tx1 - tx0) / tr.width * m1.sheetResOhmSq;
    if (emitGeometry) {
      result.wires.add(Layer::kMetal1,
                       Rect(tx0, tr.y - tr.width / 2, tx1, tr.y + tr.width / 2), tr.net);
    }
  }

  // --- Emit risers with via stacks at each trunk crossing. ---
  auto emitViaStack = [&](const std::string& net, int viaCuts, Coord cx, Coord cy) {
    const Coord vs = r.via1Size;
    const Coord rowW = viaCuts * vs + (viaCuts - 1) * r.via1Spacing;
    for (int k = 0; k < viaCuts; ++k) {
      const Coord vx = cx - rowW / 2 + k * (vs + r.via1Spacing);
      result.wires.add(Layer::kVia1, Rect(vx, cy - vs / 2, vx + vs, cy + vs / 2));
    }
    result.wires.add(Layer::kMetal1,
                     Rect(cx - rowW / 2 - r.metal1OverVia1, cy - vs / 2 - r.metal1OverVia1,
                          cx + rowW / 2 + r.metal1OverVia1, cy + vs / 2 + r.metal1OverVia1),
                     net);
    result.wires.add(Layer::kMetal2,
                     Rect(cx - rowW / 2 - r.metal2OverVia1, cy - vs / 2 - r.metal2OverVia1,
                          cx + rowW / 2 + r.metal2OverVia1, cy + vs / 2 + r.metal2OverVia1),
                     net);
  };
  for (const Riser& ri : risers) {
    RoutedNet& rn = result.nets[ri.netIdx];
    const std::string& net = rn.net;
    const double len = nmToMeters(ri.y1 - ri.y0);
    rn.branchLength += len;
    rn.capToGround +=
        len * (nmToMeters(ri.width) * m2.capAreaPerM2 + 2.0 * m2.capFringePerM);
    if (emitGeometry && ri.y1 > ri.y0) {
      const Coord half = ri.width / 2;
      result.wires.add(Layer::kMetal2,
                       Rect(ri.x - half, ri.y0 - half, ri.x + half, ri.y1 + half), net);
      for (std::size_t ti : perNet[ri.netIdx].trunkIdx) {
        emitViaStack(net, 1, ri.x, trunks[ti].y);
        rn.viaCount += 1;
      }
    }
  }

  // --- Emit branches with via stacks at both ends. ---
  for (const Branch& b : branches) {
    const Trunk& tr = trunks[b.trunkIdx];
    RoutedNet& rn = result.nets[tr.netIdx];
    const double len = nmToMeters(b.y1 - b.y0);
    rn.branchLength += len;
    rn.capToGround += len * (nmToMeters(b.width) * m2.capAreaPerM2 + 2.0 * m2.capFringePerM);
    rn.viaCount += 2 * b.viaCuts;
    // Worst-case series path: keep the most resistive branch (sheet run
    // plus its two via stacks in parallel cuts).
    const double branchRes = static_cast<double>(b.y1 - b.y0) / b.width * m2.sheetResOhmSq +
                             2.0 * t.contactResOhm / b.viaCuts;
    rn.resistanceOhm = std::max(rn.resistanceOhm, branchRes);
    const Coord stub = b.x - b.portX;
    if (stub > 0) {
      rn.capToGround += nmToMeters(stub) *
                        (nmToMeters(viaLandM1) * m1.capAreaPerM2 + 2.0 * m1.capFringePerM);
    }
    if (emitGeometry) {
      const Coord half = b.width / 2;
      if (b.y1 > b.y0) {
        result.wires.add(Layer::kMetal2,
                         Rect(b.x - half, b.y0 - half, b.x + half, b.y1 + half), tr.net);
      }
      if (stub > 0) {
        result.wires.add(Layer::kMetal1,
                         Rect(b.portX, b.portY - viaLandM1 / 2, b.x + viaLandM1 / 2,
                              b.portY + viaLandM1 / 2),
                         tr.net);
      }
      emitViaStack(tr.net, b.viaCuts, b.x, b.portY);
      emitViaStack(tr.net, b.viaCuts, b.x, tr.y);
    }
  }

  // --- Coupling: parallel trunks within a channel, and adjacent risers. ---
  for (std::size_t i = 0; i < trunks.size(); ++i) {
    for (std::size_t j = i + 1; j < trunks.size(); ++j) {
      const Trunk& a = trunks[i];
      const Trunk& b = trunks[j];
      if (a.net == b.net || !xSpansOverlap(a.x0, a.x1, b.x0, b.x1)) continue;
      const Coord edgeGap = std::abs(a.y - b.y) - (a.width + b.width) / 2;
      if (edgeGap <= 0 || edgeGap > 4 * r.metal1Spacing) continue;
      const Coord overlap = std::min(a.x1, b.x1) - std::max(a.x0, b.x0);
      if (overlap <= 0) continue;
      const double scale = static_cast<double>(r.metal1Spacing) / edgeGap;
      const double cap = nmToMeters(overlap) * m1.capCouplePerM * std::min(scale, 1.0);
      auto key = a.net < b.net ? std::make_pair(a.net, b.net) : std::make_pair(b.net, a.net);
      result.coupling[key] += cap;
    }
  }
  for (std::size_t i = 0; i < risers.size(); ++i) {
    for (std::size_t j = i + 1; j < risers.size(); ++j) {
      const Riser& a = risers[i];
      const Riser& b = risers[j];
      const std::string& na = result.nets[a.netIdx].net;
      const std::string& nb = result.nets[b.netIdx].net;
      if (na == nb) continue;
      const Coord edgeGap = std::abs(a.x - b.x) - (a.width + b.width) / 2;
      if (edgeGap <= 0 || edgeGap > 4 * r.metal2Spacing) continue;
      const Coord overlap = std::min(a.y1, b.y1) - std::max(a.y0, b.y0);
      if (overlap <= 0) continue;
      const double scale = static_cast<double>(r.metal2Spacing) / edgeGap;
      const double cap = nmToMeters(overlap) * m2.capCouplePerM * std::min(scale, 1.0);
      auto key = na < nb ? std::make_pair(na, nb) : std::make_pair(nb, na);
      result.coupling[key] += cap;
    }
  }
  return result;
}

}  // namespace lo::layout
