#include "layout/row.hpp"

#include <algorithm>
#include <limits>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "layout/drc.hpp"

namespace lo::layout {

namespace {

using geom::Coord;
using geom::Rect;

/// Vertical room reserved for routing-channel trunks between rows.
constexpr Coord kRoutingAllowance = 16000;

/// Column order, bottom to top: NMOS rows (substrate), then passives,
/// then PMOS rows (wells) -- the diffusion-row discipline both legacy
/// generators followed.
int kindRank(RowKind kind) {
  switch (kind) {
    case RowKind::kNmos: return 0;
    case RowKind::kPassive: return 1;
    case RowKind::kPmos: return 2;
  }
  return 3;
}

/// One derived row: a SameRow constraint's members split into core and
/// annex, or a singleton for an item no constraint pins (`pinned` false --
/// the seeded search may hop it into a compatible declared row).
struct RowSpec {
  RowKind kind = RowKind::kNmos;
  std::string wellNet;
  Coord spacing = 0;
  bool pinned = true;
  std::vector<std::string> core;   ///< Declared left-to-right order.
  std::vector<std::string> annex;  ///< Pinned at the right end.
};

using ItemIndex = std::map<std::string, const RowItem*>;

ItemIndex indexItems(const std::vector<RowItem>& items) {
  ItemIndex byName;
  for (const RowItem& item : items) {
    if (!byName.emplace(item.name, &item).second) {
      throw std::invalid_argument("duplicate row item '" + item.name + "'");
    }
  }
  return byName;
}

std::vector<RowSpec> deriveRows(const tech::Technology& t, const std::vector<RowItem>& items,
                                const ConstraintSet& constraints) {
  const ItemIndex byName = indexItems(items);
  std::vector<RowSpec> rows;
  std::set<std::string> rowed;
  for (const PlacementConstraint* c : constraints.ofKind(ConstraintKind::kSameRow)) {
    RowSpec row;
    bool first = true;
    for (const std::string& name : c->items) {
      const auto it = byName.find(name);
      if (it == byName.end()) {
        throw std::invalid_argument(c->describe() + ": unknown item '" + name + "'");
      }
      const RowItem& item = *it->second;
      if (first) {
        row.kind = item.kind;
        first = false;
      } else if (item.kind != row.kind) {
        throw std::invalid_argument(c->describe() + ": item '" + name + "' is " +
                                    rowKindName(item.kind) + " in a " + rowKindName(row.kind) +
                                    " row");
      }
      if (item.kind == RowKind::kPmos) {
        if (row.wellNet.empty()) {
          row.wellNet = item.wellNet;
        } else if (!item.wellNet.empty() && item.wellNet != row.wellNet) {
          throw std::invalid_argument(c->describe() + ": item '" + name +
                                      "' ties its well to '" + item.wellNet +
                                      "' but the row's well is '" + row.wellNet + "'");
        }
      }
      (item.annex ? row.annex : row.core).push_back(name);
      rowed.insert(name);
    }
    rows.push_back(std::move(row));
  }
  // Items no constraint places get singleton rows after the declared ones.
  for (const RowItem& item : items) {
    if (rowed.count(item.name)) continue;
    RowSpec row;
    row.kind = item.kind;
    row.wellNet = item.wellNet;
    row.pinned = false;
    (item.annex ? row.annex : row.core).push_back(item.name);
    rows.push_back(std::move(row));
  }
  for (RowSpec& row : rows) {
    // Passive rows keep double clearance: poly serpentines and plate caps
    // have no shared diffusion to abut.
    row.spacing = t.rules.activeSpacing * (row.kind == RowKind::kPassive ? 2 : 1);
  }
  std::stable_sort(rows.begin(), rows.end(), [](const RowSpec& a, const RowSpec& b) {
    return kindRank(a.kind) < kindRank(b.kind);
  });
  return rows;
}

/// In-row core orders, parallel to the derived row list.
struct Candidate {
  std::vector<std::vector<std::string>> cores;
};

std::string candidateKey(const Candidate& cand) {
  std::ostringstream out;
  for (const std::vector<std::string>& core : cand.cores) {
    for (const std::string& name : core) out << name << ',';
    out << '|';
  }
  return out.str();
}

/// Compile the candidate's rows into a slicing tree.  Runs of adjacent
/// PMOS rows share a sub-column separated by well-spacing gaps; every
/// other adjacency is a well-clearance (mix) gap.  Single-member rows
/// stay bare leaves -- row nodes with one child are shape-function
/// no-ops, so either form packs identically.
SlicingTree buildRowTree(const tech::Technology& t, const std::vector<RowSpec>& rows,
                         const Candidate& cand, const ItemIndex& byName,
                         const std::map<std::string, int>* fixedTags) {
  auto leafFor = [&](const std::string& name) {
    std::vector<ShapeOption> opts = byName.at(name)->options;
    if (fixedTags) {
      const int tag = fixedTags->at(name);
      opts.erase(std::remove_if(opts.begin(), opts.end(),
                                [&](const ShapeOption& o) { return o.tag != tag; }),
                 opts.end());
      if (opts.empty()) {
        throw std::invalid_argument("item '" + name + "' has no shape alternative with tag " +
                                    std::to_string(tag) +
                                    " (mirror lock unsatisfiable; matched items must share "
                                    "their fold menu)");
      }
    }
    return SlicingNode::leaf(name, std::move(opts));
  };

  const Coord rowGap = t.rules.activeSpacing;
  const Coord wellGap =
      t.rules.nwellSpacing + 2 * t.rules.nwellOverActive + kRoutingAllowance;
  const Coord mixGap =
      t.rules.activeToWell + t.rules.nwellOverActive + rowGap + kRoutingAllowance;

  std::vector<std::unique_ptr<SlicingNode>> rowNodes;
  std::vector<RowKind> rowKinds;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::string> members = cand.cores[i];
    members.insert(members.end(), rows[i].annex.begin(), rows[i].annex.end());
    if (members.empty()) continue;  // Emptied by a hop; drop the row.
    if (members.size() == 1) {
      rowNodes.push_back(leafFor(members[0]));
    } else {
      std::vector<std::unique_ptr<SlicingNode>> children;
      children.reserve(members.size());
      for (const std::string& name : members) children.push_back(leafFor(name));
      rowNodes.push_back(SlicingNode::row(std::move(children), rows[i].spacing));
    }
    rowKinds.push_back(rows[i].kind);
  }
  if (rowNodes.empty()) throw std::invalid_argument("row placement has no items");

  std::vector<std::unique_ptr<SlicingNode>> groups;
  for (std::size_t i = 0; i < rowNodes.size();) {
    if (rowKinds[i] != RowKind::kPmos) {
      groups.push_back(std::move(rowNodes[i]));
      ++i;
      continue;
    }
    std::vector<std::unique_ptr<SlicingNode>> run;
    while (i < rowNodes.size() && rowKinds[i] == RowKind::kPmos) {
      run.push_back(std::move(rowNodes[i++]));
    }
    groups.push_back(run.size() == 1 ? std::move(run[0])
                                     : SlicingNode::column(std::move(run), wellGap));
  }
  if (groups.size() == 1) return SlicingTree(std::move(groups[0]));
  return SlicingTree(SlicingNode::column(std::move(groups), mixGap));
}

/// HPWL over item centres per net (nets touching at least two items),
/// plus the Proximity constraints' weighted manhattan penalties.
double estimateWirelength(const std::vector<RowItem>& items, const ConstraintSet& constraints,
                          const FloorplanResult& fp) {
  struct Pt {
    double x = 0.0, y = 0.0;
  };
  std::map<std::string, Pt> centers;
  for (const RowItem& item : items) {
    const auto it = fp.leaves.find(item.name);
    if (it == fp.leaves.end()) continue;
    const Rect& r = it->second.rect;
    centers[item.name] = {(static_cast<double>(r.x0) + static_cast<double>(r.x1)) / 2.0,
                          (static_cast<double>(r.y0) + static_cast<double>(r.y1)) / 2.0};
  }

  std::map<std::string, std::vector<Pt>> netPoints;
  for (const RowItem& item : items) {
    const auto c = centers.find(item.name);
    if (c == centers.end()) continue;
    const std::set<std::string> nets(item.nets.begin(), item.nets.end());
    for (const std::string& net : nets) netPoints[net].push_back(c->second);
  }

  double total = 0.0;
  for (const auto& [net, pts] : netPoints) {
    if (pts.size() < 2) continue;
    double x0 = pts[0].x, x1 = pts[0].x, y0 = pts[0].y, y1 = pts[0].y;
    for (const Pt& p : pts) {
      x0 = std::min(x0, p.x);
      x1 = std::max(x1, p.x);
      y0 = std::min(y0, p.y);
      y1 = std::max(y1, p.y);
    }
    total += (x1 - x0) + (y1 - y0);
  }
  for (const PlacementConstraint* c : constraints.ofKind(ConstraintKind::kProximity)) {
    if (c->items.size() != 2) continue;
    const auto a = centers.find(c->items[0]);
    const auto b = centers.find(c->items[1]);
    if (a == centers.end() || b == centers.end()) continue;
    total += c->weight *
             (std::abs(a->second.x - b->second.x) + std::abs(a->second.y - b->second.y));
  }
  return total;
}

struct Eval {
  FloorplanResult fp;
  std::map<std::string, int> tags;
  double wire = 0.0;
  double score = 0.0;
  std::string key;
  bool valid = false;
};

/// Two-pass optimise: free packing picks every fold, the mirror locks
/// copy each locked member's fold from its partner, and the second pass
/// re-packs with every leaf pinned -- the generalisation of the legacy
/// generators' hand-written symmetrize() tables.  With `audit` set the
/// result must also clear the DRC symmetry audit (the seeded search's
/// feasibility filter).
Eval evaluateCandidate(const tech::Technology& t, const std::vector<RowSpec>& rows,
                       const Candidate& cand, const ItemIndex& byName,
                       const std::vector<RowItem>& items, const ConstraintSet& constraints,
                       const RowPlacerOptions& options, bool audit) {
  Eval e;
  const FloorplanResult fp1 =
      buildRowTree(t, rows, cand, byName, nullptr).optimize(options.shape);
  for (const auto& [name, leaf] : fp1.leaves) e.tags[name] = leaf.tag;
  for (const auto& [locked, source] : constraints.mirrorLocks()) {
    const auto src = e.tags.find(source);
    const auto dst = e.tags.find(locked);
    if (src != e.tags.end() && dst != e.tags.end()) dst->second = src->second;
  }
  e.fp = buildRowTree(t, rows, cand, byName, &e.tags).optimize(options.shape);
  if (audit && !auditSymmetry(constraints, e.fp.leaves, t.rules.grid).empty()) return e;
  e.wire = estimateWirelength(items, constraints, e.fp);
  e.score = e.fp.areaNm2() + options.wireCostNm * e.wire;
  e.key = candidateKey(cand);
  e.valid = true;
  return e;
}

/// Explicit Fisher-Yates so candidate streams do not depend on the
/// standard library's std::shuffle implementation.
template <typename T>
void shuffleInPlace(std::vector<T>& v, std::mt19937_64& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng() % i]);
  }
}

/// One random candidate: unpinned singletons may hop into a compatible
/// declared row, then every row's core is re-ordered under the symmetric
/// template -- mirror pairs permute as units (first members left, second
/// members mirrored right), SymmetryAxis items hold the centre, free
/// items redistribute around them.
Candidate genCandidate(std::mt19937_64& rng, const std::vector<RowSpec>& rows,
                       const ConstraintSet& constraints) {
  Candidate cand;
  cand.cores.reserve(rows.size());
  for (const RowSpec& row : rows) cand.cores.push_back(row.core);

  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].pinned || cand.cores[i].empty()) continue;
    std::vector<std::size_t> compat;
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (!rows[j].pinned || rows[j].kind != rows[i].kind) continue;
      if (rows[i].kind == RowKind::kPmos && rows[j].wellNet != rows[i].wellNet) continue;
      compat.push_back(j);
    }
    if (compat.empty()) continue;
    const std::size_t pick = rng() % (compat.size() + 1);
    if (pick < compat.size()) {
      cand.cores[compat[pick]].push_back(cand.cores[i][0]);
      cand.cores[i].clear();
    }
  }

  const std::vector<std::string> axisNames = constraints.axisItems();
  for (std::vector<std::string>& core : cand.cores) {
    if (core.size() < 2) continue;
    auto inCore = [&](const std::string& n) {
      return std::find(core.begin(), core.end(), n) != core.end();
    };
    std::vector<std::pair<std::string, std::string>> pairs;
    std::set<std::string> paired;
    for (const PlacementConstraint* c : constraints.ofKind(ConstraintKind::kMirrorPair)) {
      if (c->items.size() == 2 && inCore(c->items[0]) && inCore(c->items[1])) {
        pairs.emplace_back(c->items[0], c->items[1]);
        paired.insert(c->items[0]);
        paired.insert(c->items[1]);
      }
    }
    std::vector<std::string> axis, loose;
    for (const std::string& n : core) {
      if (paired.count(n)) continue;
      if (std::find(axisNames.begin(), axisNames.end(), n) != axisNames.end()) {
        axis.push_back(n);
      } else {
        loose.push_back(n);
      }
    }
    if (pairs.empty() && axis.empty()) {
      shuffleInPlace(core, rng);
      continue;
    }
    shuffleInPlace(pairs, rng);
    shuffleInPlace(loose, rng);
    std::vector<std::string> left, right;
    for (std::string& n : loose) ((rng() & 1) ? left : right).push_back(std::move(n));
    std::vector<std::string> order;
    order.reserve(core.size());
    for (const auto& p : pairs) order.push_back(p.first);
    order.insert(order.end(), left.begin(), left.end());
    order.insert(order.end(), axis.begin(), axis.end());
    order.insert(order.end(), right.begin(), right.end());
    for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) order.push_back(it->second);
    core = std::move(order);
  }
  return cand;
}

}  // namespace

const char* rowKindName(RowKind kind) {
  switch (kind) {
    case RowKind::kNmos: return "nmos";
    case RowKind::kPmos: return "pmos";
    case RowKind::kPassive: return "passive";
  }
  return "?";
}

RowPlacer::RowPlacer(const tech::Technology& t, std::vector<RowItem> items,
                     ConstraintSet constraints)
    : tech_(t), items_(std::move(items)), constraints_(std::move(constraints)) {
  std::vector<std::string> names;
  names.reserve(items_.size());
  for (const RowItem& item : items_) {
    if (item.options.empty()) {
      throw std::invalid_argument("row item '" + item.name + "' offers no shape options");
    }
    names.push_back(item.name);
  }
  requireValidConstraints(constraints_, &names);
  (void)deriveRows(tech_, items_, constraints_);  // Throws on malformed rows.
}

RowPlacement RowPlacer::place(const RowPlacerOptions& options) const {
  const std::vector<RowSpec> rows = deriveRows(tech_, items_, constraints_);
  const ItemIndex byName = indexItems(items_);

  Candidate declared;
  declared.cores.reserve(rows.size());
  for (const RowSpec& row : rows) declared.cores.push_back(row.core);
  Eval best = evaluateCandidate(tech_, rows, declared, byName, items_, constraints_, options,
                                /*audit=*/false);
  Candidate bestCand = declared;
  int evaluated = 1;

  if (options.search == RowSearch::kSeeded && options.candidates > 0) {
    // Candidates are drawn sequentially from the seed, then evaluated in
    // parallel; the winner is the (score, key) minimum, so the result is
    // independent of the thread count and the evaluation order.
    std::mt19937_64 rng(options.seed);
    std::vector<Candidate> cands;
    std::set<std::string> seen{candidateKey(declared)};
    for (int i = 0; i < options.candidates; ++i) {
      Candidate c = genCandidate(rng, rows, constraints_);
      if (seen.insert(candidateKey(c)).second) cands.push_back(std::move(c));
    }

    std::vector<Eval> evals(cands.size());
    auto evalStrided = [&](std::size_t first, std::size_t stride) {
      for (std::size_t i = first; i < cands.size(); i += stride) {
        try {
          evals[i] = evaluateCandidate(tech_, rows, cands[i], byName, items_, constraints_,
                                       options, /*audit=*/true);
        } catch (const std::exception&) {
          evals[i].valid = false;  // Infeasible arrangement.
        }
      }
    };
    const std::size_t threads =
        std::min<std::size_t>(std::max(1, options.threads), std::max<std::size_t>(cands.size(), 1));
    if (threads <= 1) {
      evalStrided(0, 1);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t k = 0; k < threads; ++k) pool.emplace_back(evalStrided, k, threads);
      for (std::thread& th : pool) th.join();
    }
    evaluated += static_cast<int>(cands.size());

    for (std::size_t i = 0; i < cands.size(); ++i) {
      const Eval& e = evals[i];
      if (!e.valid) continue;
      if (e.score < best.score || (e.score == best.score && e.key < best.key)) {
        best = e;
        bestCand = cands[i];
      }
    }
  }

  RowPlacement placement;
  placement.floorplan = std::move(best.fp);
  placement.tags = std::move(best.tags);
  placement.estimatedWirelengthNm = best.wire;
  placement.scoreNm2 = best.score;
  placement.candidatesEvaluated = evaluated;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    RowAssignment a;
    a.kind = rows[i].kind;
    a.wellNet = rows[i].wellNet;
    a.spacing = rows[i].spacing;
    a.items = bestCand.cores[i];
    a.items.insert(a.items.end(), rows[i].annex.begin(), rows[i].annex.end());
    if (a.items.empty()) continue;
    auto band = [&](bool coreOnly) {
      RowBand b{std::numeric_limits<Coord>::max(), std::numeric_limits<Coord>::min()};
      for (const std::string& name : a.items) {
        if (coreOnly && byName.at(name)->annex) continue;
        const Rect& r = placement.floorplan.leaves.at(name).rect;
        b.lo = std::min(b.lo, r.y0);
        b.hi = std::max(b.hi, r.y1);
      }
      return b;
    };
    a.band = band(/*coreOnly=*/true);
    if (a.band.lo > a.band.hi) a.band = band(/*coreOnly=*/false);  // Annex-only row.
    placement.rows.push_back(std::move(a));
  }
  return placement;
}

std::vector<Channel> rowChannels(const tech::Technology& t, const RowPlacement& placement,
                                 geom::Coord margin) {
  std::vector<Channel> channels;
  if (placement.rows.empty()) return channels;
  const Coord inset = t.rules.metal1Spacing;
  const RowBand& bottom = placement.rows.front().band;
  channels.push_back({bottom.lo - margin, bottom.lo - inset});
  for (std::size_t i = 0; i + 1 < placement.rows.size(); ++i) {
    channels.push_back(
        {placement.rows[i].band.hi + inset, placement.rows[i + 1].band.lo - inset});
  }
  const RowBand& top = placement.rows.back().band;
  channels.push_back({top.hi + inset, top.hi + margin});
  return channels;
}

geom::ShapeList mergedRowWells(const tech::Technology& t,
                               const std::vector<RowActive>& actives) {
  geom::ShapeList out;
  std::vector<std::pair<std::string, Rect>> pmosGroups;  // First-appearance order.
  Rect nmosAll;
  bool haveNmos = false;
  for (const RowActive& a : actives) {
    if (a.active.empty()) continue;
    if (a.type == tech::MosType::kPmos) {
      auto it = std::find_if(pmosGroups.begin(), pmosGroups.end(),
                             [&](const auto& g) { return g.first == a.wellNet; });
      if (it == pmosGroups.end()) {
        pmosGroups.emplace_back(a.wellNet, a.active);
      } else {
        it->second = it->second.merged(a.active);
      }
    } else {
      nmosAll = haveNmos ? nmosAll.merged(a.active) : a.active;
      haveNmos = true;
    }
  }
  for (const auto& [net, rect] : pmosGroups) {
    out.add(tech::Layer::kNWell, rect.inflated(t.rules.nwellOverActive), net);
    out.add(tech::Layer::kPPlus, rect.inflated(t.rules.selectOverActive));
  }
  if (haveNmos) {
    out.add(tech::Layer::kNPlus, nmosAll.inflated(t.rules.selectOverActive));
  }
  return out;
}

}  // namespace lo::layout
