#include "layout/constraints.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace lo::layout {

const char* constraintKindName(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kMirrorPair: return "mirror_pair";
    case ConstraintKind::kCommonCentroid: return "common_centroid";
    case ConstraintKind::kInterdigitate: return "interdigitate";
    case ConstraintKind::kSameRow: return "same_row";
    case ConstraintKind::kSymmetryAxis: return "symmetry_axis";
    case ConstraintKind::kProximity: return "proximity";
  }
  return "?";
}

PlacementConstraint PlacementConstraint::mirrorPair(std::string a, std::string b) {
  PlacementConstraint c;
  c.kind = ConstraintKind::kMirrorPair;
  c.items = {std::move(a), std::move(b)};
  return c;
}

PlacementConstraint PlacementConstraint::commonCentroid(std::string group,
                                                        std::vector<std::string> devices) {
  PlacementConstraint c;
  c.kind = ConstraintKind::kCommonCentroid;
  c.group = std::move(group);
  c.items = std::move(devices);
  return c;
}

PlacementConstraint PlacementConstraint::interdigitate(std::string group,
                                                       std::vector<std::string> devices) {
  PlacementConstraint c;
  c.kind = ConstraintKind::kInterdigitate;
  c.group = std::move(group);
  c.items = std::move(devices);
  return c;
}

PlacementConstraint PlacementConstraint::sameRow(std::vector<std::string> items) {
  PlacementConstraint c;
  c.kind = ConstraintKind::kSameRow;
  c.items = std::move(items);
  return c;
}

PlacementConstraint PlacementConstraint::symmetryAxis(std::vector<std::string> items) {
  PlacementConstraint c;
  c.kind = ConstraintKind::kSymmetryAxis;
  c.items = std::move(items);
  return c;
}

PlacementConstraint PlacementConstraint::proximity(std::string a, std::string b,
                                                   double weight) {
  PlacementConstraint c;
  c.kind = ConstraintKind::kProximity;
  c.items = {std::move(a), std::move(b)};
  c.weight = weight;
  return c;
}

std::string PlacementConstraint::describe() const {
  std::ostringstream out;
  out << constraintKindName(kind) << '(';
  if (!group.empty()) out << group << ": ";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out << ", ";
    out << items[i];
  }
  out << ')';
  return out.str();
}

std::vector<const PlacementConstraint*> ConstraintSet::ofKind(ConstraintKind kind) const {
  std::vector<const PlacementConstraint*> out;
  for (const PlacementConstraint& c : constraints_) {
    if (c.kind == kind) out.push_back(&c);
  }
  return out;
}

const PlacementConstraint* ConstraintSet::matchingFor(const std::string& group) const {
  for (const PlacementConstraint& c : constraints_) {
    if ((c.kind == ConstraintKind::kCommonCentroid ||
         c.kind == ConstraintKind::kInterdigitate) &&
        c.group == group) {
      return &c;
    }
  }
  return nullptr;
}

std::map<std::string, std::string> ConstraintSet::mirrorLocks() const {
  std::map<std::string, std::string> locks;
  for (const PlacementConstraint& c : constraints_) {
    if (c.kind == ConstraintKind::kMirrorPair && c.items.size() == 2) {
      locks[c.items[1]] = c.items[0];
    }
  }
  return locks;
}

std::vector<std::string> ConstraintSet::axisItems() const {
  std::vector<std::string> out;
  for (const PlacementConstraint& c : constraints_) {
    if (c.kind != ConstraintKind::kSymmetryAxis) continue;
    for (const std::string& item : c.items) {
      if (std::find(out.begin(), out.end(), item) == out.end()) out.push_back(item);
    }
  }
  return out;
}

std::vector<ConstraintViolation> validateConstraints(
    const ConstraintSet& constraints, const std::vector<std::string>* itemNames) {
  std::vector<ConstraintViolation> out;
  auto flag = [&](const PlacementConstraint& c, std::string detail) {
    out.push_back({c.describe(), std::move(detail)});
  };
  auto isItem = [&](const std::string& name) {
    return !itemNames ||
           std::find(itemNames->begin(), itemNames->end(), name) != itemNames->end();
  };

  std::map<std::string, const PlacementConstraint*> deviceGroup;  // device -> matching.
  std::map<std::string, const PlacementConstraint*> itemRow;      // item -> same_row.
  std::map<std::string, const PlacementConstraint*> itemMirror;   // item -> mirror_pair.

  for (const PlacementConstraint& c : constraints.all()) {
    switch (c.kind) {
      case ConstraintKind::kMirrorPair: {
        if (c.items.size() != 2) {
          flag(c, "mirror pairs take exactly two items");
          break;
        }
        if (c.items[0] == c.items[1]) flag(c, "an item cannot mirror itself");
        for (const std::string& item : c.items) {
          if (!isItem(item)) flag(c, "unknown item '" + item + "'");
          auto [it, inserted] = itemMirror.try_emplace(item, &c);
          if (!inserted && it->second != &c) {
            flag(c, "item '" + item + "' already belongs to " + it->second->describe());
          }
        }
        break;
      }
      case ConstraintKind::kCommonCentroid:
      case ConstraintKind::kInterdigitate: {
        if (c.group.empty()) flag(c, "matching constraints need a stack item name");
        if (c.items.size() < 2) flag(c, "matching constraints need at least two devices");
        if (c.kind == ConstraintKind::kCommonCentroid && c.items.size() != 2) {
          flag(c, "common-centroid stacks support exactly two devices");
        }
        if (!c.group.empty() && !isItem(c.group)) {
          flag(c, "unknown stack item '" + c.group + "'");
        }
        std::set<std::string> seen;
        for (const std::string& dev : c.items) {
          if (dev.empty()) flag(c, "empty device name");
          if (!seen.insert(dev).second) flag(c, "duplicate device '" + dev + "'");
          auto [it, inserted] = deviceGroup.try_emplace(dev, &c);
          if (!inserted && it->second != &c) {
            flag(c, "device '" + dev + "' already fused into " + it->second->describe());
          }
        }
        break;
      }
      case ConstraintKind::kSameRow: {
        if (c.items.empty()) {
          flag(c, "a row needs at least one item");
          break;
        }
        std::set<std::string> seen;
        for (const std::string& item : c.items) {
          if (!isItem(item)) flag(c, "unknown item '" + item + "'");
          if (!seen.insert(item).second) flag(c, "duplicate item '" + item + "'");
          auto [it, inserted] = itemRow.try_emplace(item, &c);
          if (!inserted && it->second != &c) {
            flag(c, "item '" + item + "' already placed by " + it->second->describe());
          }
        }
        break;
      }
      case ConstraintKind::kSymmetryAxis: {
        if (c.items.empty()) flag(c, "symmetry axis needs at least one item");
        for (const std::string& item : c.items) {
          if (!isItem(item)) flag(c, "unknown item '" + item + "'");
        }
        break;
      }
      case ConstraintKind::kProximity: {
        if (c.items.size() != 2) flag(c, "proximity takes exactly two items");
        if (c.weight <= 0.0) flag(c, "proximity weight must be positive");
        for (const std::string& item : c.items) {
          if (!isItem(item)) flag(c, "unknown item '" + item + "'");
        }
        break;
      }
    }
  }

  // A mirror pair must live in one row: the axis it mirrors about is its
  // row's axis, which two different rows cannot share by construction.
  for (const PlacementConstraint& c : constraints.all()) {
    if (c.kind != ConstraintKind::kMirrorPair || c.items.size() != 2) continue;
    auto a = itemRow.find(c.items[0]);
    auto b = itemRow.find(c.items[1]);
    if (a != itemRow.end() && b != itemRow.end() && a->second != b->second) {
      flag(c, "mirror pair spans two rows (" + a->second->describe() + " vs " +
                  b->second->describe() + ")");
    }
  }
  return out;
}

void requireValidConstraints(const ConstraintSet& constraints,
                             const std::vector<std::string>* itemNames) {
  const std::vector<ConstraintViolation> violations =
      validateConstraints(constraints, itemNames);
  if (!violations.empty()) {
    throw std::invalid_argument("invalid placement constraints:\n" +
                                formatConstraintViolations(violations));
  }
}

std::string formatConstraintViolations(const std::vector<ConstraintViolation>& violations) {
  std::ostringstream out;
  for (const ConstraintViolation& v : violations) {
    out << "  " << v.constraint << ": " << v.detail << '\n';
  }
  return out.str();
}

}  // namespace lo::layout
