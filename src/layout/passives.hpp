// Passive component generators: plate capacitors and poly resistors.
//
// Needed by topologies with on-chip compensation (the two-stage Miller OTA):
// the capacitor is a poly bottom plate under a metal1 top plate, the
// resistor a poly serpentine.  Both report the parasitics the sizing tool
// must know about (bottom-plate capacitance to substrate; the resistor's
// distributed capacitance).
#pragma once

#include "layout/cell.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

struct CapacitorSpec {
  std::string name = "C";
  double farads = 1e-12;
  std::string bottomNet = "a";  ///< Poly plate (carries the substrate parasitic).
  std::string topNet = "b";     ///< Metal1 plate.
  double aspect = 1.0;          ///< Plate width / height.
};

struct CapacitorInfo {
  double drawnFarads = 0.0;       ///< Capacitance of the drawn (snapped) plates.
  double bottomParasitic = 0.0;   ///< Bottom plate to substrate [F].
  geom::Coord width = 0, height = 0;
};

/// Generate the plate capacitor; ports on both plates.
[[nodiscard]] Cell generateCapacitor(const tech::Technology& t, const CapacitorSpec& spec,
                                     CapacitorInfo* infoOut = nullptr);

struct ResistorSpec {
  std::string name = "R";
  double ohms = 1e3;
  std::string netA = "a";
  std::string netB = "b";
  tech::Nm stripWidth = 0;      ///< 0 = minimum poly width.
  geom::Coord maxSegment = 20000;  ///< Serpentine segment length cap [nm].
};

struct ResistorInfo {
  double drawnOhms = 0.0;      ///< Resistance of the drawn serpentine.
  double parasiticCap = 0.0;   ///< Poly-over-field capacitance [F].
  int segments = 0;
  geom::Coord width = 0, height = 0;
};

/// Generate the poly serpentine; metal1 ports at both ends.
[[nodiscard]] Cell generateResistor(const tech::Technology& t, const ResistorSpec& spec,
                                    ResistorInfo* infoOut = nullptr);

}  // namespace lo::layout
