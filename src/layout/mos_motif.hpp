// Folded MOS transistor motif generator.
//
// "All transistors are built using a single motif generator which allows
// total control over terminals and wires" (paper, section 3).  The motif is
// a horizontal finger stack: alternating source/drain diffusion strips and
// poly gates, with contact columns and metal1 landing strips on every
// diffusion strip and a poly strap joining the gate fingers.
//
// Strip extents follow the same design-rule arithmetic the device library
// uses for junction capacitance (device/folding.cpp), so the parasitics the
// sizing tool is told about are exactly the parasitics the drawn layout has.
#pragma once

#include "device/folding.hpp"
#include "layout/cell.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

struct MosMotifSpec {
  std::string name = "M";
  tech::MosType type = tech::MosType::kNmos;
  device::FoldPlan plan;           ///< Fold count / finger width decision.
  double drawnL = 1e-6;            ///< Drawn channel length [m].
  double terminalCurrent = 0.0;    ///< |ID| [A], drives contact counts.
  std::string drainNet = "d";
  std::string gateNet = "g";
  std::string sourceNet = "s";
  std::string bulkNet = "";        ///< Net the well ties to (well cap extraction).
  bool emitWellAndSelect = true;   ///< Row generators draw a merged well instead.
};

/// Facts about the generated (or hypothetical) motif.
struct MosMotifInfo {
  int nf = 1;
  int contactsPerStrip = 1;       ///< Cuts in each diffusion contact column.
  int contactsRequired = 1;       ///< Cuts the EM rule asks for per strip.
  int drainStrips = 0;
  int sourceStrips = 0;
  geom::Coord width = 0;          ///< Bounding box [nm].
  geom::Coord height = 0;
};

/// Bounding box of the motif for a fold plan without generating geometry
/// (used by the shape-function area optimiser and the parasitic mode).
[[nodiscard]] MosMotifInfo motifShape(const tech::Technology& t, const device::FoldPlan& plan,
                                      double drawnL, double terminalCurrent = 0.0);

/// Generate the full motif geometry.  Ports: one metal1 port per diffusion
/// strip (tagged with the drain/source net) and one metal1 port on the gate
/// strap pad.
[[nodiscard]] Cell generateMosMotif(const tech::Technology& t, const MosMotifSpec& spec,
                                    MosMotifInfo* infoOut = nullptr);

}  // namespace lo::layout
