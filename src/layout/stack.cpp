#include "layout/stack.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "tech/units.hpp"

namespace lo::layout {

namespace {

using geom::Coord;
using geom::Rect;
using tech::Layer;

struct Unit {
  int device = -1;
  bool isPair = true;  ///< Pair = two fingers around a shared internal drain.
};

std::vector<Unit> buildUnitsInterdigitated(const StackSpec& spec) {
  // Device order: most fingers first, so big devices claim the outermost
  // symmetric slots and everything stays centred.
  std::vector<int> order(spec.devices.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return spec.devices[a].fingers > spec.devices[b].fingers;
  });

  std::vector<Unit> left, center, right;
  for (int d : order) {
    int pairs = spec.devices[d].fingers / 2;
    while (pairs >= 2) {
      left.push_back({d, true});
      right.push_back({d, true});
      pairs -= 2;
    }
    if (pairs == 1) center.push_back({d, true});
    if (spec.devices[d].fingers % 2 == 1) center.push_back({d, false});
  }
  std::vector<Unit> seq = left;
  seq.insert(seq.end(), center.begin(), center.end());
  seq.insert(seq.end(), right.rbegin(), right.rend());
  return seq;
}

/// The ABBA pattern only exists for a balanced pair; diagnose exactly what
/// the caller got wrong, naming the stack and its devices.
void requireCommonCentroidable(const StackSpec& spec) {
  auto roster = [&] {
    std::string out;
    for (const StackDevice& d : spec.devices) {
      if (!out.empty()) out += ", ";
      out += d.name + " (nf=" + std::to_string(d.fingers) + ")";
    }
    return out;
  };
  if (spec.devices.size() != 2) {
    throw std::invalid_argument("common-centroid stack '" + spec.name +
                                "' needs exactly 2 devices, got " +
                                std::to_string(spec.devices.size()) + ": " + roster());
  }
  if (spec.devices[0].fingers != spec.devices[1].fingers) {
    throw std::invalid_argument("common-centroid stack '" + spec.name +
                                "' needs equal finger counts, got " + roster());
  }
  if (spec.devices[0].fingers % 2 != 0) {
    throw std::invalid_argument("common-centroid stack '" + spec.name +
                                "' needs even finger counts, got " + roster());
  }
}

std::vector<Unit> buildUnitsCommonCentroid(const StackSpec& spec) {
  const int pairsEach = spec.devices[0].fingers / 2;
  std::vector<Unit> left, right;
  for (int i = 0; i < pairsEach; ++i) {
    left.push_back({i % 2 == 0 ? 0 : 1, true});
    right.push_back({i % 2 == 0 ? 1 : 0, true});
  }
  std::vector<Unit> seq = left;
  seq.insert(seq.end(), right.rbegin(), right.rend());  // ABBA for one pair each.
  return seq;
}

}  // namespace

StackPlan planStack(const StackSpec& spec) {
  if (spec.devices.empty()) throw std::invalid_argument("planStack: no devices");
  for (const StackDevice& d : spec.devices) {
    if (d.fingers < 1) throw std::invalid_argument("planStack: device with no fingers");
  }
  std::set<std::string> gateNets;
  for (const StackDevice& d : spec.devices) gateNets.insert(d.gateNet);
  if (gateNets.size() > 2) {
    throw std::invalid_argument("planStack: at most two distinct gate nets supported");
  }
  if (spec.pattern == StackPattern::kCommonCentroid) requireCommonCentroidable(spec);

  const std::vector<Unit> units = spec.pattern == StackPattern::kCommonCentroid
                                      ? buildUnitsCommonCentroid(spec)
                                      : buildUnitsInterdigitated(spec);

  StackPlan plan;
  auto pushDummy = [&](const std::string& rightStripNet) {
    plan.fingers.push_back({-1, true});
    plan.stripNets.push_back(rightStripNet);
    ++plan.dummyCount;
  };

  plan.stripNets.push_back(spec.sourceNet);
  for (int i = 0; i < spec.dummiesPerSide; ++i) pushDummy(spec.sourceNet);
  for (const Unit& u : units) {
    const StackDevice& dev = spec.devices[u.device];
    if (u.isPair) {
      plan.fingers.push_back({u.device, true});   // Drain to the right.
      plan.stripNets.push_back(dev.drainNet);
      plan.fingers.push_back({u.device, false});  // Drain to the left.
      plan.stripNets.push_back(spec.sourceNet);
    } else {
      plan.fingers.push_back({u.device, true});
      plan.stripNets.push_back(dev.drainNet);
      // Bridge dummy brings the row back onto the source net.
      pushDummy(spec.sourceNet);
    }
  }
  for (int i = 0; i < spec.dummiesPerSide; ++i) pushDummy(spec.sourceNet);

  // --- Metrics. ---
  plan.metrics.assign(spec.devices.size(), {});
  const double centre = (static_cast<double>(plan.fingers.size()) - 1.0) / 2.0;
  for (std::size_t d = 0; d < spec.devices.size(); ++d) {
    StackDeviceMetrics& m = plan.metrics[d];
    double posSum = 0.0;
    int l2r = 0, r2l = 0;
    for (std::size_t i = 0; i < plan.fingers.size(); ++i) {
      if (plan.fingers[i].device != static_cast<int>(d)) continue;
      ++m.fingers;
      posSum += static_cast<double>(i);
      (plan.fingers[i].currentLeftToRight ? l2r : r2l)++;
    }
    m.centroidOffset = m.fingers ? std::abs(posSum / m.fingers - centre) : 0.0;
    m.orientationImbalance = std::abs(l2r - r2l);
    // Drain strips: internal unless at the physical row ends.
    for (std::size_t s = 0; s < plan.stripNets.size(); ++s) {
      if (plan.stripNets[s] != spec.devices[d].drainNet) continue;
      if (s == 0 || s + 1 == plan.stripNets.size()) {
        ++m.externalDrainStrips;
      } else {
        ++m.internalDrainStrips;
      }
    }
  }
  return plan;
}

/// Attribute source-strip junction area/perimeter to adjacent devices.
void fillStackJunctions(const tech::DesignRules& r, const StackSpec& spec,
                        StackPlan& plan) {
  const double eExt = nmToMeters(r.contactedDiffusionExtent());
  const double eInt = nmToMeters(r.sharedContactedDiffusionExtent());
  // Use the grid-snapped finger width the generator will draw, so the
  // reported junctions (and widths) match the physical layout exactly.
  const double wf = nmToMeters(r.snapUp(
      std::max<tech::Nm>(metersToNm(spec.unitWidth), r.activeMinWidth)));

  for (std::size_t d = 0; d < spec.devices.size(); ++d) {
    StackDeviceMetrics& m = plan.metrics[d];
    m.junctions.w = spec.devices[d].fingers * wf;
    m.junctions.l = spec.drawnL;
    m.junctions.nf = spec.devices[d].fingers;
    m.junctions.ad = m.junctions.as = 0.0;
    m.junctions.pd = m.junctions.ps = 0.0;
  }

  const std::size_t nStrips = plan.stripNets.size();
  for (std::size_t s = 0; s < nStrips; ++s) {
    const bool external = (s == 0 || s + 1 == nStrips);
    const double area = (external ? eExt : eInt) * wf;
    const double perim = external ? 2.0 * eExt + wf : 2.0 * eInt;
    const std::string& net = plan.stripNets[s];

    // Adjacent non-dummy fingers.
    std::vector<int> owners;
    if (s > 0 && plan.fingers[s - 1].device >= 0) owners.push_back(plan.fingers[s - 1].device);
    if (s < plan.fingers.size() && plan.fingers[s].device >= 0) {
      owners.push_back(plan.fingers[s].device);
    }
    if (owners.empty()) continue;

    for (int d : owners) {
      const double share = 1.0 / owners.size();
      StackDeviceMetrics& m = plan.metrics[d];
      if (net == spec.devices[d].drainNet) {
        m.junctions.ad += share * area;
        m.junctions.pd += share * perim;
      } else if (net == spec.sourceNet) {
        m.junctions.as += share * area;
        m.junctions.ps += share * perim;
      }
    }
  }
}

namespace {

/// Where a gate net's strap sits.
enum class StrapLevel { kTop, kBottom, kDummy };

/// All vertical/horizontal dimension decisions shared by generateStack and
/// stackExtents.
struct StackDims {
  Coord eExt, eInt, l, wf, endcap, strapW, padW, gap;
  std::vector<std::string> gateNetOrder;  ///< [0] -> top, [1] -> bottom.
  bool hasBottomNet = false;
  StrapLevel dummyLevel = StrapLevel::kDummy;
  Coord topStrapY = 0, bottomStrapY = 0, dummyStrapY = 0;

  [[nodiscard]] Coord widthFor(std::size_t nFingers) const {
    return 2 * eExt + static_cast<Coord>(nFingers - 1) * eInt +
           static_cast<Coord>(nFingers) * l;
  }
  [[nodiscard]] Coord topExtent() const { return topStrapY + padW; }
  [[nodiscard]] Coord bottomExtent(bool hasDummies) const {
    Coord bottom = -endcap;
    if (hasBottomNet) bottom = std::min(bottom, bottomStrapY + strapW - padW);
    if (hasDummies && dummyLevel == StrapLevel::kDummy) {
      bottom = std::min(bottom, dummyStrapY + strapW - padW);
    }
    return bottom;
  }
};

StackDims computeDims(const tech::Technology& t, const StackSpec& spec) {
  const tech::DesignRules& r = t.rules;
  StackDims d;
  d.eExt = r.contactedDiffusionExtent();
  d.eInt = r.sharedContactedDiffusionExtent();
  d.l = r.snapUp(std::max<Coord>(metersToNm(spec.drawnL), r.polyMinWidth));
  d.wf = r.snapUp(std::max<Coord>(metersToNm(spec.unitWidth), r.activeMinWidth));
  d.endcap = r.polyEndcap;
  d.strapW = r.polyMinWidth;
  d.padW = r.contactSize + 2 * r.polyOverContact;
  d.gap = r.polySpacing;
  for (const StackDevice& dev : spec.devices) {
    if (std::find(d.gateNetOrder.begin(), d.gateNetOrder.end(), dev.gateNet) ==
        d.gateNetOrder.end()) {
      d.gateNetOrder.push_back(dev.gateNet);
    }
  }
  d.hasBottomNet = d.gateNetOrder.size() > 1;
  if (spec.dummyGateNet == d.gateNetOrder[0]) {
    d.dummyLevel = StrapLevel::kTop;
  } else if (d.hasBottomNet && spec.dummyGateNet == d.gateNetOrder[1]) {
    d.dummyLevel = StrapLevel::kBottom;
  } else {
    d.dummyLevel = StrapLevel::kDummy;
  }
  d.topStrapY = d.wf + d.endcap + d.gap;
  d.bottomStrapY = -d.endcap - d.gap - d.strapW;
  // The dummy strap must clear the bottom strap's contact pad, which hangs
  // padW below the bottom strap's top edge.
  d.dummyStrapY = d.hasBottomNet ? d.bottomStrapY - d.gap - d.padW : d.bottomStrapY;
  return d;
}

}  // namespace

StackExtents stackExtents(const tech::Technology& t, const StackSpec& spec) {
  const StackPlan plan = planStack(spec);
  const StackDims d = computeDims(t, spec);
  StackExtents e;
  e.width = d.widthFor(plan.fingers.size());
  e.height = d.topExtent() - d.bottomExtent(plan.dummyCount > 0);
  return e;
}

Cell generateStack(const tech::Technology& t, const StackSpec& spec, StackInfo* infoOut) {
  const tech::DesignRules& r = t.rules;
  StackPlan plan = planStack(spec);
  fillStackJunctions(r, spec, plan);

  const StackDims dims = computeDims(t, spec);
  const Coord eExt = dims.eExt;
  const Coord eInt = dims.eInt;
  const Coord l = dims.l;
  const Coord wf = dims.wf;
  const Coord strapW = dims.strapW;
  const Coord padW = dims.padW;

  const std::vector<std::string>& gateNetOrder = dims.gateNetOrder;
  const bool hasBottomNet = dims.hasBottomNet;
  const Coord topStrapY = dims.topStrapY;
  const Coord bottomStrapY1 = dims.bottomStrapY;
  const Coord dummyStrapY = dims.dummyStrapY;

  Cell cell;
  cell.name = spec.name;

  // Walk strips and gates left to right.
  const std::size_t nFingers = plan.fingers.size();
  std::vector<Coord> gateX(nFingers);
  Coord x = 0;
  const int nCuts = [&] {
    const Coord usable = wf - 2 * r.activeOverContact;
    if (usable < r.contactSize) return 1;
    return static_cast<int>((usable + r.contactSpacing) /
                            (r.contactSize + r.contactSpacing));
  }();

  auto emitStrip = [&](Coord x0, Coord width, const std::string& net) {
    const Coord cx = x0 + (width - r.contactSize) / 2;
    const Coord pitch = r.contactSize + r.contactSpacing;
    const Coord colHeight = nCuts * r.contactSize + (nCuts - 1) * r.contactSpacing;
    const Coord cy0 = (wf - colHeight) / 2;
    for (int k = 0; k < nCuts; ++k) {
      cell.shapes.add(Layer::kContact, Rect(cx, cy0 + k * pitch, cx + r.contactSize,
                                            cy0 + k * pitch + r.contactSize));
    }
    const Rect metal(cx - r.metal1OverContact, cy0 - r.metal1OverContact,
                     cx + r.contactSize + r.metal1OverContact,
                     cy0 + colHeight + r.metal1OverContact);
    cell.shapes.add(Layer::kMetal1, metal, net);
    cell.addPort(net, Layer::kMetal1, metal);
  };

  for (std::size_t i = 0; i < nFingers; ++i) {
    const Coord stripW = (i == 0) ? eExt : eInt;
    emitStrip(x, stripW, plan.stripNets[i]);
    x += stripW;
    gateX[i] = x;
    x += l;
  }
  emitStrip(x, eExt, plan.stripNets[nFingers]);
  const Coord activeW = x + eExt;
  cell.shapes.add(Layer::kActive, Rect(0, 0, activeW, wf));

  // Gate fingers.
  std::map<std::string, std::pair<Coord, Coord>> strapSpan;  // net -> x range.
  for (std::size_t i = 0; i < nFingers; ++i) {
    const StackFinger& f = plan.fingers[i];
    std::string net;
    StrapLevel level;
    if (f.device < 0) {
      net = spec.dummyGateNet;
      level = dims.dummyLevel;
    } else {
      net = spec.devices[f.device].gateNet;
      level = net == gateNetOrder[0] ? StrapLevel::kTop : StrapLevel::kBottom;
    }
    Coord yLo = 0, yHi = 0;
    switch (level) {
      case StrapLevel::kTop:
        yLo = -dims.endcap;
        yHi = topStrapY + strapW;
        break;
      case StrapLevel::kBottom:
        yLo = bottomStrapY1;
        yHi = wf + dims.endcap;
        break;
      case StrapLevel::kDummy:
        yLo = dummyStrapY;
        yHi = wf + dims.endcap;
        break;
    }
    cell.shapes.add(Layer::kPoly, Rect(gateX[i], yLo, gateX[i] + l, yHi), net);
    auto [it, inserted] = strapSpan.try_emplace(net, std::make_pair(gateX[i], gateX[i] + l));
    if (!inserted) {
      it->second.first = std::min(it->second.first, gateX[i]);
      it->second.second = std::max(it->second.second, gateX[i] + l);
    }
  }

  // Straps with contact pads.
  auto emitStrap = [&](const std::string& net, Coord y0, bool padAbove) {
    const auto it = strapSpan.find(net);
    if (it == strapSpan.end()) return;
    cell.shapes.add(Layer::kPoly, Rect(it->second.first, y0, it->second.second, y0 + strapW),
                    net);
    const Coord px = it->second.first;
    const Rect pad = padAbove ? Rect(px, y0, px + padW, y0 + padW)
                              : Rect(px, y0 + strapW - padW, px + padW, y0 + strapW);
    cell.shapes.add(Layer::kPoly, pad, net);
    const Coord off = (padW - r.contactSize) / 2;
    cell.shapes.add(Layer::kContact, Rect(pad.x0 + off, pad.y0 + off,
                                          pad.x0 + off + r.contactSize,
                                          pad.y0 + off + r.contactSize));
    const Rect metal = pad.inflated(r.metal1OverContact - r.polyOverContact);
    cell.shapes.add(Layer::kMetal1, metal, net);
    cell.addPort(net, Layer::kMetal1, metal);
  };
  emitStrap(gateNetOrder[0], topStrapY, true);
  if (hasBottomNet) emitStrap(gateNetOrder[1], bottomStrapY1, false);
  if (plan.dummyCount > 0 && dims.dummyLevel == StrapLevel::kDummy) {
    emitStrap(spec.dummyGateNet, dummyStrapY, false);
  }

  // Select implant and well.
  if (spec.emitWellAndSelect) {
    const Rect active(0, 0, activeW, wf);
    const Layer select = spec.type == tech::MosType::kNmos ? Layer::kNPlus : Layer::kPPlus;
    cell.shapes.add(select, active.inflated(r.selectOverActive));
    if (spec.type == tech::MosType::kPmos) {
      cell.shapes.add(Layer::kNWell, active.inflated(r.nwellOverActive), spec.bulkNet);
    }
  }

  if (infoOut) {
    infoOut->plan = plan;
    infoOut->contactsPerStrip = nCuts;
    const Rect box = cell.bbox();
    infoOut->width = box.width();
    infoOut->height = box.height();
  }
  return cell;
}

}  // namespace lo::layout
