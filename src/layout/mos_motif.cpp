#include "layout/mos_motif.hpp"

#include <algorithm>
#include <cmath>

#include "tech/units.hpp"

namespace lo::layout {

namespace {

using geom::Coord;
using geom::Rect;
using tech::Layer;

struct MotifDims {
  Coord eExt, eInt, l, wf, endcap, strapGap, strapW, padW;
  int nf = 1;
  [[nodiscard]] Coord activeWidth() const {
    return 2 * eExt + (nf - 1) * eInt + nf * l;
  }
  [[nodiscard]] Coord gateX(int i) const { return eExt + i * (l + eInt); }
  /// Left edge of diffusion strip s (s = 0..nf).
  [[nodiscard]] Coord stripX(int s) const {
    return s == 0 ? 0 : gateX(s - 1) + l;
  }
  [[nodiscard]] Coord stripWidth(int s) const {
    return (s == 0 || s == nf) ? eExt : eInt;
  }
  [[nodiscard]] Coord strapY() const { return wf + endcap + strapGap; }
  [[nodiscard]] Coord totalHeight() const { return 2 * endcap + wf + strapGap + padW; }
};

MotifDims dimsFor(const tech::Technology& t, const device::FoldPlan& plan, double drawnL) {
  const tech::DesignRules& r = t.rules;
  MotifDims d;
  d.nf = plan.nf;
  d.eExt = r.contactedDiffusionExtent();
  d.eInt = r.sharedContactedDiffusionExtent();
  d.l = r.snapUp(std::max<Coord>(metersToNm(drawnL), r.polyMinWidth));
  d.wf = r.snapUp(std::max<Coord>(metersToNm(plan.foldWidth), r.activeMinWidth));
  d.endcap = r.polyEndcap;
  d.strapGap = r.polySpacing;
  d.strapW = r.polyMinWidth;
  d.padW = r.contactSize + 2 * r.polyOverContact;
  return d;
}

int contactsFitting(const tech::DesignRules& r, Coord wf) {
  const Coord usable = wf - 2 * r.activeOverContact;
  if (usable < r.contactSize) return 1;  // Tolerate a tight fit.
  return static_cast<int>((usable + r.contactSpacing) / (r.contactSize + r.contactSpacing));
}

}  // namespace

MosMotifInfo motifShape(const tech::Technology& t, const device::FoldPlan& plan,
                        double drawnL, double terminalCurrent) {
  const MotifDims d = dimsFor(t, plan, drawnL);
  MosMotifInfo info;
  info.nf = plan.nf;
  if (plan.nf == 1) {
    info.drainStrips = 1;
    info.sourceStrips = 1;
  } else if (plan.nf % 2 == 0) {
    info.drainStrips = plan.drainInternal ? plan.nf / 2 : plan.nf / 2 + 1;
    info.sourceStrips = plan.nf + 1 - info.drainStrips;
  } else {
    info.drainStrips = (plan.nf + 1) / 2;
    info.sourceStrips = (plan.nf + 1) / 2;
  }
  info.contactsPerStrip = contactsFitting(t.rules, d.wf);
  const double stripCurrent =
      terminalCurrent / std::max(1, std::min(info.drainStrips, info.sourceStrips));
  info.contactsRequired = t.contactsForCurrent(stripCurrent);
  info.width = d.activeWidth();
  info.height = d.totalHeight();
  return info;
}

Cell generateMosMotif(const tech::Technology& t, const MosMotifSpec& spec,
                      MosMotifInfo* infoOut) {
  const tech::DesignRules& r = t.rules;
  const MotifDims d = dimsFor(t, spec.plan, spec.drawnL);
  MosMotifInfo info = motifShape(t, spec.plan, spec.drawnL, spec.terminalCurrent);

  Cell cell;
  cell.name = spec.name;

  // Active area.
  cell.shapes.add(Layer::kActive, Rect(0, 0, d.activeWidth(), d.wf));

  // Poly gate fingers + strap.
  const Coord strapY = d.strapY();
  for (int i = 0; i < d.nf; ++i) {
    cell.shapes.add(Layer::kPoly, Rect(d.gateX(i), -d.endcap, d.gateX(i) + d.l,
                                       strapY + d.strapW), spec.gateNet);
  }
  cell.shapes.add(Layer::kPoly,
                  Rect(d.gateX(0), strapY, d.gateX(d.nf - 1) + d.l, strapY + d.strapW),
                  spec.gateNet);
  // Gate contact pad at the left end of the strap.
  const Rect pad(d.gateX(0), strapY, d.gateX(0) + d.padW, strapY + d.padW);
  cell.shapes.add(Layer::kPoly, pad, spec.gateNet);
  const Coord cutOff = (d.padW - r.contactSize) / 2;
  cell.shapes.add(Layer::kContact, Rect(pad.x0 + cutOff, pad.y0 + cutOff,
                                        pad.x0 + cutOff + r.contactSize,
                                        pad.y0 + cutOff + r.contactSize));
  const Rect gateMetal = pad.inflated(r.metal1OverContact - r.polyOverContact);
  cell.shapes.add(Layer::kMetal1, gateMetal, spec.gateNet);
  cell.addPort(spec.gateNet, Layer::kMetal1, gateMetal);

  // Diffusion strips: contacts + metal1 landing, alternating nets.  Strip 0
  // is a source strip when the drain is internal, a drain strip otherwise.
  const bool firstIsSource = spec.plan.nf == 1 ? true : spec.plan.drainInternal;
  for (int s = 0; s <= d.nf; ++s) {
    const bool isSource = ((s % 2 == 0) == firstIsSource);
    const std::string& net = isSource ? spec.sourceNet : spec.drainNet;
    const Coord x0 = d.stripX(s);
    const Coord sw = d.stripWidth(s);
    const Coord cx = x0 + (sw - r.contactSize) / 2;

    const int nCuts = info.contactsPerStrip;
    const Coord pitch = r.contactSize + r.contactSpacing;
    const Coord colHeight = nCuts * r.contactSize + (nCuts - 1) * r.contactSpacing;
    const Coord cy0 = (d.wf - colHeight) / 2;
    for (int k = 0; k < nCuts; ++k) {
      cell.shapes.add(Layer::kContact,
                      Rect(cx, cy0 + k * pitch, cx + r.contactSize,
                           cy0 + k * pitch + r.contactSize));
    }
    const Rect metal(cx - r.metal1OverContact, cy0 - r.metal1OverContact,
                     cx + r.contactSize + r.metal1OverContact,
                     cy0 + colHeight + r.metal1OverContact);
    cell.shapes.add(Layer::kMetal1, metal, net);
    cell.addPort(net, Layer::kMetal1, metal);
  }

  // Select implant and (for PMOS) the N-well.
  if (spec.emitWellAndSelect) {
    const Rect active(0, 0, d.activeWidth(), d.wf);
    const Layer select = spec.type == tech::MosType::kNmos ? Layer::kNPlus : Layer::kPPlus;
    cell.shapes.add(select, active.inflated(r.selectOverActive));
    if (spec.type == tech::MosType::kPmos) {
      cell.shapes.add(Layer::kNWell, active.inflated(r.nwellOverActive), spec.bulkNet);
    }
  }

  if (infoOut) *infoOut = info;
  return cell;
}

}  // namespace lo::layout
