#include "layout/writers.hpp"

#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tech/layers.hpp"

namespace lo::layout {

namespace {

struct LayerStyle {
  const char* fill;
  double opacity;
};

LayerStyle styleOf(tech::Layer layer) {
  switch (layer) {
    case tech::Layer::kNWell: return {"#d9c79a", 0.35};
    case tech::Layer::kActive: return {"#2e8b57", 0.55};
    case tech::Layer::kPoly: return {"#c03030", 0.65};
    case tech::Layer::kNPlus: return {"#7ec87e", 0.20};
    case tech::Layer::kPPlus: return {"#c87e7e", 0.20};
    case tech::Layer::kContact: return {"#111111", 0.9};
    case tech::Layer::kMetal1: return {"#3060c0", 0.55};
    case tech::Layer::kVia1: return {"#e0e0e0", 0.9};
    case tech::Layer::kMetal2: return {"#9040c0", 0.45};
  }
  return {"#888888", 0.5};
}

/// CIF layer names (MOSIS-style).
const char* cifName(tech::Layer layer) {
  switch (layer) {
    case tech::Layer::kNWell: return "CWN";
    case tech::Layer::kActive: return "CAA";
    case tech::Layer::kPoly: return "CPG";
    case tech::Layer::kNPlus: return "CSN";
    case tech::Layer::kPPlus: return "CSP";
    case tech::Layer::kContact: return "CCC";
    case tech::Layer::kMetal1: return "CMF";
    case tech::Layer::kVia1: return "CVA";
    case tech::Layer::kMetal2: return "CMS";
  }
  return "CXX";
}

}  // namespace

std::string toSvg(const geom::ShapeList& shapes, double scale) {
  const geom::Rect box = shapes.bbox();
  const double margin = 20.0;
  const double w = box.width() * scale + 2 * margin;
  const double h = box.height() * scale + 2 * margin;
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
     << "\" viewBox=\"0 0 " << w << " " << h << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"#fafaf7\"/>\n";
  // Draw in kAllLayers order so wells sit under everything else.
  for (tech::Layer layer : tech::kAllLayers) {
    for (const geom::Shape& s : shapes.shapes()) {
      if (s.layer != layer) continue;
      const LayerStyle st = styleOf(layer);
      const double x = (s.rect.x0 - box.x0) * scale + margin;
      // Flip y so the drawn origin is bottom-left.
      const double y = (box.y1 - s.rect.y1) * scale + margin;
      os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << s.rect.width() * scale
         << "\" height=\"" << s.rect.height() * scale << "\" fill=\"" << st.fill
         << "\" fill-opacity=\"" << st.opacity << "\" stroke=\"" << st.fill
         << "\" stroke-width=\"0.4\">";
      if (!s.net.empty()) os << "<title>" << s.net << " (" << tech::layerName(layer) << ")</title>";
      os << "</rect>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

std::string toCif(const geom::ShapeList& shapes, const std::string& cellName) {
  std::ostringstream os;
  os << "(CIF written by lo::layout);\n";
  os << "DS 1 1 1;\n";
  os << "9 " << cellName << ";\n";
  for (tech::Layer layer : tech::kAllLayers) {
    bool headerDone = false;
    for (const geom::Shape& s : shapes.shapes()) {
      if (s.layer != layer) continue;
      if (!headerDone) {
        os << "L " << cifName(layer) << ";\n";
        headerDone = true;
      }
      // CIF boxes: B width height xcenter ycenter, in centimicrons (10 nm).
      const geom::Coord cw = s.rect.width() / 10, ch = s.rect.height() / 10;
      const geom::Coord cx = (s.rect.x0 + s.rect.x1) / 20, cy = (s.rect.y0 + s.rect.y1) / 20;
      os << "B " << cw << " " << ch << " " << cx << " " << cy << ";\n";
    }
  }
  os << "DF;\nC 1;\nE\n";
  return os.str();
}

int gdsLayerNumber(tech::Layer layer) {
  switch (layer) {
    case tech::Layer::kNWell: return 1;
    case tech::Layer::kActive: return 2;
    case tech::Layer::kPoly: return 3;
    case tech::Layer::kNPlus: return 4;
    case tech::Layer::kPPlus: return 5;
    case tech::Layer::kContact: return 6;
    case tech::Layer::kMetal1: return 7;
    case tech::Layer::kVia1: return 8;
    case tech::Layer::kMetal2: return 9;
  }
  return 63;
}

namespace {

/// GDSII stream-format primitives (big-endian records).
class GdsStream {
 public:
  void record(std::uint8_t type, std::uint8_t dataType, const std::string& payload = {}) {
    const std::size_t len = 4 + payload.size();
    out_.push_back(static_cast<char>((len >> 8) & 0xff));
    out_.push_back(static_cast<char>(len & 0xff));
    out_.push_back(static_cast<char>(type));
    out_.push_back(static_cast<char>(dataType));
    out_ += payload;
  }
  static std::string i16(std::initializer_list<int> values) {
    std::string s;
    for (int v : values) {
      s.push_back(static_cast<char>((v >> 8) & 0xff));
      s.push_back(static_cast<char>(v & 0xff));
    }
    return s;
  }
  static std::string i32(std::initializer_list<long long> values) {
    std::string s;
    for (long long v : values) {
      for (int shift = 24; shift >= 0; shift -= 8) {
        s.push_back(static_cast<char>((v >> shift) & 0xff));
      }
    }
    return s;
  }
  /// GDS 8-byte real: sign bit, excess-64 base-16 exponent, 56-bit mantissa.
  static std::string real8(double v) {
    std::string s(8, '\0');
    if (v == 0.0) return s;
    const bool neg = v < 0;
    double mant = neg ? -v : v;
    int exp = 0;
    while (mant >= 1.0) {
      mant /= 16.0;
      ++exp;
    }
    while (mant < 1.0 / 16.0) {
      mant *= 16.0;
      --exp;
    }
    s[0] = static_cast<char>((neg ? 0x80 : 0x00) | ((exp + 64) & 0x7f));
    for (int i = 1; i < 8; ++i) {
      mant *= 256.0;
      const int byte = static_cast<int>(mant);
      s[i] = static_cast<char>(byte);
      mant -= byte;
    }
    return s;
  }
  static std::string text(const std::string& name) {
    std::string s = name;
    if (s.size() % 2) s.push_back('\0');  // Records are word-aligned.
    return s;
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  std::string out_;
};

}  // namespace

std::string toGds(const geom::ShapeList& shapes, const std::string& cellName) {
  GdsStream g;
  g.record(0x00, 0x02, GdsStream::i16({600}));  // HEADER, version 6.
  // BGNLIB / BGNSTR carry creation timestamps; use a fixed epoch so output
  // is deterministic.
  const std::string stamp = GdsStream::i16({2000, 1, 1, 0, 0, 0, 2000, 1, 1, 0, 0, 0});
  g.record(0x01, 0x02, stamp);                        // BGNLIB.
  g.record(0x02, 0x06, GdsStream::text("LOLIB"));     // LIBNAME.
  g.record(0x03, 0x05, GdsStream::real8(1e-3) + GdsStream::real8(1e-9));  // UNITS.
  g.record(0x05, 0x02, stamp);                        // BGNSTR.
  g.record(0x06, 0x06, GdsStream::text(cellName));    // STRNAME.
  for (const geom::Shape& s : shapes.shapes()) {
    g.record(0x08, 0x00);                                          // BOUNDARY.
    g.record(0x0d, 0x02, GdsStream::i16({gdsLayerNumber(s.layer)}));  // LAYER.
    g.record(0x0e, 0x02, GdsStream::i16({0}));                     // DATATYPE.
    const geom::Rect& r = s.rect;
    g.record(0x10, 0x03, GdsStream::i32({r.x0, r.y0, r.x1, r.y0, r.x1, r.y1, r.x0, r.y1,
                                         r.x0, r.y0}));            // XY (closed).
    g.record(0x11, 0x00);                                          // ENDEL.
  }
  g.record(0x07, 0x00);  // ENDSTR.
  g.record(0x04, 0x00);  // ENDLIB.
  return g.str();
}

geom::ShapeList fromGds(const std::string& stream) {
  geom::ShapeList shapes;
  std::size_t pos = 0;
  int currentLayer = -1;
  auto u16 = [&](std::size_t at) {
    return (static_cast<unsigned>(static_cast<unsigned char>(stream[at])) << 8) |
           static_cast<unsigned char>(stream[at + 1]);
  };
  auto i32 = [&](std::size_t at) {
    std::int32_t v = 0;
    for (int k = 0; k < 4; ++k) v = (v << 8) | static_cast<unsigned char>(stream[at + k]);
    return v;
  };
  while (pos + 4 <= stream.size()) {
    const std::size_t len = u16(pos);
    if (len < 4 || pos + len > stream.size()) {
      throw std::runtime_error("fromGds: malformed record length");
    }
    const unsigned char type = stream[pos + 2];
    if (type == 0x0d) {  // LAYER.
      currentLayer = static_cast<int>(u16(pos + 4));
    } else if (type == 0x10) {  // XY.
      const std::size_t n = (len - 4) / 8;
      if (n != 5) throw std::runtime_error("fromGds: only rectangles supported");
      const std::int32_t x0 = i32(pos + 4), y0 = i32(pos + 8);
      const std::int32_t x1 = i32(pos + 20), y1 = i32(pos + 24);
      tech::Layer layer = tech::Layer::kMetal1;
      bool found = false;
      for (tech::Layer l : tech::kAllLayers) {
        if (gdsLayerNumber(l) == currentLayer) {
          layer = l;
          found = true;
        }
      }
      if (!found) throw std::runtime_error("fromGds: unknown layer number");
      shapes.add(layer, geom::Rect(x0, y0, x1, y1));
    }
    pos += len;
  }
  if (pos != stream.size()) throw std::runtime_error("fromGds: trailing bytes");
  return shapes;
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << content;
}

std::string outputPath(const std::string& name) {
  const char* env = std::getenv("LOS_OUT_DIR");
  const std::filesystem::path dir = (env != nullptr && *env != '\0')
                                        ? std::filesystem::path(env)
                                        : std::filesystem::path("examples/out");
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

}  // namespace lo::layout
