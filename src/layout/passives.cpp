#include "layout/passives.hpp"

#include <algorithm>
#include <cmath>

#include "tech/units.hpp"

namespace lo::layout {

namespace {

using geom::Coord;
using geom::Rect;
using tech::Layer;

/// Poly contact pad with a cut and a metal1 landing; returns the metal rect.
Rect emitPolyPad(const tech::Technology& t, Cell& cell, Coord x0, Coord y0,
                 const std::string& net) {
  const tech::DesignRules& r = t.rules;
  const Coord padW = r.contactSize + 2 * r.polyOverContact;
  const Rect pad(x0, y0, x0 + padW, y0 + padW);
  cell.shapes.add(Layer::kPoly, pad, net);
  const Coord off = (padW - r.contactSize) / 2;
  cell.shapes.add(Layer::kContact, Rect(pad.x0 + off, pad.y0 + off,
                                        pad.x0 + off + r.contactSize,
                                        pad.y0 + off + r.contactSize));
  const Rect metal = pad.inflated(r.metal1OverContact - r.polyOverContact);
  cell.shapes.add(Layer::kMetal1, metal, net);
  cell.addPort(net, Layer::kMetal1, metal);
  return metal;
}

}  // namespace

Cell generateCapacitor(const tech::Technology& t, const CapacitorSpec& spec,
                       CapacitorInfo* infoOut) {
  const tech::DesignRules& r = t.rules;
  if (spec.farads <= 0) throw std::invalid_argument("capacitor must be positive");

  const double areaM2 = spec.farads / t.plateCapPerM2;
  const double wM = std::sqrt(areaM2 * spec.aspect);
  const Coord plateW = r.snapUp(std::max<Coord>(metersToNm(wM), r.polyMinWidth));
  const Coord plateH =
      r.snapUp(std::max<Coord>(metersToNm(areaM2 / nmToMeters(plateW)), r.polyMinWidth));

  Cell cell;
  cell.name = spec.name;

  // Bottom poly plate, extended to the left so its contact pad clears the
  // top plate by the metal1 spacing rule.
  const Coord padW = r.contactSize + 2 * r.polyOverContact;
  const Coord padGap = r.metal1Spacing + padW;
  const Rect bottom(-padGap, 0, plateW, plateH);
  cell.shapes.add(Layer::kPoly, bottom, spec.bottomNet);
  emitPolyPad(t, cell, -padGap, (plateH - padW) / 2, spec.bottomNet);

  // Top metal1 plate, inset so the bottom pad's metal keeps its spacing.
  const Rect top(0, 0, plateW, plateH);
  cell.shapes.add(Layer::kMetal1, top, spec.topNet);
  cell.addPort(spec.topNet, Layer::kMetal1, top);

  if (infoOut) {
    infoOut->drawnFarads = top.areaM2() * t.plateCapPerM2;
    const tech::LayerElectrical& poly = t.layer(Layer::kPoly);
    infoOut->bottomParasitic =
        bottom.areaM2() * poly.capAreaPerM2 + bottom.perimeterM() * poly.capFringePerM;
    const Rect box = cell.bbox();
    infoOut->width = box.width();
    infoOut->height = box.height();
  }
  return cell;
}

Cell generateResistor(const tech::Technology& t, const ResistorSpec& spec,
                      ResistorInfo* infoOut) {
  const tech::DesignRules& r = t.rules;
  if (spec.ohms <= 0) throw std::invalid_argument("resistor must be positive");
  const double sheet = t.layer(Layer::kPoly).sheetResOhmSq;
  if (sheet <= 0) throw std::invalid_argument("poly sheet resistance not set");

  const Coord w = spec.stripWidth > 0 ? r.snapUp(spec.stripWidth)
                                      : r.snapUp(r.polyMinWidth);
  const double squares = spec.ohms / sheet;
  const Coord totalLen = r.snapUp(static_cast<Coord>(squares * w));
  // Row pitch must clear both the poly spacing rule and the terminal pads
  // (which stack vertically on the same side when the strip count is even).
  const Coord padW0 = r.contactSize + 2 * r.polyOverContact;
  const Coord pitch = std::max(w + r.polySpacing, padW0 + r.polySpacing);
  const int k = std::max(1, static_cast<int>(
                                std::ceil(static_cast<double>(totalLen) / spec.maxSegment)));
  // Straight length per segment so that straights + connectors reach the
  // target centre-line length.
  const Coord ls = r.snapUp(std::max<Coord>(
      (totalLen - static_cast<Coord>(k - 1) * pitch) / k, 2 * w));

  Cell cell;
  cell.name = spec.name;
  // Horizontal strips joined by vertical connectors at alternating ends.
  // The resistive body is left net-untagged: it deliberately connects two
  // different nets, which a net-aware DRC would otherwise flag as a short.
  for (int i = 0; i < k; ++i) {
    const Coord y0 = i * pitch;
    cell.shapes.add(Layer::kPoly, Rect(0, y0, ls, y0 + w));
    if (i + 1 < k) {
      const Coord cx = (i % 2 == 0) ? ls - w : 0;
      cell.shapes.add(Layer::kPoly, Rect(cx, y0, cx + w, y0 + pitch + w));
    }
  }
  // Terminal pads: start of strip 0 (left) and free end of the last strip.
  const Coord padW = r.contactSize + 2 * r.polyOverContact;
  emitPolyPad(t, cell, -padW, -(padW - w) / 2, spec.netA);
  const Coord lastY = (k - 1) * pitch;
  const bool lastEndsRight = (k % 2 == 1);
  const Coord padX = lastEndsRight ? ls : -padW;
  emitPolyPad(t, cell, padX, lastY - (padW - w) / 2, spec.netB);

  if (infoOut) {
    infoOut->segments = k;
    infoOut->drawnOhms =
        (static_cast<double>(k) * ls + static_cast<double>(k - 1) * pitch) / w * sheet;
    const tech::LayerElectrical& poly = t.layer(Layer::kPoly);
    infoOut->parasiticCap = cell.shapes.drawnAreaM2(Layer::kPoly) * poly.capAreaPerM2;
    const Rect box = cell.bbox();
    infoOut->width = box.width();
    infoOut->height = box.height();
  }
  return cell;
}

}  // namespace lo::layout
