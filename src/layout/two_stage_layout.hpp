// Procedural layout program for the two-stage Miller OTA -- the second
// "CAIRO program" in the library, demonstrating that new topologies plug
// into the same constraint/row placement pipeline: the topology declares
// its matching intent (twoStagePlacementConstraints) and the RowPlacer
// realises the rows.  The declared backend reproduces the historical
// floorplan byte-for-byte:
//   top row    : MP3-MP4 mirror stack (PMOS, shared VDD well) | MP6 motif
//   middle row : CC plate capacitor | RZ poly serpentine
//   bottom row : MN5 (tail) | MN1/MN2 common-centroid stack | MN7
#pragma once

#include <cstdint>
#include <map>

#include "circuit/two_stage.hpp"
#include "device/folding.hpp"
#include "layout/cell.hpp"
#include "layout/constraints.hpp"
#include "layout/extract.hpp"
#include "layout/passives.hpp"
#include "layout/router.hpp"
#include "layout/row.hpp"
#include "layout/slicing.hpp"
#include "layout/stack.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

struct TwoStageLayoutOptions {
  device::FoldStyle foldStyle = device::FoldStyle::kDrainInternal;
  int dummiesPerSide = 1;
  ShapeConstraint shape = defaultShape();
  int maxFoldCandidates = 6;

  /// Row-placer backend (see OtaLayoutOptions).
  RowSearch placerSearch = RowSearch::kDeclared;
  std::uint64_t placerSeed = 1;
  int placerCandidates = 96;
  int placerThreads = 1;
  double wireCostNm = 50.0;

  [[nodiscard]] static ShapeConstraint defaultShape() {
    ShapeConstraint c;
    c.aspectRatio = 1.0;
    return c;
  }
};

/// The two-stage OTA's declared matching intent: the input pair and the
/// current mirror each fuse common-centroid into a stack, the three
/// diffusion/passive rows are declared bottom to top, and the Miller
/// compensation network (CC, RZ) stays tightly coupled.
[[nodiscard]] ConstraintSet twoStagePlacementConstraints();

struct TwoStageLayoutResult {
  std::map<circuit::TwoStageGroup, device::FoldPlan> foldPlans;
  std::map<circuit::TwoStageGroup, device::MosGeometry> junctions;
  ParasiticReport parasitics;
  StackPlan pairPlan;
  CapacitorInfo ccInfo;
  ResistorInfo rzInfo;
  geom::Coord width = 0;
  geom::Coord height = 0;
  FloorplanResult floorplan;
  RowPlacement placement;  ///< Row placer outcome (rows, score).
  RoutingResult routing;
  Cell cell;  ///< Geometry; empty in parasitic mode.
};

[[nodiscard]] TwoStageLayoutResult generateTwoStageLayout(
    const tech::Technology& t, const circuit::TwoStageOtaDesign& design,
    const TwoStageLayoutOptions& options, bool generateGeometry);

}  // namespace lo::layout
