// Procedural layout program for the two-stage Miller OTA -- the second
// "CAIRO program" in the library, demonstrating that new topologies plug
// into the same parasitic-calculation / generation machinery.
//
// Floorplan:
//   top row    : MP3-MP4 mirror stack (PMOS, shared VDD well) | MP6 motif
//   middle row : CC plate capacitor | RZ poly serpentine
//   bottom row : MN5 (tail) | MN1/MN2 common-centroid stack | MN7
#pragma once

#include <map>

#include "circuit/two_stage.hpp"
#include "device/folding.hpp"
#include "layout/cell.hpp"
#include "layout/extract.hpp"
#include "layout/passives.hpp"
#include "layout/router.hpp"
#include "layout/slicing.hpp"
#include "layout/stack.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

struct TwoStageLayoutOptions {
  device::FoldStyle foldStyle = device::FoldStyle::kDrainInternal;
  int dummiesPerSide = 1;
  ShapeConstraint shape = defaultShape();
  int maxFoldCandidates = 6;

  [[nodiscard]] static ShapeConstraint defaultShape() {
    ShapeConstraint c;
    c.aspectRatio = 1.0;
    return c;
  }
};

struct TwoStageLayoutResult {
  std::map<circuit::TwoStageGroup, device::FoldPlan> foldPlans;
  std::map<circuit::TwoStageGroup, device::MosGeometry> junctions;
  ParasiticReport parasitics;
  StackPlan pairPlan;
  CapacitorInfo ccInfo;
  ResistorInfo rzInfo;
  geom::Coord width = 0;
  geom::Coord height = 0;
  FloorplanResult floorplan;
  RoutingResult routing;
  Cell cell;  ///< Geometry; empty in parasitic mode.
};

[[nodiscard]] TwoStageLayoutResult generateTwoStageLayout(
    const tech::Technology& t, const circuit::TwoStageOtaDesign& design,
    const TwoStageLayoutOptions& options, bool generateGeometry);

}  // namespace lo::layout
