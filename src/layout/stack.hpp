// Matched transistor stacks.
//
// Several transistors sharing a source net are drawn as one diffusion row of
// unit fingers ("stack").  The planner implements the paper's matching
// machinery (section 3, "Matching constraints"):
//   * symmetric placement so every device is centred around the stack
//     mid-point,
//   * pairing of fingers around shared internal drains (which also realises
//     the even-fold / internal-drain capacitance trick of Fig. 2),
//   * current-direction bookkeeping: paired fingers conduct in opposite
//     directions so each device's orientation imbalance is minimised
//     (Malavasi-Pandini style stack generation),
//   * dummy fingers at the row ends and as bridges wherever adjacent strips
//     carry different nets.
//
// Supported gate-net configurations: all devices on one gate net (current
// mirror) or two gate nets (differential pair, common-centroid pattern).
#pragma once

#include <string>
#include <vector>

#include "device/mos_op.hpp"
#include "layout/cell.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

enum class StackPattern {
  kInterdigitated,   ///< Symmetric interdigitation (mirrors, any device count).
  kCommonCentroid,   ///< ABBA pairing; requires exactly 2 devices with equal
                     ///< even finger counts.
};

struct StackDevice {
  std::string name = "M";
  int fingers = 2;          ///< Unit fingers of this device.
  std::string drainNet = "d";
  std::string gateNet = "g";
  double current = 0.0;     ///< |ID| [A] for electromigration bookkeeping.
};

struct StackSpec {
  std::string name = "stack";
  tech::MosType type = tech::MosType::kNmos;
  double unitWidth = 5e-6;    ///< Finger width [m].
  double drawnL = 1e-6;       ///< Channel length [m].
  std::string sourceNet = "s";  ///< Net shared by every device's source.
  std::string dummyGateNet = "s";  ///< Rail that keeps dummies off.
  std::string bulkNet = "";     ///< Net the well ties to (well cap extraction).
  std::vector<StackDevice> devices;
  StackPattern pattern = StackPattern::kInterdigitated;
  int dummiesPerSide = 1;
  bool emitWellAndSelect = true;
};

/// One gate position in the planned row. device < 0 marks a dummy finger.
struct StackFinger {
  int device = -1;
  bool currentLeftToRight = true;  ///< Source on the left side.
};

/// Per-device matching metrics of a plan.
struct StackDeviceMetrics {
  int fingers = 0;
  int internalDrainStrips = 0;
  int externalDrainStrips = 0;
  double centroidOffset = 0.0;     ///< |device centroid - stack centre|, in
                                   ///< gate pitches.
  int orientationImbalance = 0;    ///< |#left-to-right - #right-to-left|.
  device::MosGeometry junctions;   ///< Exact AD/AS/PD/PS for this device as
                                   ///< drawn in the stack.
};

struct StackPlan {
  std::vector<StackFinger> fingers;      ///< Gates, left to right.
  std::vector<std::string> stripNets;    ///< Diffusion strips (fingers.size()+1).
  std::vector<StackDeviceMetrics> metrics;  ///< Indexed like spec.devices.
  int dummyCount = 0;
};

/// Plan the finger sequence, diffusion sharing, orientations and metrics.
/// Throws std::invalid_argument for unsupported configurations (more than
/// two distinct gate nets; common-centroid constraints violated).
[[nodiscard]] StackPlan planStack(const StackSpec& spec);

/// Fill plan.metrics[*].junctions with the exact AD/AS/PD/PS each device
/// sees in the stack (shared strips are split between their neighbours).
void fillStackJunctions(const tech::DesignRules& rules, const StackSpec& spec,
                        StackPlan& plan);

struct StackInfo {
  StackPlan plan;
  geom::Coord width = 0;
  geom::Coord height = 0;
  int contactsPerStrip = 0;
};

/// Generate the stack geometry for a plan.  Ports: one metal1 port per
/// diffusion strip (net-tagged) and one per gate strap / dummy tie.
[[nodiscard]] Cell generateStack(const tech::Technology& t, const StackSpec& spec,
                                 StackInfo* infoOut = nullptr);

/// Bounding-box dimensions of the stack a spec would generate, computed
/// without emitting geometry (used by the area optimiser and the paper's
/// parasitic calculation mode).  Must agree with generateStack's bbox.
struct StackExtents {
  geom::Coord width = 0;
  geom::Coord height = 0;
};
[[nodiscard]] StackExtents stackExtents(const tech::Technology& t, const StackSpec& spec);

}  // namespace lo::layout
