// Layout cells: a bag of shapes plus named ports.
//
// A Cell is the unit the procedural generators produce and the slicing-tree
// placer composes.  Ports associate a net name with a landing rectangle on a
// routing layer; the router connects ports of the same net.
#pragma once

#include <string>
#include <vector>

#include "geom/geometry.hpp"

namespace lo::layout {

struct Port {
  std::string net;                         ///< Net this port belongs to.
  tech::Layer layer = tech::Layer::kMetal1;
  geom::Rect rect;                         ///< Landing area in cell coordinates.
};

class Cell {
 public:
  std::string name;
  geom::ShapeList shapes;
  std::vector<Port> ports;

  [[nodiscard]] geom::Rect bbox() const { return shapes.bbox(); }

  void addPort(std::string net, tech::Layer layer, const geom::Rect& rect) {
    ports.push_back({std::move(net), layer, rect});
  }

  /// Merge `child` into this cell, transformed then translated; ports are
  /// carried along through the same transform.
  void place(const Cell& child, geom::Orient orient, geom::Coord dx, geom::Coord dy) {
    shapes.merge(child.shapes, orient, dx, dy);
    for (const Port& p : child.ports) {
      ports.push_back({p.net, p.layer, geom::apply(orient, p.rect).translated(dx, dy)});
    }
  }

  /// All ports on a given net.
  [[nodiscard]] std::vector<Port> portsOn(const std::string& net) const {
    std::vector<Port> out;
    for (const Port& p : ports) {
      if (p.net == net) out.push_back(p);
    }
    return out;
  }
};

}  // namespace lo::layout
