// Procedural layout program for the folded-cascode OTA (paper Figs. 4/5),
// restructured as a constraint-driven pipeline: the topology *declares*
// its matching intent (otaPlacementConstraints) and the generic RowPlacer
// (layout/row.hpp) realises rows, symmetry and fold selection from those
// constraints.  With the default declared search the placer compiles the
// constraints into the historical Fig. 5 floorplan byte-for-byte:
//   top row    : MP3C | MP3 | MP5 | MP4 | MP4C      (PMOS, shared VDD well)
//   middle row : MP1/MP2 common-centroid stack with end dummies
//                (own floating well tied to the tail node)
//   bottom row : MN1C | MN5-MN6 interdigitated stack | MN2C
//
// Runs in two modes:
//   * parasitic calculation mode -- area optimisation picks every fold
//     count under the shape constraint, wire positions/widths are fully
//     determined and all capacitances are reported, but no geometry is kept;
//   * generation mode -- additionally emits the full mask geometry.
#pragma once

#include <cstdint>
#include <map>

#include "circuit/ota.hpp"
#include "device/folding.hpp"
#include "layout/cell.hpp"
#include "layout/constraints.hpp"
#include "layout/extract.hpp"
#include "layout/router.hpp"
#include "layout/row.hpp"
#include "layout/slicing.hpp"
#include "layout/stack.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

struct OtaLayoutOptions {
  /// Fold-parity policy: kDrainInternal realises the paper's capacitance
  /// trick ("all transistor folds are chosen such that drains are internal
  /// diffusions"); kAlternating is the ablation baseline.
  device::FoldStyle foldStyle = device::FoldStyle::kDrainInternal;
  /// When set, the bias-generator devices are drawn too: the NMOS legs join
  /// the bottom row, the PMOS legs the top row, and the bias nets are
  /// routed (their parasitics then appear in the report).
  const circuit::OtaBiasDesign* biasGenerator = nullptr;
  bool commonCentroidPair = true;   ///< false: interdigitated input pair.
  int dummiesPerSide = 1;
  ShapeConstraint shape = defaultShape();
  int maxFoldCandidates = 6;        ///< Fold alternatives offered per device.

  /// Row-placer backend.  kDeclared reproduces the legacy floorplan
  /// exactly; kSeeded searches constraint-satisfying alternatives.
  RowSearch placerSearch = RowSearch::kDeclared;
  std::uint64_t placerSeed = 1;
  int placerCandidates = 96;
  int placerThreads = 1;
  double wireCostNm = 50.0;

  [[nodiscard]] static ShapeConstraint defaultShape() {
    ShapeConstraint c;
    c.aspectRatio = 1.0;
    return c;
  }
};

/// The OTA's declared matching intent: the input pair fuses into the PAIR
/// stack (common-centroid or interdigitated per the options), MN5/MN6
/// interdigitate into SINK, the cascodes mirror about the core axis, and
/// the three diffusion rows of Fig. 5 are declared with the bias legs
/// (when `includeBias`) riding their rows' right ends.
[[nodiscard]] ConstraintSet otaPlacementConstraints(const OtaLayoutOptions& options,
                                                    bool includeBias);

/// Everything the sizing tool is told after a layout call (paper section 2:
/// transistor layout style, routing and coupling parasitics, well sizes).
struct OtaLayoutResult {
  std::map<circuit::OtaGroup, device::FoldPlan> foldPlans;
  /// Exact per-device junction geometry (AD/AS/PD/PS) as drawn; for stacked
  /// groups this includes diffusion sharing between neighbours.
  std::map<circuit::OtaGroup, device::MosGeometry> junctions;
  ParasiticReport parasitics;
  StackPlan pairPlan;               ///< Matching metrics of the input pair.
  StackPlan sinkPlan;               ///< Matching metrics of MN5/MN6.
  geom::Coord width = 0;
  geom::Coord height = 0;
  FloorplanResult floorplan;
  RowPlacement placement;           ///< Row placer outcome (rows, score).
  RoutingResult routing;
  Cell cell;                        ///< Geometry; empty in parasitic mode.
};

/// Run the OTA layout program.  `generateGeometry` selects the mode.
[[nodiscard]] OtaLayoutResult generateOtaLayout(const tech::Technology& t,
                                                const circuit::FoldedCascodeOtaDesign& design,
                                                const OtaLayoutOptions& options,
                                                bool generateGeometry);

}  // namespace lo::layout
