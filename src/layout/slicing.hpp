// Slicing-tree floorplanning with shape functions.
//
// "Area optimization is done using a simple and fast algorithm based on
// shape functions and slicing structures" (paper, section 3, citing Conway &
// Schrooten).  Every leaf module offers a list of (width, height)
// alternatives (e.g. one per legal fold count); rows and columns combine
// children's shape functions; the optimiser picks the Pareto point that best
// satisfies the shape constraint and back-propagates the choice to every
// leaf.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geom/geometry.hpp"

namespace lo::layout {

/// One (w, h) alternative of a leaf; `tag` is caller-defined (fold count).
struct ShapeOption {
  geom::Coord w = 0;
  geom::Coord h = 0;
  int tag = 0;
};

/// What the caller wants the overall outline to look like.
struct ShapeConstraint {
  std::optional<double> aspectRatio;        ///< Target width / height.
  std::optional<geom::Coord> maxWidth;      ///< Hard width cap [nm].
  std::optional<geom::Coord> maxHeight;     ///< Hard height cap [nm].
};

class SlicingNode {
 public:
  enum class Kind { kLeaf, kRow, kColumn };

  /// Leaf with shape alternatives.
  [[nodiscard]] static std::unique_ptr<SlicingNode> leaf(std::string name,
                                                         std::vector<ShapeOption> options);
  /// Children side by side (widths add, height = max).
  [[nodiscard]] static std::unique_ptr<SlicingNode> row(
      std::vector<std::unique_ptr<SlicingNode>> children, geom::Coord spacing);
  /// Children stacked (heights add, width = max).
  [[nodiscard]] static std::unique_ptr<SlicingNode> column(
      std::vector<std::unique_ptr<SlicingNode>> children, geom::Coord spacing);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<ShapeOption>& options() const { return options_; }
  [[nodiscard]] const std::vector<std::unique_ptr<SlicingNode>>& children() const {
    return children_;
  }
  [[nodiscard]] geom::Coord spacing() const { return spacing_; }

 private:
  Kind kind_ = Kind::kLeaf;
  std::string name_;
  std::vector<ShapeOption> options_;
  std::vector<std::unique_ptr<SlicingNode>> children_;
  geom::Coord spacing_ = 0;
};

/// Chosen alternative and position of one leaf.
struct PlacedLeaf {
  int tag = 0;
  geom::Rect rect;  ///< Outline in tree coordinates (origin bottom-left).
};

struct FloorplanResult {
  geom::Coord width = 0;
  geom::Coord height = 0;
  std::map<std::string, PlacedLeaf> leaves;  ///< Keyed by leaf name.

  [[nodiscard]] double areaNm2() const {
    return static_cast<double>(width) * static_cast<double>(height);
  }
};

class SlicingTree {
 public:
  explicit SlicingTree(std::unique_ptr<SlicingNode> root) : root_(std::move(root)) {}

  /// Optimise under the constraint.  Among options satisfying the caps /
  /// within 30% of the aspect target, minimum area wins; if nothing
  /// qualifies, the closest option is chosen.  Throws std::invalid_argument
  /// on an empty tree or a leaf with no options.
  [[nodiscard]] FloorplanResult optimize(const ShapeConstraint& constraint) const;

 private:
  std::unique_ptr<SlicingNode> root_;
};

}  // namespace lo::layout
