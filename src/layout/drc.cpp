#include "layout/drc.hpp"

#include <cstdlib>
#include <sstream>

namespace lo::layout {

namespace {

using geom::Rect;
using geom::Shape;
using tech::Layer;

void checkWidths(const std::vector<Shape>& shapes, Layer layer,
                 tech::Nm minWidth, const char* ruleName,
                 std::vector<DrcViolation>& out) {
  for (const Shape& s : shapes) {
    if (s.layer != layer) continue;
    if (std::min(s.rect.width(), s.rect.height()) < minWidth) {
      out.push_back({ruleName, "shape narrower than minimum width", s.rect});
    }
  }
}

void checkSpacing(const std::vector<Shape>& shapes, Layer layer, tech::Nm minSpacing,
                  const char* ruleName, std::vector<DrcViolation>& out) {
  std::vector<const Shape*> onLayer;
  for (const Shape& s : shapes) {
    if (s.layer == layer) onLayer.push_back(&s);
  }
  for (std::size_t i = 0; i < onLayer.size(); ++i) {
    for (std::size_t j = i + 1; j < onLayer.size(); ++j) {
      const Shape& a = *onLayer[i];
      const Shape& b = *onLayer[j];
      const bool sameNet = !a.net.empty() && a.net == b.net;
      if (a.rect.overlaps(b.rect)) {
        if (!a.net.empty() && !b.net.empty() && a.net != b.net) {
          out.push_back({ruleName, "short between nets " + a.net + " and " + b.net,
                         a.rect.intersected(b.rect)});
        }
        continue;  // Same-net overlap is a connection.
      }
      const geom::Coord d = a.rect.distanceTo(b.rect);
      if (d == 0) continue;  // Touching: connected (same net) or legal abutment.
      if (d < minSpacing && !sameNet) {
        out.push_back({ruleName, "spacing " + std::to_string(d) + " < minimum",
                       a.rect.merged(b.rect)});
      }
    }
  }
}

void checkCutEnclosure(const std::vector<Shape>& shapes, Layer cutLayer, tech::Nm cutSize,
                       const std::vector<std::pair<Layer, tech::Nm>>& anyOf,
                       const std::vector<std::pair<Layer, tech::Nm>>& allOf,
                       const char* ruleName, std::vector<DrcViolation>& out) {
  auto enclosedBy = [&](const Rect& cut, Layer layer, tech::Nm margin) {
    const Rect need = cut.inflated(margin);
    for (const Shape& s : shapes) {
      if (s.layer == layer && s.rect.containsRect(need)) return true;
    }
    return false;
  };
  for (const Shape& s : shapes) {
    if (s.layer != cutLayer) continue;
    if (s.rect.width() != cutSize || s.rect.height() != cutSize) {
      out.push_back({ruleName, "cut is not the fixed cut size", s.rect});
      continue;
    }
    bool any = anyOf.empty();
    for (const auto& [layer, margin] : anyOf) {
      if (enclosedBy(s.rect, layer, margin)) {
        any = true;
        break;
      }
    }
    if (!any) out.push_back({ruleName, "cut lacks bottom-layer enclosure", s.rect});
    for (const auto& [layer, margin] : allOf) {
      if (!enclosedBy(s.rect, layer, margin)) {
        out.push_back({ruleName, "cut lacks required enclosure", s.rect});
      }
    }
  }
}

void checkActiveEnclosures(const tech::Technology& t, const std::vector<Shape>& shapes,
                           std::vector<DrcViolation>& out) {
  auto enclosed = [&](const Rect& rect, Layer layer, tech::Nm margin) {
    const Rect need = rect.inflated(margin);
    for (const Shape& s : shapes) {
      if (s.layer == layer && s.rect.containsRect(need)) return true;
    }
    return false;
  };
  for (const Shape& s : shapes) {
    if (s.layer != Layer::kActive) continue;
    const bool inPplus = enclosed(s.rect, Layer::kPPlus, t.rules.selectOverActive);
    const bool inNplus = enclosed(s.rect, Layer::kNPlus, t.rules.selectOverActive);
    if (!inPplus && !inNplus) {
      out.push_back({"select.enclosure", "active without select implant", s.rect});
    }
    if (inPplus && !enclosed(s.rect, Layer::kNWell, t.rules.nwellOverActive)) {
      out.push_back({"nwell.enclosure", "P-active outside N-well", s.rect});
    }
  }
}

void checkGates(const tech::Technology& t, const std::vector<Shape>& shapes,
                std::vector<DrcViolation>& out) {
  // Gather gate regions (poly over active) and check the end-cap rule.
  std::vector<Rect> gates;
  for (const Shape& p : shapes) {
    if (p.layer != Layer::kPoly) continue;
    for (const Shape& a : shapes) {
      if (a.layer != Layer::kActive || !p.rect.overlaps(a.rect)) continue;
      const Rect gate = p.rect.intersected(a.rect);
      gates.push_back(gate);
      const tech::Nm endcap = t.rules.polyEndcap;
      // The poly must fully cross the active in one direction and stick out
      // by the end cap on both of those sides.
      const bool crossesVertically = p.rect.y0 <= a.rect.y0 - endcap &&
                                     p.rect.y1 >= a.rect.y1 + endcap;
      const bool crossesHorizontally = p.rect.x0 <= a.rect.x0 - endcap &&
                                       p.rect.x1 >= a.rect.x1 + endcap;
      if (!crossesVertically && !crossesHorizontally) {
        out.push_back({"gate.endcap", "gate poly lacks the end-cap extension", gate});
      }
    }
  }
  // No contact cut may land on a gate.
  for (const Shape& s : shapes) {
    if (s.layer != Layer::kContact) continue;
    for (const Rect& gate : gates) {
      if (s.rect.overlaps(gate)) {
        out.push_back({"contact.over_gate", "contact cut over a gate region",
                       s.rect.intersected(gate)});
      }
    }
  }
}

}  // namespace

std::vector<DrcViolation> runDrc(const tech::Technology& t, const geom::ShapeList& shapes) {
  const tech::DesignRules& r = t.rules;
  const std::vector<Shape>& all = shapes.shapes();
  std::vector<DrcViolation> out;

  checkWidths(all, Layer::kPoly, r.polyMinWidth, "poly.width", out);
  checkWidths(all, Layer::kActive, r.activeMinWidth, "active.width", out);
  checkWidths(all, Layer::kMetal1, r.metal1MinWidth, "metal1.width", out);
  checkWidths(all, Layer::kMetal2, r.metal2MinWidth, "metal2.width", out);

  checkSpacing(all, Layer::kPoly, r.polySpacing, "poly.spacing", out);
  checkSpacing(all, Layer::kActive, r.activeSpacing, "active.spacing", out);
  checkSpacing(all, Layer::kMetal1, r.metal1Spacing, "metal1.spacing", out);
  checkSpacing(all, Layer::kMetal2, r.metal2Spacing, "metal2.spacing", out);
  checkSpacing(all, Layer::kNWell, r.nwellSpacing, "nwell.spacing", out);

  checkCutEnclosure(all, Layer::kContact, r.contactSize,
                    {{Layer::kActive, r.activeOverContact},
                     {Layer::kPoly, r.polyOverContact}},
                    {{Layer::kMetal1, r.metal1OverContact}}, "contact.enclosure", out);
  checkCutEnclosure(all, Layer::kVia1, r.via1Size, {},
                    {{Layer::kMetal1, r.metal1OverVia1},
                     {Layer::kMetal2, r.metal2OverVia1}},
                    "via1.enclosure", out);

  checkActiveEnclosures(t, all, out);
  checkGates(t, all, out);
  return out;
}

namespace {

/// Do two placed leaves share a row?  Row nodes centre their children
/// vertically, so same-row items always overlap in y while distinct rows
/// are separated by at least the inter-row gap.
bool sameBand(const geom::Rect& a, const geom::Rect& b) {
  return a.y0 <= b.y1 && b.y0 <= a.y1;
}

}  // namespace

std::vector<DrcViolation> auditSymmetry(const ConstraintSet& constraints,
                                        const std::map<std::string, PlacedLeaf>& leaves,
                                        geom::Coord tolerance) {
  using geom::Coord;
  using geom::Rect;
  std::vector<DrcViolation> out;

  /// 2*axis-x of each symmetric element (doubled to stay integral), with
  /// the rect that defines its row membership.
  struct AxisMark {
    Coord axis2 = 0;
    Rect rect;
    std::string source;
  };
  std::vector<AxisMark> marks;

  auto placed = [&](const PlacementConstraint& c,
                    const std::string& name) -> const Rect* {
    auto it = leaves.find(name);
    if (it == leaves.end()) {
      out.push_back({c.describe(), "item '" + name + "' is not placed",
                     Rect{}});
      return nullptr;
    }
    return &it->second.rect;
  };

  for (const PlacementConstraint& c : constraints.all()) {
    if (c.kind == ConstraintKind::kMirrorPair && c.items.size() == 2) {
      const Rect* a = placed(c, c.items[0]);
      const Rect* b = placed(c, c.items[1]);
      if (!a || !b) continue;
      if (!sameBand(*a, *b)) {
        out.push_back({"symmetry.mirror",
                       c.describe() + ": items sit in different rows", a->merged(*b)});
        continue;
      }
      if (std::abs(a->width() - b->width()) > tolerance ||
          std::abs(a->y0 - b->y0) > tolerance || std::abs(a->y1 - b->y1) > tolerance) {
        out.push_back({"symmetry.mirror",
                       c.describe() + ": outlines differ beyond tolerance",
                       a->merged(*b)});
        continue;
      }
      // Both orderings of the pair about the common axis agree once the
      // widths match; record the midpoint.
      marks.push_back({a->x0 + b->x1, a->merged(*b), c.describe()});
    } else if (c.kind == ConstraintKind::kSymmetryAxis) {
      for (const std::string& name : c.items) {
        const Rect* r = placed(c, name);
        if (!r) continue;
        marks.push_back({r->x0 + r->x1, *r, c.describe() + " item " + name});
      }
    }
  }

  // Every symmetric element in one row must agree on the axis.
  for (std::size_t i = 0; i < marks.size(); ++i) {
    for (std::size_t j = i + 1; j < marks.size(); ++j) {
      if (!sameBand(marks[i].rect, marks[j].rect)) continue;
      if (std::abs(marks[i].axis2 - marks[j].axis2) > 2 * tolerance) {
        out.push_back({"symmetry.axis",
                       marks[i].source + " and " + marks[j].source +
                           " disagree on the symmetry axis by " +
                           std::to_string(std::abs(marks[i].axis2 - marks[j].axis2) / 2) +
                           " nm",
                       marks[i].rect.merged(marks[j].rect)});
      }
    }
  }
  return out;
}

std::vector<DrcViolation> runDrc(const tech::Technology& t, const geom::ShapeList& shapes,
                                 const ConstraintSet& constraints,
                                 const std::map<std::string, PlacedLeaf>& leaves) {
  std::vector<DrcViolation> out = runDrc(t, shapes);
  const std::vector<DrcViolation> sym = auditSymmetry(constraints, leaves, t.rules.grid);
  out.insert(out.end(), sym.begin(), sym.end());
  return out;
}

std::string formatViolations(const std::vector<DrcViolation>& violations) {
  std::ostringstream os;
  for (const DrcViolation& v : violations) {
    os << v.rule << ": " << v.detail << " @ (" << v.where.x0 << "," << v.where.y0 << ")-("
       << v.where.x1 << "," << v.where.y1 << ")\n";
  }
  return os.str();
}

}  // namespace lo::layout
