#include "layout/drc.hpp"

#include <sstream>

namespace lo::layout {

namespace {

using geom::Rect;
using geom::Shape;
using tech::Layer;

void checkWidths(const std::vector<Shape>& shapes, Layer layer,
                 tech::Nm minWidth, const char* ruleName,
                 std::vector<DrcViolation>& out) {
  for (const Shape& s : shapes) {
    if (s.layer != layer) continue;
    if (std::min(s.rect.width(), s.rect.height()) < minWidth) {
      out.push_back({ruleName, "shape narrower than minimum width", s.rect});
    }
  }
}

void checkSpacing(const std::vector<Shape>& shapes, Layer layer, tech::Nm minSpacing,
                  const char* ruleName, std::vector<DrcViolation>& out) {
  std::vector<const Shape*> onLayer;
  for (const Shape& s : shapes) {
    if (s.layer == layer) onLayer.push_back(&s);
  }
  for (std::size_t i = 0; i < onLayer.size(); ++i) {
    for (std::size_t j = i + 1; j < onLayer.size(); ++j) {
      const Shape& a = *onLayer[i];
      const Shape& b = *onLayer[j];
      const bool sameNet = !a.net.empty() && a.net == b.net;
      if (a.rect.overlaps(b.rect)) {
        if (!a.net.empty() && !b.net.empty() && a.net != b.net) {
          out.push_back({ruleName, "short between nets " + a.net + " and " + b.net,
                         a.rect.intersected(b.rect)});
        }
        continue;  // Same-net overlap is a connection.
      }
      const geom::Coord d = a.rect.distanceTo(b.rect);
      if (d == 0) continue;  // Touching: connected (same net) or legal abutment.
      if (d < minSpacing && !sameNet) {
        out.push_back({ruleName, "spacing " + std::to_string(d) + " < minimum",
                       a.rect.merged(b.rect)});
      }
    }
  }
}

void checkCutEnclosure(const std::vector<Shape>& shapes, Layer cutLayer, tech::Nm cutSize,
                       const std::vector<std::pair<Layer, tech::Nm>>& anyOf,
                       const std::vector<std::pair<Layer, tech::Nm>>& allOf,
                       const char* ruleName, std::vector<DrcViolation>& out) {
  auto enclosedBy = [&](const Rect& cut, Layer layer, tech::Nm margin) {
    const Rect need = cut.inflated(margin);
    for (const Shape& s : shapes) {
      if (s.layer == layer && s.rect.containsRect(need)) return true;
    }
    return false;
  };
  for (const Shape& s : shapes) {
    if (s.layer != cutLayer) continue;
    if (s.rect.width() != cutSize || s.rect.height() != cutSize) {
      out.push_back({ruleName, "cut is not the fixed cut size", s.rect});
      continue;
    }
    bool any = anyOf.empty();
    for (const auto& [layer, margin] : anyOf) {
      if (enclosedBy(s.rect, layer, margin)) {
        any = true;
        break;
      }
    }
    if (!any) out.push_back({ruleName, "cut lacks bottom-layer enclosure", s.rect});
    for (const auto& [layer, margin] : allOf) {
      if (!enclosedBy(s.rect, layer, margin)) {
        out.push_back({ruleName, "cut lacks required enclosure", s.rect});
      }
    }
  }
}

void checkActiveEnclosures(const tech::Technology& t, const std::vector<Shape>& shapes,
                           std::vector<DrcViolation>& out) {
  auto enclosed = [&](const Rect& rect, Layer layer, tech::Nm margin) {
    const Rect need = rect.inflated(margin);
    for (const Shape& s : shapes) {
      if (s.layer == layer && s.rect.containsRect(need)) return true;
    }
    return false;
  };
  for (const Shape& s : shapes) {
    if (s.layer != Layer::kActive) continue;
    const bool inPplus = enclosed(s.rect, Layer::kPPlus, t.rules.selectOverActive);
    const bool inNplus = enclosed(s.rect, Layer::kNPlus, t.rules.selectOverActive);
    if (!inPplus && !inNplus) {
      out.push_back({"select.enclosure", "active without select implant", s.rect});
    }
    if (inPplus && !enclosed(s.rect, Layer::kNWell, t.rules.nwellOverActive)) {
      out.push_back({"nwell.enclosure", "P-active outside N-well", s.rect});
    }
  }
}

void checkGates(const tech::Technology& t, const std::vector<Shape>& shapes,
                std::vector<DrcViolation>& out) {
  // Gather gate regions (poly over active) and check the end-cap rule.
  std::vector<Rect> gates;
  for (const Shape& p : shapes) {
    if (p.layer != Layer::kPoly) continue;
    for (const Shape& a : shapes) {
      if (a.layer != Layer::kActive || !p.rect.overlaps(a.rect)) continue;
      const Rect gate = p.rect.intersected(a.rect);
      gates.push_back(gate);
      const tech::Nm endcap = t.rules.polyEndcap;
      // The poly must fully cross the active in one direction and stick out
      // by the end cap on both of those sides.
      const bool crossesVertically = p.rect.y0 <= a.rect.y0 - endcap &&
                                     p.rect.y1 >= a.rect.y1 + endcap;
      const bool crossesHorizontally = p.rect.x0 <= a.rect.x0 - endcap &&
                                       p.rect.x1 >= a.rect.x1 + endcap;
      if (!crossesVertically && !crossesHorizontally) {
        out.push_back({"gate.endcap", "gate poly lacks the end-cap extension", gate});
      }
    }
  }
  // No contact cut may land on a gate.
  for (const Shape& s : shapes) {
    if (s.layer != Layer::kContact) continue;
    for (const Rect& gate : gates) {
      if (s.rect.overlaps(gate)) {
        out.push_back({"contact.over_gate", "contact cut over a gate region",
                       s.rect.intersected(gate)});
      }
    }
  }
}

}  // namespace

std::vector<DrcViolation> runDrc(const tech::Technology& t, const geom::ShapeList& shapes) {
  const tech::DesignRules& r = t.rules;
  const std::vector<Shape>& all = shapes.shapes();
  std::vector<DrcViolation> out;

  checkWidths(all, Layer::kPoly, r.polyMinWidth, "poly.width", out);
  checkWidths(all, Layer::kActive, r.activeMinWidth, "active.width", out);
  checkWidths(all, Layer::kMetal1, r.metal1MinWidth, "metal1.width", out);
  checkWidths(all, Layer::kMetal2, r.metal2MinWidth, "metal2.width", out);

  checkSpacing(all, Layer::kPoly, r.polySpacing, "poly.spacing", out);
  checkSpacing(all, Layer::kActive, r.activeSpacing, "active.spacing", out);
  checkSpacing(all, Layer::kMetal1, r.metal1Spacing, "metal1.spacing", out);
  checkSpacing(all, Layer::kMetal2, r.metal2Spacing, "metal2.spacing", out);
  checkSpacing(all, Layer::kNWell, r.nwellSpacing, "nwell.spacing", out);

  checkCutEnclosure(all, Layer::kContact, r.contactSize,
                    {{Layer::kActive, r.activeOverContact},
                     {Layer::kPoly, r.polyOverContact}},
                    {{Layer::kMetal1, r.metal1OverContact}}, "contact.enclosure", out);
  checkCutEnclosure(all, Layer::kVia1, r.via1Size, {},
                    {{Layer::kMetal1, r.metal1OverVia1},
                     {Layer::kMetal2, r.metal2OverVia1}},
                    "via1.enclosure", out);

  checkActiveEnclosures(t, all, out);
  checkGates(t, all, out);
  return out;
}

std::string formatViolations(const std::vector<DrcViolation>& violations) {
  std::ostringstream os;
  for (const DrcViolation& v : violations) {
    os << v.rule << ": " << v.detail << " @ (" << v.where.x0 << "," << v.where.y0 << ")-("
       << v.where.x1 << "," << v.where.y1 << ")\n";
  }
  return os.str();
}

}  // namespace lo::layout
