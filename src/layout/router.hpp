// Channel router with reliability-driven wire sizing.
//
// Connects same-net ports of a placed cell using a two-layer discipline:
//   * horizontal metal1 trunks confined to routing channels (the horizontal
//     bands between cell rows, plus bands above and below the core), and
//   * vertical metal2 branches from every port, which may legally cross any
//     row because rows contain no metal2.
// Via stacks join port metal -> branch and branch -> trunk.  Tracks within
// a channel are allocated greedily; nets whose x spans overlap get distinct
// tracks.  Wire widths follow the electromigration rule ("DC current
// information is used to adjust ... routing wires in order to respect the
// maximum current density", paper section 3), and every wire's area/fringe
// capacitance plus trunk-to-trunk coupling is reported for the parasitic
// calculation mode.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "layout/cell.hpp"
#include "tech/technology.hpp"

namespace lo::layout {

/// Per-net routing request: which nets to route and their DC current.
struct NetRequest {
  std::string net;
  double current = 0.0;  ///< |DC current| the trunk carries [A].
};

/// Horizontal band (y0, y1) where trunks may be placed.
struct Channel {
  geom::Coord y0 = 0;
  geom::Coord y1 = 0;
};

struct RoutedNet {
  std::string net;
  tech::Nm trunkWidth = 0;
  double trunkLength = 0.0;    ///< [m]
  double branchLength = 0.0;   ///< Total vertical branch length [m].
  double capToGround = 0.0;    ///< Area + fringe capacitance [F].
  double resistanceOhm = 0.0;  ///< Trunk + worst branch sheet resistance
                               ///< plus via stacks (series path estimate).
  int viaCount = 0;
};

struct RoutingResult {
  std::vector<RoutedNet> nets;
  /// Coupling capacitance between trunks on adjacent tracks [F], keyed by
  /// the (lexicographically ordered) net-name pair.
  std::map<std::pair<std::string, std::string>, double> coupling;
  geom::ShapeList wires;  ///< Trunk/branch/via geometry (generation mode).

  [[nodiscard]] const RoutedNet* find(const std::string& net) const {
    for (const RoutedNet& n : nets) {
      if (n.net == net) return &n;
    }
    return nullptr;
  }
  /// Ground capacitance plus every coupling involving `net`.
  [[nodiscard]] double totalCapOn(const std::string& net) const;
};

/// Route the given nets over `cell`'s ports.  Nets with fewer than two
/// ports are skipped.  `channels` lists the bands trunks may occupy; when
/// empty, trunks float freely at the mean port height (fine for cells whose
/// port rows do not collide with wiring).  When `emitGeometry` is false only
/// the electrical summary is produced (the paper's parasitic mode).
[[nodiscard]] RoutingResult routeCell(const tech::Technology& t, const Cell& cell,
                                      const std::vector<NetRequest>& nets,
                                      const std::vector<Channel>& channels,
                                      bool emitGeometry);

/// Convenience overload with no channel constraints.
[[nodiscard]] inline RoutingResult routeCell(const tech::Technology& t, const Cell& cell,
                                             const std::vector<NetRequest>& nets,
                                             bool emitGeometry) {
  return routeCell(t, cell, nets, {}, emitGeometry);
}

}  // namespace lo::layout
