#include "layout/ota_layout.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "layout/mos_motif.hpp"
#include "tech/units.hpp"

namespace lo::layout {

namespace {

using circuit::FoldedCascodeOtaDesign;
using circuit::OtaGroup;
using device::FoldPlan;
using device::FoldStyle;
using geom::Coord;
using geom::Rect;

/// Nets of one motif device instance in the OTA.
struct MotifNets {
  std::string drain, gate, source, bulk;
};

struct MotifLeaf {
  std::string name;
  OtaGroup group;
  tech::MosType type;
  MotifNets nets;
};

/// Fig. 5 floorplan: the motif leaves in row order.
const MotifLeaf kTopRow[] = {
    {"MP3C", OtaGroup::kPCascode, tech::MosType::kPmos, {"y1", "vc3", "z1", "vdd"}},
    {"MP3", OtaGroup::kPSource, tech::MosType::kPmos, {"z1", "y1", "vdd", "vdd"}},
    {"MP5", OtaGroup::kTail, tech::MosType::kPmos, {"tail", "vp1", "vdd", "vdd"}},
    {"MP4", OtaGroup::kPSource, tech::MosType::kPmos, {"z2", "y1", "vdd", "vdd"}},
    {"MP4C", OtaGroup::kPCascode, tech::MosType::kPmos, {"out", "vc3", "z2", "vdd"}},
};
const MotifLeaf kBottomRow[] = {
    {"MN1C", OtaGroup::kNCascode, tech::MosType::kNmos, {"y1", "vc1", "x1", "gnd"}},
    // (the sink stack MN5/MN6 sits between these two)
    {"MN2C", OtaGroup::kNCascode, tech::MosType::kNmos, {"out", "vc1", "x2", "gnd"}},
};

/// Bias-generator legs (drawn only when options.biasGenerator is set).
struct BiasLeaf {
  const char* name;
  tech::MosType type;
  MotifNets nets;
  const device::MosGeometry circuit::OtaBiasDesign::* geo;
};
const BiasLeaf kBiasNmos[] = {
    {"MNB1", tech::MosType::kNmos, {"vbn", "vbn", "gnd", "gnd"},
     &circuit::OtaBiasDesign::nDiode},
    {"MNB2", tech::MosType::kNmos, {"vp1", "vbn", "gnd", "gnd"},
     &circuit::OtaBiasDesign::nDiode},
    {"MNB3", tech::MosType::kNmos, {"vc1", "vc1", "gnd", "gnd"},
     &circuit::OtaBiasDesign::nCascDiode},
    {"MNB5", tech::MosType::kNmos, {"vc3", "vbn", "gnd", "gnd"},
     &circuit::OtaBiasDesign::nDiode},
};
const BiasLeaf kBiasPmos[] = {
    {"MPB1", tech::MosType::kPmos, {"vp1", "vp1", "vdd", "vdd"},
     &circuit::OtaBiasDesign::pDiode},
    {"MPB4", tech::MosType::kPmos, {"vc1", "vp1", "vdd", "vdd"},
     &circuit::OtaBiasDesign::pDiode},
    {"MPB2", tech::MosType::kPmos, {"vc3", "vc3", "vdd", "vdd"},
     &circuit::OtaBiasDesign::pCascDiode},
};

/// Even fold candidates whose fingers stay above the minimum active width.
std::vector<int> foldCandidates(const tech::Technology& t, double w, FoldStyle style,
                                int maxCandidates) {
  const double minW = nmToMeters(t.rules.activeMinWidth);
  std::vector<int> out;
  const int step = style == FoldStyle::kDrainInternal ? 2 : 1;
  const int start = style == FoldStyle::kDrainInternal ? 2 : 1;
  for (int nf = start; static_cast<int>(out.size()) < maxCandidates; nf += step) {
    if (w / nf < minW) break;
    out.push_back(nf);
  }
  if (out.empty()) out.push_back(start);
  return out;
}

std::vector<ShapeOption> motifOptions(const tech::Technology& t, double w, double l,
                                      FoldStyle style, double current, int maxCandidates) {
  std::vector<ShapeOption> opts;
  for (int nf : foldCandidates(t, w, style, maxCandidates)) {
    const FoldPlan plan = device::planFoldsExact(t.rules, w, nf, style);
    const MosMotifInfo info = motifShape(t, plan, l, current);
    opts.push_back({info.width, info.height, nf});
  }
  return opts;
}

StackSpec pairStackSpec(const tech::Technology& t, const FoldedCascodeOtaDesign& d,
                        const OtaLayoutOptions& opt, int fingersPerDevice) {
  StackSpec s;
  s.name = "PAIR";
  s.type = tech::MosType::kPmos;
  s.unitWidth = d.inputPair.w / fingersPerDevice;
  s.drawnL = d.inputPair.l;
  s.sourceNet = "tail";
  s.dummyGateNet = "vdd";  // PMOS dummies held off at VDD.
  s.bulkNet = "tail";      // Floating well rides the tail node.
  s.devices = {{"MP1", fingersPerDevice, "x1", "inp", d.tailCurrent / 2},
               {"MP2", fingersPerDevice, "x2", "inn", d.tailCurrent / 2}};
  s.pattern = opt.commonCentroidPair ? StackPattern::kCommonCentroid
                                     : StackPattern::kInterdigitated;
  s.dummiesPerSide = opt.dummiesPerSide;
  s.emitWellAndSelect = false;
  (void)t;
  return s;
}

StackSpec sinkStackSpec(const tech::Technology& t, const FoldedCascodeOtaDesign& d,
                        const OtaLayoutOptions& opt, int fingersPerDevice) {
  StackSpec s;
  s.name = "SINK";
  s.type = tech::MosType::kNmos;
  s.unitWidth = d.sink.w / fingersPerDevice;
  s.drawnL = d.sink.l;
  s.sourceNet = "gnd";
  s.dummyGateNet = "gnd";
  s.devices = {{"MN5", fingersPerDevice, "x1", "vbn", d.sinkCurrent()},
               {"MN6", fingersPerDevice, "x2", "vbn", d.sinkCurrent()}};
  s.pattern = StackPattern::kInterdigitated;
  s.dummiesPerSide = opt.dummiesPerSide;
  s.emitWellAndSelect = false;
  (void)t;
  return s;
}

std::vector<ShapeOption> stackOptions(const tech::Technology& t,
                                      const FoldedCascodeOtaDesign& d,
                                      const OtaLayoutOptions& opt, bool isPair,
                                      int maxCandidates) {
  const double w = isPair ? d.inputPair.w : d.sink.w;
  std::vector<ShapeOption> opts;
  for (int nf : foldCandidates(t, w, FoldStyle::kDrainInternal, maxCandidates)) {
    const StackSpec spec = isPair ? pairStackSpec(t, d, opt, nf) : sinkStackSpec(t, d, opt, nf);
    const StackExtents e = stackExtents(t, spec);
    opts.push_back({e.width, e.height, nf});
  }
  return opts;
}

/// Build the slicing tree; `fixedTags` (when non-null) restricts every leaf
/// to its already-chosen alternative (symmetry-enforcement second pass).
SlicingTree buildTree(const tech::Technology& t, const FoldedCascodeOtaDesign& d,
                      const OtaLayoutOptions& opt,
                      const std::map<std::string, int>* fixedTags) {
  const Coord rowGap = t.rules.activeSpacing;
  auto restrict = [&](const std::string& name, std::vector<ShapeOption> opts) {
    if (fixedTags) {
      const int tag = fixedTags->at(name);
      opts.erase(std::remove_if(opts.begin(), opts.end(),
                                [&](const ShapeOption& o) { return o.tag != tag; }),
                 opts.end());
    }
    return SlicingNode::leaf(name, std::move(opts));
  };

  auto groupGeom = [&](OtaGroup g) -> const device::MosGeometry& { return d.geometry(g); };
  auto motifLeaf = [&](const MotifLeaf& m) {
    const device::MosGeometry& geo = groupGeom(m.group);
    return restrict(m.name, motifOptions(t, geo.w, geo.l, opt.foldStyle,
                                         otaGroupCurrent(d, m.group), opt.maxFoldCandidates));
  };

  auto biasLeaf = [&](const BiasLeaf& b) {
    const device::MosGeometry& geo = opt.biasGenerator->*(b.geo);
    // Bias devices are small: a single fold is enough.
    const device::FoldPlan plan =
        device::planFoldsExact(t.rules, geo.w, 1, device::FoldStyle::kAlternating);
    const MosMotifInfo info = motifShape(t, plan, geo.l, opt.biasGenerator->biasCurrent);
    return restrict(b.name, {{info.width, info.height, 1}});
  };

  std::vector<std::unique_ptr<SlicingNode>> top;
  for (const MotifLeaf& m : kTopRow) top.push_back(motifLeaf(m));
  if (opt.biasGenerator) {
    for (const BiasLeaf& b : kBiasPmos) top.push_back(biasLeaf(b));
  }

  std::vector<std::unique_ptr<SlicingNode>> bottom;
  bottom.push_back(motifLeaf(kBottomRow[0]));
  bottom.push_back(restrict("SINK", stackOptions(t, d, opt, false, opt.maxFoldCandidates)));
  bottom.push_back(motifLeaf(kBottomRow[1]));
  if (opt.biasGenerator) {
    for (const BiasLeaf& b : kBiasNmos) bottom.push_back(biasLeaf(b));
  }

  auto pairLeaf = restrict("PAIR", stackOptions(t, d, opt, true, opt.maxFoldCandidates));

  // Vertical gaps: generous spacing where N-wells of different nets meet,
  // plus room for the routing channels' trunk tracks.
  const Coord routingAllowance = 16000;
  const Coord wellGap =
      t.rules.nwellSpacing + 2 * t.rules.nwellOverActive + routingAllowance;
  const Coord mixGap =
      t.rules.activeToWell + t.rules.nwellOverActive + rowGap + routingAllowance;

  std::vector<std::unique_ptr<SlicingNode>> pmosRows;
  pmosRows.push_back(std::move(pairLeaf));
  pmosRows.push_back(SlicingNode::row(std::move(top), rowGap));
  auto pmosColumn = SlicingNode::column(std::move(pmosRows), wellGap);

  std::vector<std::unique_ptr<SlicingNode>> rows;
  rows.push_back(SlicingNode::row(std::move(bottom), rowGap));
  rows.push_back(std::move(pmosColumn));
  return SlicingTree(SlicingNode::column(std::move(rows), mixGap));
}

/// Symmetric-device equalisation: matched devices must get the same fold.
std::map<std::string, int> symmetrize(const FloorplanResult& fp) {
  std::map<std::string, int> tags;
  for (const auto& [name, leaf] : fp.leaves) tags[name] = leaf.tag;
  tags["MP4C"] = tags["MP3C"];
  tags["MP4"] = tags["MP3"];
  tags["MN2C"] = tags["MN1C"];
  return tags;
}

}  // namespace

OtaLayoutResult generateOtaLayout(const tech::Technology& t,
                                  const FoldedCascodeOtaDesign& design,
                                  const OtaLayoutOptions& options, bool generateGeometry) {
  // --- Pass 1: free area optimisation; pass 2: symmetry-locked. ---
  const FloorplanResult fp1 = buildTree(t, design, options, nullptr).optimize(options.shape);
  const std::map<std::string, int> tags = symmetrize(fp1);
  const FloorplanResult fp = buildTree(t, design, options, &tags).optimize(options.shape);

  OtaLayoutResult result;
  result.floorplan = fp;
  result.width = fp.width;
  result.height = fp.height;

  // --- Fold plans and junction geometry per matched group. ---
  auto motifPlan = [&](OtaGroup g, const std::string& leafName) {
    const device::MosGeometry& geo = design.geometry(g);
    const FoldPlan plan =
        device::planFoldsExact(t.rules, geo.w, tags.at(leafName), options.foldStyle);
    result.foldPlans[g] = plan;
    device::MosGeometry j = geo;
    device::applyDiffusionGeometry(t.rules, plan, j);
    result.junctions[g] = j;
  };
  motifPlan(OtaGroup::kTail, "MP5");
  motifPlan(OtaGroup::kPSource, "MP3");
  motifPlan(OtaGroup::kPCascode, "MP3C");
  motifPlan(OtaGroup::kNCascode, "MN1C");

  const StackSpec pairSpec = pairStackSpec(t, design, options, tags.at("PAIR"));
  const StackSpec sinkSpec = sinkStackSpec(t, design, options, tags.at("SINK"));
  result.pairPlan = planStack(pairSpec);
  result.sinkPlan = planStack(sinkSpec);
  fillStackJunctions(t.rules, pairSpec, result.pairPlan);
  fillStackJunctions(t.rules, sinkSpec, result.sinkPlan);
  result.junctions[OtaGroup::kInputPair] = result.pairPlan.metrics[0].junctions;
  result.junctions[OtaGroup::kSink] = result.sinkPlan.metrics[0].junctions;
  {
    FoldPlan pp;
    pp.nf = tags.at("PAIR");
    pp.foldWidth = pairSpec.unitWidth;
    pp.totalWidth = pp.foldWidth * pp.nf;
    pp.drainInternal = true;
    result.foldPlans[OtaGroup::kInputPair] = pp;
    FoldPlan sp = pp;
    sp.nf = tags.at("SINK");
    sp.foldWidth = sinkSpec.unitWidth;
    sp.totalWidth = sp.foldWidth * sp.nf;
    result.foldPlans[OtaGroup::kSink] = sp;
  }

  // --- Assemble the cell (ports are needed even in parasitic mode). ---
  Cell assembly;
  assembly.name = "OTA";
  auto placeChild = [&](const Cell& child, const Rect& where) {
    const Rect box = child.bbox();
    assembly.place(child, geom::Orient::kR0, where.x0 - box.x0, where.y0 - box.y0);
  };

  std::vector<Rect> pmosActives, nmosActives;
  auto trackActive = [&](const Cell& child, const Rect& where, tech::MosType type) {
    const Rect box = child.bbox();
    const Rect act = child.shapes.bbox(tech::Layer::kActive)
                         .translated(where.x0 - box.x0, where.y0 - box.y0);
    (type == tech::MosType::kPmos ? pmosActives : nmosActives).push_back(act);
  };

  for (const MotifLeaf& m : kTopRow) {
    MosMotifSpec spec;
    spec.name = m.name;
    spec.type = m.type;
    spec.plan = result.foldPlans[m.group];
    spec.drawnL = design.geometry(m.group).l;
    spec.terminalCurrent = otaGroupCurrent(design, m.group);
    spec.drainNet = m.nets.drain;
    spec.gateNet = m.nets.gate;
    spec.sourceNet = m.nets.source;
    spec.bulkNet = m.nets.bulk;
    spec.emitWellAndSelect = false;
    const Cell cell = generateMosMotif(t, spec);
    placeChild(cell, fp.leaves.at(m.name).rect);
    trackActive(cell, fp.leaves.at(m.name).rect, m.type);
  }
  for (const MotifLeaf& m : kBottomRow) {
    MosMotifSpec spec;
    spec.name = m.name;
    spec.type = m.type;
    spec.plan = result.foldPlans[OtaGroup::kNCascode];
    spec.drawnL = design.nCascode.l;
    spec.terminalCurrent = otaGroupCurrent(design, OtaGroup::kNCascode);
    spec.drainNet = m.nets.drain;
    spec.gateNet = m.nets.gate;
    spec.sourceNet = m.nets.source;
    spec.bulkNet = m.nets.bulk;
    spec.emitWellAndSelect = false;
    const Cell cell = generateMosMotif(t, spec);
    placeChild(cell, fp.leaves.at(m.name).rect);
    trackActive(cell, fp.leaves.at(m.name).rect, m.type);
  }
  {
    const Cell pairCell = generateStack(t, pairSpec);
    placeChild(pairCell, fp.leaves.at("PAIR").rect);
    trackActive(pairCell, fp.leaves.at("PAIR").rect, tech::MosType::kPmos);
    const Cell sinkCell = generateStack(t, sinkSpec);
    placeChild(sinkCell, fp.leaves.at("SINK").rect);
    trackActive(sinkCell, fp.leaves.at("SINK").rect, tech::MosType::kNmos);
  }
  if (options.biasGenerator) {
    auto placeBias = [&](const BiasLeaf& b) {
      const device::MosGeometry& geo = options.biasGenerator->*(b.geo);
      MosMotifSpec spec;
      spec.name = b.name;
      spec.type = b.type;
      spec.plan = device::planFoldsExact(t.rules, geo.w, 1, device::FoldStyle::kAlternating);
      spec.drawnL = geo.l;
      spec.terminalCurrent = options.biasGenerator->biasCurrent;
      spec.drainNet = b.nets.drain;
      spec.gateNet = b.nets.gate;
      spec.sourceNet = b.nets.source;
      spec.bulkNet = b.nets.bulk;
      spec.emitWellAndSelect = false;
      const Cell cell = generateMosMotif(t, spec);
      placeChild(cell, fp.leaves.at(b.name).rect);
      trackActive(cell, fp.leaves.at(b.name).rect, b.type);
    };
    for (const BiasLeaf& b : kBiasNmos) placeBias(b);
    for (const BiasLeaf& b : kBiasPmos) placeBias(b);
  }

  // --- Merged wells and selects per row ("exact well sizes"). ---
  geom::ShapeList wellShapes;
  {
    // Top PMOS row shares one VDD well; the pair has its own floating well.
    Rect topWell, pairWell;
    bool haveTop = false, havePair = false;
    const Coord pairTopY = fp.leaves.at("PAIR").rect.y1;
    for (const Rect& act : pmosActives) {
      // The pair row sits below the top row in the floorplan.
      if (act.y0 >= pairTopY) {
        topWell = haveTop ? topWell.merged(act) : act;
        haveTop = true;
      } else {
        pairWell = havePair ? pairWell.merged(act) : act;
        havePair = true;
      }
    }
    if (haveTop) {
      wellShapes.add(tech::Layer::kNWell, topWell.inflated(t.rules.nwellOverActive), "vdd");
      wellShapes.add(tech::Layer::kPPlus, topWell.inflated(t.rules.selectOverActive));
    }
    if (havePair) {
      wellShapes.add(tech::Layer::kNWell, pairWell.inflated(t.rules.nwellOverActive), "tail");
      wellShapes.add(tech::Layer::kPPlus, pairWell.inflated(t.rules.selectOverActive));
    }
    Rect nmosAll;
    bool haveN = false;
    for (const Rect& act : nmosActives) {
      nmosAll = haveN ? nmosAll.merged(act) : act;
      haveN = true;
    }
    if (haveN) {
      wellShapes.add(tech::Layer::kNPlus, nmosAll.inflated(t.rules.selectOverActive));
    }
  }

  // --- Routing channels: the bands between rows, plus above and below. ---
  std::vector<Channel> channels;
  {
    // Row y-intervals from the placed leaves.
    auto rowBand = [&](std::initializer_list<const char*> names) {
      Coord lo = std::numeric_limits<Coord>::max(), hi = std::numeric_limits<Coord>::min();
      for (const char* n : names) {
        const Rect& rect = fp.leaves.at(n).rect;
        lo = std::min(lo, rect.y0);
        hi = std::max(hi, rect.y1);
      }
      return std::make_pair(lo, hi);
    };
    const auto bot = rowBand({"MN1C", "SINK", "MN2C"});
    const auto mid = rowBand({"PAIR"});
    const auto top = rowBand({"MP3C", "MP3", "MP5", "MP4", "MP4C"});
    // Outer channels host every trunk that cannot sit between rows; with
    // the bias generator present up to ~10 tracks stack up there.
    const Coord margin = 26000;
    // Inset every channel so trunks keep the metal1 spacing rule from the
    // cell rows bounding them.
    const Coord inset = t.rules.metal1Spacing;
    channels.push_back({bot.first - margin, bot.first - inset});
    channels.push_back({bot.second + inset, mid.first - inset});
    channels.push_back({mid.second + inset, top.first - inset});
    channels.push_back({top.second + inset, top.second + margin});
  }

  // --- Routing. ---
  const double iTail = design.tailCurrent;
  const double iCasc = design.cascodeCurrent;
  const double iSink = design.sinkCurrent();
  const double iBias =
      options.biasGenerator ? options.biasGenerator->biasCurrent : 0.0;
  const std::vector<NetRequest> nets = {
      {"tail", iTail}, {"x1", iSink},  {"x2", iSink},  {"y1", iCasc},
      {"z1", iCasc},   {"z2", iCasc},  {"out", iCasc},
      {"vdd", design.supplyCurrent() + 4.0 * iBias},
      {"gnd", design.supplyCurrent() + 4.0 * iBias}, {"inp", 0.0},   {"inn", 0.0},
      {"vp1", iBias},  {"vbn", iBias}, {"vc1", iBias}, {"vc3", iBias},
  };
  result.routing = routeCell(t, assembly, nets, channels, generateGeometry);

  // --- Parasitic report (wells always included). ---
  result.parasitics = buildReport(t, result.routing, wellShapes, {"vdd"});

  if (generateGeometry) {
    assembly.shapes.merge(wellShapes, geom::Orient::kR0, 0, 0);
    assembly.shapes.merge(result.routing.wires, geom::Orient::kR0, 0, 0);
    result.cell = std::move(assembly);
    const Rect box = result.cell.bbox();
    result.width = box.width();
    result.height = box.height();
  }
  return result;
}

}  // namespace lo::layout
