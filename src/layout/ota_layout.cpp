#include "layout/ota_layout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "layout/mos_motif.hpp"
#include "tech/units.hpp"

namespace lo::layout {

namespace {

using circuit::FoldedCascodeOtaDesign;
using circuit::OtaGroup;
using device::FoldPlan;
using device::FoldStyle;
using geom::Coord;
using geom::Rect;

/// Nets of one motif device instance in the OTA.
struct MotifNets {
  std::string drain, gate, source, bulk;
};

struct MotifLeaf {
  std::string name;
  OtaGroup group;
  tech::MosType type;
  MotifNets nets;
};

/// Fig. 5 floorplan: the motif leaves in row order.
const MotifLeaf kTopRow[] = {
    {"MP3C", OtaGroup::kPCascode, tech::MosType::kPmos, {"y1", "vc3", "z1", "vdd"}},
    {"MP3", OtaGroup::kPSource, tech::MosType::kPmos, {"z1", "y1", "vdd", "vdd"}},
    {"MP5", OtaGroup::kTail, tech::MosType::kPmos, {"tail", "vp1", "vdd", "vdd"}},
    {"MP4", OtaGroup::kPSource, tech::MosType::kPmos, {"z2", "y1", "vdd", "vdd"}},
    {"MP4C", OtaGroup::kPCascode, tech::MosType::kPmos, {"out", "vc3", "z2", "vdd"}},
};
const MotifLeaf kBottomRow[] = {
    {"MN1C", OtaGroup::kNCascode, tech::MosType::kNmos, {"y1", "vc1", "x1", "gnd"}},
    // (the sink stack MN5/MN6 sits between these two)
    {"MN2C", OtaGroup::kNCascode, tech::MosType::kNmos, {"out", "vc1", "x2", "gnd"}},
};

/// Bias-generator legs (drawn only when options.biasGenerator is set).
struct BiasLeaf {
  const char* name;
  tech::MosType type;
  MotifNets nets;
  const device::MosGeometry circuit::OtaBiasDesign::* geo;
};
const BiasLeaf kBiasNmos[] = {
    {"MNB1", tech::MosType::kNmos, {"vbn", "vbn", "gnd", "gnd"},
     &circuit::OtaBiasDesign::nDiode},
    {"MNB2", tech::MosType::kNmos, {"vp1", "vbn", "gnd", "gnd"},
     &circuit::OtaBiasDesign::nDiode},
    {"MNB3", tech::MosType::kNmos, {"vc1", "vc1", "gnd", "gnd"},
     &circuit::OtaBiasDesign::nCascDiode},
    {"MNB5", tech::MosType::kNmos, {"vc3", "vbn", "gnd", "gnd"},
     &circuit::OtaBiasDesign::nDiode},
};
const BiasLeaf kBiasPmos[] = {
    {"MPB1", tech::MosType::kPmos, {"vp1", "vp1", "vdd", "vdd"},
     &circuit::OtaBiasDesign::pDiode},
    {"MPB4", tech::MosType::kPmos, {"vc1", "vp1", "vdd", "vdd"},
     &circuit::OtaBiasDesign::pDiode},
    {"MPB2", tech::MosType::kPmos, {"vc3", "vc3", "vdd", "vdd"},
     &circuit::OtaBiasDesign::pCascDiode},
};

/// Even fold candidates whose fingers stay above the minimum active width.
std::vector<int> foldCandidates(const tech::Technology& t, double w, FoldStyle style,
                                int maxCandidates) {
  const double minW = nmToMeters(t.rules.activeMinWidth);
  std::vector<int> out;
  const int step = style == FoldStyle::kDrainInternal ? 2 : 1;
  const int start = style == FoldStyle::kDrainInternal ? 2 : 1;
  for (int nf = start; static_cast<int>(out.size()) < maxCandidates; nf += step) {
    if (w / nf < minW) break;
    out.push_back(nf);
  }
  if (out.empty()) out.push_back(start);
  return out;
}

std::vector<ShapeOption> motifOptions(const tech::Technology& t, double w, double l,
                                      FoldStyle style, double current, int maxCandidates) {
  std::vector<ShapeOption> opts;
  for (int nf : foldCandidates(t, w, style, maxCandidates)) {
    const FoldPlan plan = device::planFoldsExact(t.rules, w, nf, style);
    const MosMotifInfo info = motifShape(t, plan, l, current);
    opts.push_back({info.width, info.height, nf});
  }
  return opts;
}

StackPattern patternFor(const PlacementConstraint& matching) {
  return matching.kind == ConstraintKind::kCommonCentroid ? StackPattern::kCommonCentroid
                                                          : StackPattern::kInterdigitated;
}

const PlacementConstraint& matchingOrThrow(const ConstraintSet& constraints,
                                           const std::string& group) {
  const PlacementConstraint* c = constraints.matchingFor(group);
  if (!c || c->items.size() != 2) {
    throw std::invalid_argument("OTA layout needs a two-device matching constraint for '" +
                                group + "'");
  }
  return *c;
}

/// The PAIR stack realises the input-pair matching constraint: device
/// names and pattern come from the declaration, nets from the topology.
StackSpec pairStackSpec(const FoldedCascodeOtaDesign& d, const OtaLayoutOptions& opt,
                        const PlacementConstraint& matching, int fingersPerDevice) {
  StackSpec s;
  s.name = matching.group;
  s.type = tech::MosType::kPmos;
  s.unitWidth = d.inputPair.w / fingersPerDevice;
  s.drawnL = d.inputPair.l;
  s.sourceNet = "tail";
  s.dummyGateNet = "vdd";  // PMOS dummies held off at VDD.
  s.bulkNet = "tail";      // Floating well rides the tail node.
  s.devices = {{matching.items[0], fingersPerDevice, "x1", "inp", d.tailCurrent / 2},
               {matching.items[1], fingersPerDevice, "x2", "inn", d.tailCurrent / 2}};
  s.pattern = patternFor(matching);
  s.dummiesPerSide = opt.dummiesPerSide;
  s.emitWellAndSelect = false;
  return s;
}

StackSpec sinkStackSpec(const FoldedCascodeOtaDesign& d, const OtaLayoutOptions& opt,
                        const PlacementConstraint& matching, int fingersPerDevice) {
  StackSpec s;
  s.name = matching.group;
  s.type = tech::MosType::kNmos;
  s.unitWidth = d.sink.w / fingersPerDevice;
  s.drawnL = d.sink.l;
  s.sourceNet = "gnd";
  s.dummyGateNet = "gnd";
  s.devices = {{matching.items[0], fingersPerDevice, "x1", "vbn", d.sinkCurrent()},
               {matching.items[1], fingersPerDevice, "x2", "vbn", d.sinkCurrent()}};
  s.pattern = patternFor(matching);
  s.dummiesPerSide = opt.dummiesPerSide;
  s.emitWellAndSelect = false;
  return s;
}

std::vector<ShapeOption> stackOptions(const tech::Technology& t,
                                      const FoldedCascodeOtaDesign& d,
                                      const OtaLayoutOptions& opt,
                                      const ConstraintSet& constraints, bool isPair,
                                      int maxCandidates) {
  const double w = isPair ? d.inputPair.w : d.sink.w;
  const PlacementConstraint& matching =
      matchingOrThrow(constraints, isPair ? "PAIR" : "SINK");
  std::vector<ShapeOption> opts;
  for (int nf : foldCandidates(t, w, FoldStyle::kDrainInternal, maxCandidates)) {
    const StackSpec spec = isPair ? pairStackSpec(d, opt, matching, nf)
                                  : sinkStackSpec(d, opt, matching, nf);
    const StackExtents e = stackExtents(t, spec);
    opts.push_back({e.width, e.height, nf});
  }
  return opts;
}

/// Declare the placeable items: motifs, the two matched stacks, and (when
/// drawn) the bias legs as annex riders on their rows.
std::vector<RowItem> buildItems(const tech::Technology& t,
                                const FoldedCascodeOtaDesign& design,
                                const OtaLayoutOptions& options,
                                const ConstraintSet& constraints) {
  std::vector<RowItem> items;
  auto motifItem = [&](const MotifLeaf& m) {
    const device::MosGeometry& geo = design.geometry(m.group);
    RowItem it;
    it.name = m.name;
    it.kind = m.type == tech::MosType::kPmos ? RowKind::kPmos : RowKind::kNmos;
    if (m.type == tech::MosType::kPmos) it.wellNet = m.nets.bulk;
    it.options = motifOptions(t, geo.w, geo.l, options.foldStyle,
                              otaGroupCurrent(design, m.group), options.maxFoldCandidates);
    it.nets = {m.nets.drain, m.nets.gate, m.nets.source};
    return it;
  };
  auto biasItem = [&](const BiasLeaf& b) {
    const device::MosGeometry& geo = options.biasGenerator->*(b.geo);
    // Bias devices are small: a single fold is enough.
    const device::FoldPlan plan =
        device::planFoldsExact(t.rules, geo.w, 1, device::FoldStyle::kAlternating);
    const MosMotifInfo info = motifShape(t, plan, geo.l, options.biasGenerator->biasCurrent);
    RowItem it;
    it.name = b.name;
    it.kind = b.type == tech::MosType::kPmos ? RowKind::kPmos : RowKind::kNmos;
    if (b.type == tech::MosType::kPmos) it.wellNet = b.nets.bulk;
    it.annex = true;
    it.options = {{info.width, info.height, 1}};
    it.nets = {b.nets.drain, b.nets.gate, b.nets.source};
    return it;
  };

  items.push_back(motifItem(kBottomRow[0]));
  {
    RowItem sink;
    sink.name = "SINK";
    sink.kind = RowKind::kNmos;
    sink.options = stackOptions(t, design, options, constraints, false,
                                options.maxFoldCandidates);
    sink.nets = {"x1", "x2", "vbn", "gnd"};
    items.push_back(std::move(sink));
  }
  items.push_back(motifItem(kBottomRow[1]));
  if (options.biasGenerator) {
    for (const BiasLeaf& b : kBiasNmos) items.push_back(biasItem(b));
  }
  {
    RowItem pair;
    pair.name = "PAIR";
    pair.kind = RowKind::kPmos;
    pair.wellNet = "tail";
    pair.options = stackOptions(t, design, options, constraints, true,
                                options.maxFoldCandidates);
    pair.nets = {"x1", "inp", "x2", "inn", "tail"};
    items.push_back(std::move(pair));
  }
  for (const MotifLeaf& m : kTopRow) items.push_back(motifItem(m));
  if (options.biasGenerator) {
    for (const BiasLeaf& b : kBiasPmos) items.push_back(biasItem(b));
  }
  return items;
}

}  // namespace

ConstraintSet otaPlacementConstraints(const OtaLayoutOptions& options, bool includeBias) {
  ConstraintSet cs;
  // Matched groups fuse into stack items.
  cs.add(options.commonCentroidPair
             ? PlacementConstraint::commonCentroid("PAIR", {"MP1", "MP2"})
             : PlacementConstraint::interdigitate("PAIR", {"MP1", "MP2"}));
  cs.add(PlacementConstraint::interdigitate("SINK", {"MN5", "MN6"}));
  // The cascode legs mirror about the core's vertical axis.
  cs.add(PlacementConstraint::mirrorPair("MN1C", "MN2C"));
  cs.add(PlacementConstraint::mirrorPair("MP3C", "MP4C"));
  cs.add(PlacementConstraint::mirrorPair("MP3", "MP4"));
  // Fig. 5's three diffusion rows, bottom to top; the bias legs ride the
  // right ends of the outer rows.
  std::vector<std::string> bottom = {"MN1C", "SINK", "MN2C"};
  std::vector<std::string> top = {"MP3C", "MP3", "MP5", "MP4", "MP4C"};
  if (includeBias) {
    for (const BiasLeaf& b : kBiasNmos) bottom.push_back(b.name);
    for (const BiasLeaf& b : kBiasPmos) top.push_back(b.name);
  }
  cs.add(PlacementConstraint::sameRow(std::move(bottom)));
  cs.add(PlacementConstraint::sameRow({"PAIR"}));
  cs.add(PlacementConstraint::sameRow(std::move(top)));
  // The matched stacks and the tail sit on the symmetry axis, and the
  // pair's drains want short wires down to the sink.
  cs.add(PlacementConstraint::symmetryAxis({"PAIR", "SINK", "MP5"}));
  cs.add(PlacementConstraint::proximity("PAIR", "SINK"));
  return cs;
}

OtaLayoutResult generateOtaLayout(const tech::Technology& t,
                                  const FoldedCascodeOtaDesign& design,
                                  const OtaLayoutOptions& options, bool generateGeometry) {
  // --- Constraint-driven row placement. ---
  const ConstraintSet constraints =
      otaPlacementConstraints(options, options.biasGenerator != nullptr);
  const RowPlacer placer(t, buildItems(t, design, options, constraints), constraints);
  RowPlacerOptions placerOptions;
  placerOptions.shape = options.shape;
  placerOptions.search = options.placerSearch;
  placerOptions.seed = options.placerSeed;
  placerOptions.candidates = options.placerCandidates;
  placerOptions.threads = options.placerThreads;
  placerOptions.wireCostNm = options.wireCostNm;
  const RowPlacement placement = placer.place(placerOptions);
  const FloorplanResult& fp = placement.floorplan;
  const std::map<std::string, int>& tags = placement.tags;

  OtaLayoutResult result;
  result.placement = placement;
  result.floorplan = fp;
  result.width = fp.width;
  result.height = fp.height;

  // --- Fold plans and junction geometry per matched group. ---
  auto motifPlan = [&](OtaGroup g, const std::string& leafName) {
    const device::MosGeometry& geo = design.geometry(g);
    const FoldPlan plan =
        device::planFoldsExact(t.rules, geo.w, tags.at(leafName), options.foldStyle);
    result.foldPlans[g] = plan;
    device::MosGeometry j = geo;
    device::applyDiffusionGeometry(t.rules, plan, j);
    result.junctions[g] = j;
  };
  motifPlan(OtaGroup::kTail, "MP5");
  motifPlan(OtaGroup::kPSource, "MP3");
  motifPlan(OtaGroup::kPCascode, "MP3C");
  motifPlan(OtaGroup::kNCascode, "MN1C");

  const StackSpec pairSpec =
      pairStackSpec(design, options, matchingOrThrow(constraints, "PAIR"), tags.at("PAIR"));
  const StackSpec sinkSpec =
      sinkStackSpec(design, options, matchingOrThrow(constraints, "SINK"), tags.at("SINK"));
  result.pairPlan = planStack(pairSpec);
  result.sinkPlan = planStack(sinkSpec);
  fillStackJunctions(t.rules, pairSpec, result.pairPlan);
  fillStackJunctions(t.rules, sinkSpec, result.sinkPlan);
  result.junctions[OtaGroup::kInputPair] = result.pairPlan.metrics[0].junctions;
  result.junctions[OtaGroup::kSink] = result.sinkPlan.metrics[0].junctions;
  {
    FoldPlan pp;
    pp.nf = tags.at("PAIR");
    pp.foldWidth = pairSpec.unitWidth;
    pp.totalWidth = pp.foldWidth * pp.nf;
    pp.drainInternal = true;
    result.foldPlans[OtaGroup::kInputPair] = pp;
    FoldPlan sp = pp;
    sp.nf = tags.at("SINK");
    sp.foldWidth = sinkSpec.unitWidth;
    sp.totalWidth = sp.foldWidth * sp.nf;
    result.foldPlans[OtaGroup::kSink] = sp;
  }

  // --- Assemble the cell (ports are needed even in parasitic mode). ---
  Cell assembly;
  assembly.name = "OTA";
  auto placeChild = [&](const Cell& child, const Rect& where) {
    const Rect box = child.bbox();
    assembly.place(child, geom::Orient::kR0, where.x0 - box.x0, where.y0 - box.y0);
  };

  std::vector<RowActive> actives;
  auto trackActive = [&](const Cell& child, const Rect& where, tech::MosType type,
                         const std::string& wellNet) {
    const Rect box = child.bbox();
    const Rect act = child.shapes.bbox(tech::Layer::kActive)
                         .translated(where.x0 - box.x0, where.y0 - box.y0);
    actives.push_back({type, wellNet, act});
  };

  for (const MotifLeaf& m : kTopRow) {
    MosMotifSpec spec;
    spec.name = m.name;
    spec.type = m.type;
    spec.plan = result.foldPlans[m.group];
    spec.drawnL = design.geometry(m.group).l;
    spec.terminalCurrent = otaGroupCurrent(design, m.group);
    spec.drainNet = m.nets.drain;
    spec.gateNet = m.nets.gate;
    spec.sourceNet = m.nets.source;
    spec.bulkNet = m.nets.bulk;
    spec.emitWellAndSelect = false;
    const Cell cell = generateMosMotif(t, spec);
    placeChild(cell, fp.leaves.at(m.name).rect);
    trackActive(cell, fp.leaves.at(m.name).rect, m.type, m.nets.bulk);
  }
  for (const MotifLeaf& m : kBottomRow) {
    MosMotifSpec spec;
    spec.name = m.name;
    spec.type = m.type;
    spec.plan = result.foldPlans[OtaGroup::kNCascode];
    spec.drawnL = design.nCascode.l;
    spec.terminalCurrent = otaGroupCurrent(design, OtaGroup::kNCascode);
    spec.drainNet = m.nets.drain;
    spec.gateNet = m.nets.gate;
    spec.sourceNet = m.nets.source;
    spec.bulkNet = m.nets.bulk;
    spec.emitWellAndSelect = false;
    const Cell cell = generateMosMotif(t, spec);
    placeChild(cell, fp.leaves.at(m.name).rect);
    trackActive(cell, fp.leaves.at(m.name).rect, m.type, "");
  }
  {
    const Cell pairCell = generateStack(t, pairSpec);
    placeChild(pairCell, fp.leaves.at("PAIR").rect);
    trackActive(pairCell, fp.leaves.at("PAIR").rect, tech::MosType::kPmos,
                pairSpec.bulkNet);
    const Cell sinkCell = generateStack(t, sinkSpec);
    placeChild(sinkCell, fp.leaves.at("SINK").rect);
    trackActive(sinkCell, fp.leaves.at("SINK").rect, tech::MosType::kNmos, "");
  }
  if (options.biasGenerator) {
    auto placeBias = [&](const BiasLeaf& b) {
      const device::MosGeometry& geo = options.biasGenerator->*(b.geo);
      MosMotifSpec spec;
      spec.name = b.name;
      spec.type = b.type;
      spec.plan = device::planFoldsExact(t.rules, geo.w, 1, device::FoldStyle::kAlternating);
      spec.drawnL = geo.l;
      spec.terminalCurrent = options.biasGenerator->biasCurrent;
      spec.drainNet = b.nets.drain;
      spec.gateNet = b.nets.gate;
      spec.sourceNet = b.nets.source;
      spec.bulkNet = b.nets.bulk;
      spec.emitWellAndSelect = false;
      const Cell cell = generateMosMotif(t, spec);
      placeChild(cell, fp.leaves.at(b.name).rect);
      trackActive(cell, fp.leaves.at(b.name).rect, b.type, b.nets.bulk);
    };
    for (const BiasLeaf& b : kBiasNmos) placeBias(b);
    for (const BiasLeaf& b : kBiasPmos) placeBias(b);
  }

  // --- Merged wells and selects per row ("exact well sizes"): the row
  // discipline's well sharing, grouped by declared well net. ---
  const geom::ShapeList wellShapes = mergedRowWells(t, actives);

  // --- Routing channels: the bands between rows, plus above and below.
  // Outer channels host every trunk that cannot sit between rows; with
  // the bias generator present up to ~10 tracks stack up there. ---
  const std::vector<Channel> channels = rowChannels(t, placement, 26000);

  // --- Routing. ---
  const double iTail = design.tailCurrent;
  const double iCasc = design.cascodeCurrent;
  const double iSink = design.sinkCurrent();
  const double iBias =
      options.biasGenerator ? options.biasGenerator->biasCurrent : 0.0;
  const std::vector<NetRequest> nets = {
      {"tail", iTail}, {"x1", iSink},  {"x2", iSink},  {"y1", iCasc},
      {"z1", iCasc},   {"z2", iCasc},  {"out", iCasc},
      {"vdd", design.supplyCurrent() + 4.0 * iBias},
      {"gnd", design.supplyCurrent() + 4.0 * iBias}, {"inp", 0.0},   {"inn", 0.0},
      {"vp1", iBias},  {"vbn", iBias}, {"vc1", iBias}, {"vc3", iBias},
  };
  result.routing = routeCell(t, assembly, nets, channels, generateGeometry);

  // --- Parasitic report (wells always included). ---
  result.parasitics = buildReport(t, result.routing, wellShapes, {"vdd"});

  if (generateGeometry) {
    assembly.shapes.merge(wellShapes, geom::Orient::kR0, 0, 0);
    assembly.shapes.merge(result.routing.wires, geom::Orient::kR0, 0, 0);
    result.cell = std::move(assembly);
    const Rect box = result.cell.bbox();
    result.width = box.width();
    result.height = box.height();
  }
  return result;
}

}  // namespace lo::layout
