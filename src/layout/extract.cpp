#include "layout/extract.hpp"

#include <algorithm>

#include "tech/units.hpp"

namespace lo::layout {

double wellCapOf(const tech::Technology& t, const geom::Rect& well) {
  return well.areaM2() * t.nwellCapAreaPerM2 + well.perimeterM() * t.nwellCapPerimPerM;
}

ParasiticReport buildReport(const tech::Technology& t, const RoutingResult& routing,
                            const geom::ShapeList& shapes,
                            const std::vector<std::string>& acGroundNets) {
  ParasiticReport report;
  auto isAcGround = [&](const std::string& net) {
    return net.empty() || net == "gnd" || net == "0" ||
           std::find(acGroundNets.begin(), acGroundNets.end(), net) != acGroundNets.end();
  };

  for (const RoutedNet& rn : routing.nets) {
    if (isAcGround(rn.net)) continue;
    report.nets[rn.net].routingCap += rn.capToGround;
    report.nets[rn.net].routingRes += rn.resistanceOhm;
  }
  for (const auto& [pair, cap] : routing.coupling) {
    const bool aGnd = isAcGround(pair.first), bGnd = isAcGround(pair.second);
    if (aGnd && bGnd) continue;
    if (aGnd) {
      report.nets[pair.second].routingCap += cap;  // Coupling to AC ground.
    } else if (bGnd) {
      report.nets[pair.first].routingCap += cap;
    } else {
      report.nets[pair.first].coupling[pair.second] += cap;
      report.nets[pair.second].coupling[pair.first] += cap;
    }
  }
  for (const geom::Shape& s : shapes.shapes()) {
    if (s.layer != tech::Layer::kNWell || isAcGround(s.net)) continue;
    report.nets[s.net].wellCap += wellCapOf(t, s.rect);
  }
  return report;
}

void annotateCircuit(circuit::Circuit& c, const ParasiticReport& report,
                     double minSeriesRes) {
  // First pass: decide where each net's parasitics attach.  A net with
  // appreciable routing resistance is split behind a series RPAR_ resistor
  // so its capacitors see the wire RC; cheap nets attach directly.
  std::map<std::string, circuit::NodeId> attach;
  for (const auto& [net, par] : report.nets) {
    const auto node = c.findNode(net);
    if (!node) continue;
    if (par.routingRes >= minSeriesRes) {
      const circuit::NodeId tap = c.node(net + "_rpar");
      c.addResistor("RPAR_" + net, *node, tap, par.routingRes);
      attach[net] = tap;
    } else {
      attach[net] = *node;
    }
  }
  for (const auto& [net, par] : report.nets) {
    const auto it = attach.find(net);
    if (it == attach.end()) continue;
    const double ground = par.routingCap + par.wellCap;
    if (ground > 0.0) {
      c.addCapacitor("CPAR_" + net, it->second, circuit::kGround, ground);
    }
    for (const auto& [other, cap] : par.coupling) {
      if (net >= other) continue;  // Emit each pair once.
      const auto otherAttach = attach.find(other);
      if (otherAttach == attach.end() || cap <= 0.0) continue;
      c.addCapacitor("CCPL_" + net + "_" + other, it->second, otherAttach->second,
                     cap);
    }
  }
}

}  // namespace lo::layout
