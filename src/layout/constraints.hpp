// First-class placement constraints.
//
// The 2000-era layout programs baked their matching knowledge (mirror
// pairs, common-centroid stacks, row membership) into per-topology
// generator code.  This layer lifts that knowledge out as data, the way
// ALIGN (arXiv 2008.10682) treats symmetry and matching as extracted
// constraints a generic placer satisfies: a topology *declares* its
// matching intent as a ConstraintSet and the row placer (layout/row.hpp)
// searches placements that honour it.
//
// Constraint vocabulary:
//   * MirrorPair(a, b)        -- two placed items mirror about their row's
//                                vertical symmetry axis (equal outlines,
//                                equal distance on opposite sides).
//   * CommonCentroid(S, devs) -- the devices fuse into one stack item `S`
//                                drawn in the ABBA common-centroid pattern.
//   * Interdigitate(S, devs)  -- the devices fuse into stack item `S`
//                                drawn symmetrically interdigitated.
//   * SameRow(items...)       -- the items share one diffusion row, in the
//                                given left-to-right order (declared order
//                                is the search's starting candidate).
//   * SymmetryAxis(items...)  -- each item is centred on its row's
//                                vertical symmetry axis.
//   * Proximity(a, b, w)      -- soft wirelength hint: keep a and b close;
//                                `w` scales the distance penalty.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace lo::layout {

enum class ConstraintKind {
  kMirrorPair,
  kCommonCentroid,
  kInterdigitate,
  kSameRow,
  kSymmetryAxis,
  kProximity,
};

[[nodiscard]] const char* constraintKindName(ConstraintKind kind);

struct PlacementConstraint {
  ConstraintKind kind = ConstraintKind::kSameRow;
  /// Placed-item names (all kinds) or device names (matching kinds).
  std::vector<std::string> items;
  /// Matching kinds only: the stack item the devices fuse into.
  std::string group;
  /// Proximity only: distance penalty scale.
  double weight = 1.0;

  [[nodiscard]] static PlacementConstraint mirrorPair(std::string a, std::string b);
  [[nodiscard]] static PlacementConstraint commonCentroid(std::string group,
                                                          std::vector<std::string> devices);
  [[nodiscard]] static PlacementConstraint interdigitate(std::string group,
                                                         std::vector<std::string> devices);
  [[nodiscard]] static PlacementConstraint sameRow(std::vector<std::string> items);
  [[nodiscard]] static PlacementConstraint symmetryAxis(std::vector<std::string> items);
  [[nodiscard]] static PlacementConstraint proximity(std::string a, std::string b,
                                                     double weight = 1.0);

  /// Human-readable one-liner, e.g. "mirror_pair(MP3C, MP4C)".
  [[nodiscard]] std::string describe() const;
};

class ConstraintSet {
 public:
  void add(PlacementConstraint c) { constraints_.push_back(std::move(c)); }

  [[nodiscard]] const std::vector<PlacementConstraint>& all() const { return constraints_; }
  [[nodiscard]] bool empty() const { return constraints_.empty(); }
  [[nodiscard]] std::size_t size() const { return constraints_.size(); }

  /// Constraints of one kind, in declaration order.
  [[nodiscard]] std::vector<const PlacementConstraint*> ofKind(ConstraintKind kind) const;

  /// The matching constraint (common-centroid or interdigitation) whose
  /// stack item is `group`; nullptr when the group is unconstrained.
  [[nodiscard]] const PlacementConstraint* matchingFor(const std::string& group) const;

  /// Mirror lock map: second pair member -> first.  The placer equalises
  /// the locked member's shape alternative (fold tag) with its partner's,
  /// the generalisation of the old hard-coded symmetrize() tables.
  [[nodiscard]] std::map<std::string, std::string> mirrorLocks() const;

  /// Item names mentioned by any SymmetryAxis constraint.
  [[nodiscard]] std::vector<std::string> axisItems() const;

 private:
  std::vector<PlacementConstraint> constraints_;
};

struct ConstraintViolation {
  std::string constraint;  ///< describe() of the offending constraint.
  std::string detail;
};

/// Structural validation: arity, duplicate members, one matching group per
/// device, one row / one mirror pair per item.  When `itemNames` is given,
/// additionally checks that every referenced placed item exists (matching
/// constraints reference their group; their device names live inside the
/// stack and are not placed items).  Returns every violation found.
[[nodiscard]] std::vector<ConstraintViolation> validateConstraints(
    const ConstraintSet& constraints,
    const std::vector<std::string>* itemNames = nullptr);

/// Throws std::invalid_argument listing every violation; no-op when valid.
void requireValidConstraints(const ConstraintSet& constraints,
                             const std::vector<std::string>* itemNames = nullptr);

/// Render violations for logs / exception messages.
[[nodiscard]] std::string formatConstraintViolations(
    const std::vector<ConstraintViolation>& violations);

}  // namespace lo::layout
