#include "cluster/ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "service/cache.hpp"

namespace lo::cluster {

namespace {

std::uint64_t hashOf(const std::string& text) {
  return service::ResultCache::fnv1a(text);
}

}  // namespace

ShardRing::ShardRing(int shards, int vnodesPerShard)
    : shards_(shards), vnodesPerShard_(vnodesPerShard) {
  if (shards < 1) throw std::invalid_argument("ShardRing needs >= 1 shard");
  if (vnodesPerShard < 1) {
    throw std::invalid_argument("ShardRing needs >= 1 vnode per shard");
  }
  points_.reserve(static_cast<std::size_t>(shards) *
                  static_cast<std::size_t>(vnodesPerShard));
  for (int shard = 0; shard < shards; ++shard) {
    for (int vnode = 0; vnode < vnodesPerShard; ++vnode) {
      const std::string label =
          "shard-" + std::to_string(shard) + "#" + std::to_string(vnode);
      points_.emplace_back(hashOf(label), shard);
    }
  }
  std::sort(points_.begin(), points_.end());
}

int ShardRing::addShard() {
  const int shard = shards_++;
  for (int vnode = 0; vnode < vnodesPerShard_; ++vnode) {
    const std::string label =
        "shard-" + std::to_string(shard) + "#" + std::to_string(vnode);
    points_.emplace_back(hashOf(label), shard);
  }
  // Re-sorting keeps the label->point mapping identical to a ring built
  // with this count up front: add is order-independent and deterministic.
  std::sort(points_.begin(), points_.end());
  return shard;
}

std::size_t ShardRing::startIndexFor(const std::string& key) const {
  const std::uint64_t h = hashOf(key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const std::pair<std::uint64_t, int>& p, std::uint64_t v) {
        return p.first < v;
      });
  return it == points_.end() ? 0 : static_cast<std::size_t>(it - points_.begin());
}

int ShardRing::ownerOf(const std::string& key) const {
  return points_[startIndexFor(key)].second;
}

int ShardRing::routeOf(const std::string& key,
                       const std::vector<bool>& alive) const {
  if (alive.size() != static_cast<std::size_t>(shards_)) {
    throw std::invalid_argument("alive mask size != shard count");
  }
  const std::size_t start = startIndexFor(key);
  for (std::size_t step = 0; step < points_.size(); ++step) {
    const int shard = points_[(start + step) % points_.size()].second;
    if (alive[static_cast<std::size_t>(shard)]) return shard;
  }
  return -1;
}

}  // namespace lo::cluster
