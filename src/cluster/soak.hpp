// Concurrent soak of a real losynthd cluster behind a ClusterRouter.
//
// Unlike testkit's in-process soak, this one exercises the full process
// boundary: the router forks N genuine losynthd shards and the client
// threads speak the line protocol through ClusterRouter::handleLine --
// async submissions over a small pool of distinct design points, waits
// on earlier acks, sync summary synthesizes and stats probes.  With
// killOneShard set, a fault thread SIGKILLs one shard partway through
// the run and the soak's whole point is that nobody upstairs notices.
//
// Invariants checked at the end (violations are human-readable strings;
// an empty list is a pass):
//
//   * every response parses -- a half-written line from the router is a
//     transport error, and there must be none;
//   * no lost jobs -- every async ack reaches a definite terminal state
//     through wait, within drainTimeoutSeconds;
//   * no protocol-level rejections -- shard death must be absorbed by
//     restart + journal replay + re-route, never surfaced as an error;
//   * exactly-once at the cache-key level -- after the drain, every pool
//     point resubmitted synchronously answers cache_hit:true (the
//     established recovery proxy: whatever the dead shard owed was
//     finished exactly once, by replay or by a peer, and is addressable
//     in the cache);
//   * kill evidence -- with killOneShard, the router logged >= 1 restart
//     and every shard is alive again at the end;
//   * stats monotonicity -- cluster job counters never decrease across
//     the run's stats probes (skipped when a kill is armed: a restarted
//     shard's counters legitimately reset to zero).
//
// Chaos mode (`chaos`) layers a seeded schedule of faults on top: at
// deterministic request-count indices drawn from chaosSeed, the harness
// SIGKILLs a shard, SIGSTOP-wedges one, or drains one under load and
// re-admits it -- while an async exploration started before the clients
// rides through the whole storm.  Two invariants join the list above:
// the exploration must still deliver its full front (no lost explore
// budget, however many times its shard died or drained), and that
// killed-and-failed-over front must be byte-identical to a clean
// equal-budget re-run of the same request.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "service/json.hpp"

namespace lo::cluster {

struct ClusterSoakOptions {
  std::uint64_t seed = 1;
  int clients = 4;
  double durationSeconds = 5.0;
  /// Per-client request cap; 0 = duration-limited only.
  int maxRequestsPerClient = 0;
  /// Distinct design points the clients draw from; small, so duplicates
  /// land on the same shard and its cache/coalescing engage.
  int poolSize = 12;
  double drainTimeoutSeconds = 60.0;
  /// SIGKILL one shard at killAtFraction of the soak duration.
  bool killOneShard = false;
  double killAtFraction = 0.4;
  /// Seeded chaos schedule: kill -9, SIGSTOP wedge and drain/re-add
  /// events fire at deterministic request-count indices, and an async
  /// exploration runs through the storm (see the header comment).
  bool chaos = false;
  /// Chaos schedule RNG seed; 0 derives one from `seed`.
  std::uint64_t chaosSeed = 0;
  /// Fault events in the schedule (kill/wedge/drain rotate).
  int chaosEvents = 4;
  /// Shard layout, worker argv, journalRoot/cacheDir and restart policy.
  RouterOptions router;
};

struct ClusterSoakReport {
  std::uint64_t requests = 0;         ///< Protocol lines sent by clients.
  std::uint64_t rejected = 0;         ///< {"ok":false} responses.
  std::uint64_t transportErrors = 0;  ///< Unparseable responses.
  std::uint64_t trackedJobs = 0;      ///< Async acks the clients collected.
  std::map<std::string, std::uint64_t> terminalStates;  ///< Over tracked jobs.
  int killedShard = -1;               ///< Which shard the fault thread shot.
  std::uint64_t restarts = 0;         ///< Router restart count at the end.
  std::uint64_t rerouted = 0;         ///< Requests served off their home shard.
  std::uint64_t resubmittedHits = 0;  ///< Pool points answering cache_hit:true.
  std::uint64_t chaosKills = 0;       ///< SIGKILL events fired.
  std::uint64_t chaosWedges = 0;      ///< SIGSTOP wedge events fired.
  std::uint64_t chaosDrains = 0;      ///< Drains executed under load.
  std::uint64_t chaosAdds = 0;        ///< Drained shards re-admitted.
  std::uint64_t jobFailovers = 0;     ///< Jobs re-pinned to survivors.
  std::uint64_t exploreFailovers = 0; ///< Explorations re-pinned.
  /// Chaos exploration's front matched the clean re-run byte for byte.
  bool exploreFrontMatched = false;
  std::vector<std::string> violations;
  double elapsedSeconds = 0.0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Full report as JSON (what lostress --router-bin prints).
  [[nodiscard]] service::Json toJson() const;
};

[[nodiscard]] ClusterSoakReport runClusterSoak(const ClusterSoakOptions& options);

}  // namespace lo::cluster
