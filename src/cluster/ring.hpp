// Consistent-hash ring over result-cache keys: the routing core of the
// losynthd cluster.
//
// Each shard owns many pseudo-random points ("virtual nodes") on a 64-bit
// ring; a job routes to the shard owning the first point clockwise of its
// cache key's hash.  Two properties make this the right router for a
// content-addressed cache:
//
//  * stability -- identical jobs always land on the same shard, so that
//    shard's in-memory LRU and single-flight coalescing see every
//    duplicate of a key (the cluster-level analogue of the scheduler's
//    coalescing guarantee);
//  * minimal disruption -- when a shard dies, only *its* key ranges move
//    (to the next live shard clockwise); every other key keeps its owner,
//    so the surviving shards' caches stay hot.
//
// Keys are the ResultCache's fixed-width hex strings; they are re-hashed
// with FNV-1a here because the cache key itself is already the output of
// FNV-1a over structured text and its low bits are not uniformly
// distributed over job families that share a long canonical prefix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lo::cluster {

class ShardRing {
 public:
  /// `shards` >= 1; `vnodesPerShard` trades balance for lookup table size.
  explicit ShardRing(int shards, int vnodesPerShard = 64);

  [[nodiscard]] int shards() const { return shards_; }

  /// The shard owning `key`, ignoring liveness (the "home" shard).
  [[nodiscard]] int ownerOf(const std::string& key) const;

  /// The first *live* shard clockwise of `key`; -1 when every shard is
  /// dead.  `alive` must have shards() entries.
  [[nodiscard]] int routeOf(const std::string& key,
                            const std::vector<bool>& alive) const;

  /// Grow the ring by one shard (elastic membership's `add`): the new
  /// shard's vnodes slot between the existing points, so only the key
  /// ranges they capture change owner -- every other key keeps its shard
  /// and therefore its warm cache.  Returns the new shard's index.
  int addShard();

 private:
  [[nodiscard]] std::size_t startIndexFor(const std::string& key) const;

  int shards_ = 0;
  int vnodesPerShard_ = 0;
  /// (point hash, shard) sorted by hash: the ring, flattened.
  std::vector<std::pair<std::uint64_t, int>> points_;
};

}  // namespace lo::cluster
