// ShardProcess: one worker daemon as a child process behind two pipes.
//
// The router talks to each losynthd shard over its stdin/stdout exactly
// the way an external client talks to the router: one JSON line per
// request, one per response.  This class owns the POSIX plumbing --
// fork/exec with close-on-exec pipes, buffered line reads with a poll()
// timeout, EOF detection -- and nothing protocol-shaped; the router layers
// routing and recovery on top.
//
// Death shows up two ways and both are first-class here:
//  * EOF on the read pipe (the child exited or was SIGKILLed) -- the
//    definitive signal, delivered immediately because the parent-side fds
//    are the *only* copies of the pipe ends (O_CLOEXEC everywhere, so a
//    sibling shard spawned later cannot hold them open and mask a death);
//  * a read timeout (the child is wedged) -- the caller decides, and the
//    router's policy is kill + restart, because a request/response stream
//    that missed one response would pair every later response with the
//    wrong request.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace lo::cluster {

enum class ReadStatus { kOk, kEof, kTimeout, kNotRunning };

class ShardProcess {
 public:
  ShardProcess() = default;
  ~ShardProcess();  ///< terminate()s a still-running child.

  ShardProcess(const ShardProcess&) = delete;
  ShardProcess& operator=(const ShardProcess&) = delete;

  /// Fork/exec `argv` (argv[0] is the binary; PATH is searched).  The
  /// child inherits stderr.  Throws std::runtime_error on pipe/fork
  /// failure; an exec failure surfaces as an immediate EOF.  Spawning over
  /// a still-running child terminates it first.
  void spawn(const std::vector<std::string>& argv);

  /// True while the child has not been reaped.  Non-blocking.
  [[nodiscard]] bool running();

  [[nodiscard]] pid_t pid() const { return pid_; }

  /// Write one request line (a trailing '\n' is added).  False when the
  /// pipe is closed/broken -- the write path's death signal.
  [[nodiscard]] bool writeLine(const std::string& line);

  /// Read one response line (without the '\n').  timeoutSeconds <= 0
  /// waits forever.  kEof means the child died; kTimeout means it is
  /// wedged past the deadline.
  [[nodiscard]] ReadStatus readLine(std::string& line, double timeoutSeconds);

  /// Non-blocking readLine: drain whatever the pipe holds right now and
  /// return kOk if that completed a line, kTimeout if a (partial or no)
  /// line is still pending, kEof when the child died.  The multiplexed
  /// cross-shard wait drives many shards' pipes from one poll(2) loop
  /// with this.
  [[nodiscard]] ReadStatus pollLine(std::string& line);

  /// The parent-side read fd, for poll(2)ing several shards at once; -1
  /// when not running.
  [[nodiscard]] int readFd() const { return out_; }

  /// SIGKILL, then reap.  Used by the fault-injection side (soak, tests)
  /// to simulate a crashed shard from outside.
  void kill9();

  /// Close our write end (EOF on the child's stdin), SIGTERM after
  /// `graceSeconds` if it is still up, SIGKILL after another grace, reap.
  void terminate(double graceSeconds = 2.0);

 private:
  void closeFds();
  void reap(bool block);

  pid_t pid_ = -1;
  int in_ = -1;   ///< Parent write end -> child stdin.
  int out_ = -1;  ///< Parent read end <- child stdout.
  std::string buffer_;
  bool sawEof_ = false;
  bool reaped_ = true;
};

}  // namespace lo::cluster
