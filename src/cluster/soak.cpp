#include "cluster/soak.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <thread>

#include "core/engine.hpp"
#include "service/serialize.hpp"
#include "tech/technology.hpp"
#include "testkit/generators.hpp"

namespace lo::cluster {

namespace {

using service::Json;

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Json submitRequest(const testkit::CorpusPoint& point, bool async, bool summary) {
  Json req = Json::object();
  req.set("op", "synthesize");
  if (async) req.set("async", true);
  if (summary) req.set("summary", true);
  req.set("label", point.label);
  req.set("topology", point.options.topology);
  req.set("case", core::sizingCaseName(point.options.sizingCase));
  req.set("spec", service::toJson(point.specs));
  req.set("corner", tech::cornerName(point.corner));
  return req;
}

/// A front with per-point provenance stripped: `cache_hit` says where a
/// value came from (cold run vs warm replay), not what it is, so the
/// byte-identical failover comparison must ignore it.
std::string frontFingerprint(const Json& front) {
  Json scrubbed = Json::array();
  for (const Json& point : front.items()) {
    Json p = Json::object();
    for (const auto& [key, value] : point.members()) {
      if (key != "cache_hit") p.set(key, value);
    }
    scrubbed.push(std::move(p));
  }
  return scrubbed.dump();
}

/// Everything the client threads share, all guarded by one mutex: the
/// router itself is single-threaded by contract, so the soak's concurrency
/// lives in the *shards*, not in the router's front door.
struct Shared {
  explicit Shared(ClusterRouter& r) : router(r) {}

  ClusterRouter& router;
  std::mutex mutex;
  std::vector<std::uint64_t> pendingIds;
  std::map<std::string, std::uint64_t> terminalStates;
  std::vector<std::string> violations;
  /// High-water marks for the monotonicity probe.
  std::uint64_t lastSubmitted = 0;
  std::uint64_t lastCompleted = 0;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> transportErrors{0};
  std::atomic<std::uint64_t> trackedJobs{0};
};

}  // namespace

Json ClusterSoakReport::toJson() const {
  Json out = Json::object();
  out.set("ok", ok());
  out.set("requests", requests);
  out.set("rejected", rejected);
  out.set("transport_errors", transportErrors);
  out.set("tracked_jobs", trackedJobs);
  out.set("elapsed_seconds", elapsedSeconds);
  out.set("killed_shard", killedShard);
  out.set("restarts", restarts);
  out.set("rerouted", rerouted);
  out.set("resubmitted_hits", resubmittedHits);
  out.set("chaos_kills", chaosKills);
  out.set("chaos_wedges", chaosWedges);
  out.set("chaos_drains", chaosDrains);
  out.set("chaos_adds", chaosAdds);
  out.set("job_failovers", jobFailovers);
  out.set("explore_failovers", exploreFailovers);
  out.set("explore_front_matched", exploreFrontMatched);

  Json states = Json::object();
  for (const auto& [state, count] : terminalStates) states.set(state, count);
  out.set("terminal_states", std::move(states));

  Json issues = Json::array();
  for (const std::string& v : violations) issues.push(v);
  out.set("violations", std::move(issues));
  return out;
}

ClusterSoakReport runClusterSoak(const ClusterSoakOptions& options) {
  ClusterSoakReport report;
  const auto start = Clock::now();

  testkit::CorpusOptions corpusOptions;
  corpusOptions.size = options.poolSize;
  const std::vector<testkit::CorpusPoint> pool =
      testkit::generateCorpus(options.seed, corpusOptions);

  ClusterRouter router(options.router);
  Shared shared(router);

  // One handleLine under the lock; parse failures are transport errors
  // (the router must never emit a half line or garbage).
  auto call = [&shared](const std::string& line,
                        std::unique_lock<std::mutex>& lock) -> Json {
    const std::string response = shared.router.handleLine(line);
    shared.requests.fetch_add(1, std::memory_order_relaxed);
    try {
      return Json::parse(response);
    } catch (const service::JsonParseError&) {
      shared.transportErrors.fetch_add(1, std::memory_order_relaxed);
      (void)lock;
      return Json();
    }
  };

  auto recordTerminal = [&shared](const Json& response) {
    const std::string state = response.at("state").asString("unknown");
    ++shared.terminalStates[state];
  };

  // Restarted or drained shards legitimately reset their counters, so the
  // monotonicity probe only runs in fault-free configurations.
  const bool checkMonotonic = !options.killOneShard && !options.chaos;

  // Chaos mode: start an async exploration before the clients so the
  // whole fault schedule plays out underneath a live session.  Case 4 for
  // the same reason as the explore smoke -- its grid is feasible, so the
  // front is non-trivial.
  const std::string exploreLine =
      R"({"op":"explore","async":true,"case":4,"budget":12,"max_rounds":1,)"
      R"("tolerance":0.05,"axes":[{"field":"gbw","lo":55e6,"hi":65e6,)"
      R"("points":2},{"field":"cload","lo":2e-12,"hi":3e-12,"points":2}]})";
  std::uint64_t exploreId = 0;
  if (options.chaos) {
    std::unique_lock<std::mutex> lock(shared.mutex);
    const Json ack = call(exploreLine, lock);
    if (ack.at("ok").asBool()) {
      exploreId = ack.at("explore_id").asUint64();
    } else {
      shared.violations.push_back("chaos: explore submission failed: " +
                                  ack.dump());
    }
  }
  auto clientLoop = [&](int clientIndex) {
    std::mt19937 rng(static_cast<std::uint32_t>(options.seed * 7919 +
                                                static_cast<std::uint64_t>(clientIndex)));
    int sent = 0;
    while (secondsSince(start) < options.durationSeconds &&
           (options.maxRequestsPerClient == 0 ||
            sent < options.maxRequestsPerClient)) {
      const int roll = static_cast<int>(rng() % 100);
      const testkit::CorpusPoint& point =
          pool[rng() % static_cast<std::uint32_t>(pool.size())];
      std::unique_lock<std::mutex> lock(shared.mutex);
      if (roll < 60) {
        const Json response =
            call(submitRequest(point, /*async=*/true, /*summary=*/false).dump(),
                 lock);
        if (response.at("ok").asBool()) {
          shared.pendingIds.push_back(response.at("id").asUint64());
          shared.trackedJobs.fetch_add(1, std::memory_order_relaxed);
        } else if (!response.isNull()) {
          shared.rejected.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (roll < 85 && !shared.pendingIds.empty()) {
        const std::uint64_t id = shared.pendingIds.back();
        shared.pendingIds.pop_back();
        Json wait = Json::object();
        wait.set("op", "wait");
        wait.set("id", id);
        wait.set("summary", true);
        const Json response = call(wait.dump(), lock);
        if (response.at("ok").asBool()) {
          recordTerminal(response);
        } else if (!response.isNull()) {
          shared.rejected.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (roll < 95) {
        const Json response =
            call(submitRequest(point, /*async=*/false, /*summary=*/true).dump(),
                 lock);
        if (response.at("ok").asBool()) {
          recordTerminal(response);
        } else if (!response.isNull()) {
          shared.rejected.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        const Json response = call(R"({"op":"stats"})", lock);
        if (response.at("ok").asBool() && checkMonotonic) {
          const Json& jobs = response.at("stats").at("cluster").at("jobs");
          const std::uint64_t submitted = jobs.at("submitted").asUint64();
          const std::uint64_t completed = jobs.at("completed").asUint64();
          if (submitted < shared.lastSubmitted ||
              completed < shared.lastCompleted) {
            shared.violations.push_back(
                "cluster stats went backwards: submitted " +
                std::to_string(shared.lastSubmitted) + " -> " +
                std::to_string(submitted) + ", completed " +
                std::to_string(shared.lastCompleted) + " -> " +
                std::to_string(completed));
          }
          shared.lastSubmitted = std::max(shared.lastSubmitted, submitted);
          shared.lastCompleted = std::max(shared.lastCompleted, completed);
        }
      }
      ++sent;
    }
  };

  std::thread killer;
  if (options.killOneShard && router.shardCount() > 0) {
    report.killedShard = static_cast<int>(options.seed) %
                         router.shardCount();
    killer = std::thread([&router, &options, &report, start] {
      const double at = options.durationSeconds * options.killAtFraction;
      while (secondsSince(start) < at) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      // Pure SIGKILL from outside the protocol: the router finds out the
      // hard way, via EOF on the next request it routes there.
      router.killShard(report.killedShard);
    });
  }

  // The chaos schedule: each event fires once the clients' request count
  // crosses its (seeded, deterministic) index.  Kinds rotate so every run
  // covers kill -9, SIGSTOP wedge and drain-under-load; the shard choice
  // comes from the same RNG stream.  Signals and membership ops alike run
  // under the shared mutex, so an event lands *between* client requests
  // -- a deterministic op boundary, not a random instant mid-write.
  struct ChaosEvent {
    std::uint64_t atRequest = 0;
    int kind = 0;  ///< 0 = kill, 1 = drain + re-add, 2 = wedge.
    std::uint64_t pick = 0;
  };
  std::vector<ChaosEvent> plan;
  if (options.chaos) {
    std::mt19937_64 chaosRng(options.chaosSeed != 0
                                 ? options.chaosSeed
                                 : options.seed ^ 0x9E3779B97F4A7C15ULL);
    // Kill and drain lead the rotation: a wedge stalls the clients for a
    // full request timeout, so in a short run everything scheduled after
    // one may never fire.
    std::uint64_t at = 6 + chaosRng() % 6;
    for (int k = 0; k < options.chaosEvents; ++k) {
      ChaosEvent event;
      event.atRequest = at;
      event.kind = k % 3;
      event.pick = chaosRng();
      plan.push_back(event);
      at += 10 + chaosRng() % 10;
    }
  }
  std::thread chaosThread;
  if (!plan.empty()) {
    chaosThread = std::thread([&] {
      std::size_t next = 0;
      while (next < plan.size() &&
             secondsSince(start) < options.durationSeconds + 1.0) {
        if (shared.requests.load(std::memory_order_relaxed) <
            plan[next].atRequest) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        const ChaosEvent& event = plan[next++];
        std::unique_lock<std::mutex> lock(shared.mutex);
        const int victim = static_cast<int>(
            event.pick % static_cast<std::uint64_t>(router.shardCount()));
        if (event.kind == 0) {
          router.killShard(victim);
          ++report.chaosKills;
        } else if (event.kind == 2) {
          router.wedgeShard(victim);
          ++report.chaosWedges;
        } else {
          Json drain = Json::object();
          drain.set("op", "drain");
          drain.set("shard", victim);
          Json drained;
          try {
            drained = Json::parse(router.handleLine(drain.dump()));
          } catch (const service::JsonParseError&) {
          }
          // A refused drain (last member standing, already drained) is a
          // legal no-op; an accepted one must re-admit cleanly.
          if (drained.at("ok").asBool()) {
            ++report.chaosDrains;
            Json add = Json::object();
            add.set("op", "add");
            add.set("shard", victim);
            Json added;
            try {
              added = Json::parse(router.handleLine(add.dump()));
            } catch (const service::JsonParseError&) {
            }
            if (added.at("ok").asBool()) {
              ++report.chaosAdds;
            } else {
              shared.violations.push_back(
                  "chaos: re-admitting drained shard " +
                  std::to_string(victim) + " failed: " + added.dump());
            }
          }
        }
      }
    });
  }

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back(clientLoop, c);
  }
  for (std::thread& client : clients) client.join();
  if (killer.joinable()) killer.join();
  if (chaosThread.joinable()) chaosThread.join();

  // Drain: every ack the clients collected must reach a terminal state.
  {
    const auto drainStart = Clock::now();
    std::unique_lock<std::mutex> lock(shared.mutex);
    while (!shared.pendingIds.empty()) {
      if (secondsSince(drainStart) > options.drainTimeoutSeconds) {
        shared.violations.push_back(
            "drain timed out with " +
            std::to_string(shared.pendingIds.size()) + " job(s) outstanding");
        break;
      }
      const std::uint64_t id = shared.pendingIds.back();
      shared.pendingIds.pop_back();
      Json wait = Json::object();
      wait.set("op", "wait");
      wait.set("id", id);
      wait.set("summary", true);
      const Json response = call(wait.dump(), lock);
      if (response.at("ok").asBool()) {
        recordTerminal(response);
      } else {
        shared.violations.push_back("job " + std::to_string(id) +
                                    " was lost: " + response.dump());
      }
    }
  }

  // Chaos exploration invariants: the session that lived through the
  // fault schedule must deliver its full front (no lost explore budget),
  // and that front must be byte-identical to a clean, equal-budget re-run
  // of the same request -- failover is invisible in the result.
  if (options.chaos && exploreId != 0) {
    std::unique_lock<std::mutex> lock(shared.mutex);
    Json resultReq = Json::object();
    resultReq.set("op", "explore_result");
    resultReq.set("explore_id", exploreId);
    const Json stormy = call(resultReq.dump(), lock);
    const Json* stormyFront = stormy.find("front");
    if (!stormy.at("ok").asBool() || stormyFront == nullptr ||
        stormyFront->items().empty()) {
      shared.violations.push_back(
          "chaos: the exploration lost its front to the fault schedule: " +
          stormy.dump());
    } else {
      Json rerun = Json::parse(exploreLine);
      rerun.set("async", false);
      const Json clean = call(rerun.dump(), lock);
      const Json* cleanFront = clean.find("front");
      if (cleanFront == nullptr ||
          frontFingerprint(*stormyFront) != frontFingerprint(*cleanFront)) {
        shared.violations.push_back(
            "chaos: the failed-over front diverged from a clean re-run of "
            "the same request");
      } else {
        report.exploreFrontMatched = true;
      }
    }
  }

  // Exactly-once at the cache-key level: whatever the cluster ran -- or a
  // dead shard owed and a reboot replayed -- each pool point is now in the
  // cache, so a fresh synchronous pass must be all hits and no reruns.
  {
    std::unique_lock<std::mutex> lock(shared.mutex);
    for (const testkit::CorpusPoint& point : pool) {
      const Json response =
          call(submitRequest(point, /*async=*/false, /*summary=*/true).dump(),
               lock);
      if (response.at("ok").asBool() && response.at("cache_hit").asBool()) {
        ++report.resubmittedHits;
      } else {
        shared.violations.push_back("pool point \"" + point.label +
                                    "\" was not a cache hit after the soak: " +
                                    response.dump());
      }
    }

    Json health = call(R"({"op":"health"})", lock);
    auto fullyAlive = [](const Json& h) {
      return h.at("ok").asBool() &&
             h.at("health").at("cluster").at("all_alive").asBool();
    };
    if (options.chaos) {
      // Late chaos faults can leave a member inside its (short) restart
      // backoff window; "stats" revives dead members, so probe until the
      // membership heals or the grace runs out.
      const auto healStart = Clock::now();
      while (!fullyAlive(health) && secondsSince(healStart) < 10.0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        (void)call(R"({"op":"stats"})", lock);
        health = call(R"({"op":"health"})", lock);
      }
    }
    if (!fullyAlive(health)) {
      shared.violations.push_back("cluster is not fully alive after the soak: " +
                                  health.dump());
    }
  }

  if (options.killOneShard && router.restarts() == 0) {
    shared.violations.push_back(
        "a shard was SIGKILLed but the router never restarted anything");
  }
  if ((report.chaosKills + report.chaosWedges) > 0 && router.restarts() == 0) {
    shared.violations.push_back(
        "chaos killed or wedged shards but the router never restarted any");
  }
  if (const std::uint64_t t = shared.transportErrors.load()) {
    shared.violations.push_back(std::to_string(t) +
                                " unparseable response(s) from the router");
  }
  if (const std::uint64_t r = shared.rejected.load()) {
    shared.violations.push_back(
        std::to_string(r) +
        " request(s) answered {\"ok\":false}: shard failure leaked through");
  }

  report.requests = shared.requests.load();
  report.rejected = shared.rejected.load();
  report.transportErrors = shared.transportErrors.load();
  report.trackedJobs = shared.trackedJobs.load();
  report.terminalStates = std::move(shared.terminalStates);
  report.restarts = router.restarts();
  report.rerouted = router.rerouted();
  report.jobFailovers = router.jobFailovers();
  report.exploreFailovers = router.exploreFailovers();
  report.violations = std::move(shared.violations);
  report.elapsedSeconds = secondsSince(start);
  return report;
}

}  // namespace lo::cluster
