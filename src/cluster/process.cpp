#include "cluster/process.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace lo::cluster {

namespace {

/// A dead shard must surface as a failed write (EPIPE), never as a fatal
/// SIGPIPE delivered to the router.
void ignoreSigpipeOnce() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

void makeCloexecPipe(int fds[2]) {
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  // O_CLOEXEC on both ends: a later-spawned sibling must not inherit this
  // shard's pipe ends, or the sibling would keep them open after this
  // shard dies and the router would never see the EOF.
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
}

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ShardProcess::~ShardProcess() { terminate(0.5); }

void ShardProcess::closeFds() {
  if (in_ >= 0) ::close(in_);
  if (out_ >= 0) ::close(out_);
  in_ = out_ = -1;
}

void ShardProcess::reap(bool block) {
  if (reaped_ || pid_ < 0) return;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, block ? 0 : WNOHANG);
  if (r == pid_ || (r < 0 && errno == ECHILD)) reaped_ = true;
}

void ShardProcess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::invalid_argument("spawn needs an argv");
  ignoreSigpipeOnce();
  if (!reaped_) terminate(0.5);

  int toChild[2];
  int fromChild[2];
  makeCloexecPipe(toChild);
  try {
    makeCloexecPipe(fromChild);
  } catch (...) {
    ::close(toChild[0]);
    ::close(toChild[1]);
    throw;
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);

  const pid_t child = ::fork();
  if (child < 0) {
    ::close(toChild[0]);
    ::close(toChild[1]);
    ::close(fromChild[0]);
    ::close(fromChild[1]);
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  }
  if (child == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    ::dup2(toChild[0], STDIN_FILENO);
    ::dup2(fromChild[1], STDOUT_FILENO);
    // The dup2'd fds 0/1 survive exec; every original pipe fd is CLOEXEC.
    ::execvp(cargv[0], cargv.data());
    _exit(127);  // exec failed: the parent sees EOF on its first read.
  }

  ::close(toChild[0]);
  ::close(fromChild[1]);
  pid_ = child;
  in_ = toChild[1];
  out_ = fromChild[0];
  buffer_.clear();
  sawEof_ = false;
  reaped_ = false;
}

bool ShardProcess::running() {
  if (reaped_ || pid_ < 0) return false;
  reap(/*block=*/false);
  return !reaped_;
}

bool ShardProcess::writeLine(const std::string& line) {
  if (in_ < 0 || sawEof_) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n = ::write(in_, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE et al.: the child is gone.
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

ReadStatus ShardProcess::readLine(std::string& line, double timeoutSeconds) {
  if (out_ < 0) return ReadStatus::kNotRunning;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return ReadStatus::kOk;
    }
    if (sawEof_) return ReadStatus::kEof;

    int waitMs = -1;  // Forever.
    if (timeoutSeconds > 0) {
      const double remaining = timeoutSeconds - secondsSince(start);
      if (remaining <= 0) return ReadStatus::kTimeout;
      waitMs = static_cast<int>(remaining * 1000.0) + 1;
    }
    struct pollfd pfd {};
    pfd.fd = out_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, waitMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      sawEof_ = true;
      return ReadStatus::kEof;
    }
    if (ready == 0) return ReadStatus::kTimeout;

    char chunk[4096];
    const ssize_t n = ::read(out_, chunk, sizeof chunk);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    sawEof_ = true;  // n == 0 (EOF) or a hard read error.
  }
}

ReadStatus ShardProcess::pollLine(std::string& line) {
  if (out_ < 0) return ReadStatus::kNotRunning;
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return ReadStatus::kOk;
    }
    if (sawEof_) return ReadStatus::kEof;

    struct pollfd pfd {};
    pfd.fd = out_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 0);
    if (ready < 0) {
      if (errno == EINTR) continue;
      sawEof_ = true;
      return ReadStatus::kEof;
    }
    if (ready == 0) return ReadStatus::kTimeout;

    char chunk[4096];
    const ssize_t n = ::read(out_, chunk, sizeof chunk);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    sawEof_ = true;  // n == 0 (EOF) or a hard read error.
  }
}

void ShardProcess::kill9() {
  if (pid_ < 0 || reaped_) return;
  ::kill(pid_, SIGKILL);
  reap(/*block=*/true);
  closeFds();
  sawEof_ = true;
}

void ShardProcess::terminate(double graceSeconds) {
  if (pid_ < 0) return;
  closeFds();  // EOF on the child's stdin: a clean daemon exits its loop.
  if (!reaped_) {
    const auto start = std::chrono::steady_clock::now();
    while (running() && secondsSince(start) < graceSeconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (running()) {
      ::kill(pid_, SIGTERM);
      const auto term = std::chrono::steady_clock::now();
      while (running() && secondsSince(term) < graceSeconds) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (running()) ::kill(pid_, SIGKILL);
    reap(/*block=*/true);
  }
  pid_ = -1;
  sawEof_ = true;
}

}  // namespace lo::cluster
