// ClusterRouter: the shard-routing front-end of the losynthd cluster.
//
// Speaks the same line-JSON protocol as a single losynthd and fans the
// work out over N worker daemons (ShardProcess children), so a client
// cannot tell the difference between one daemon and a cluster -- except
// for the added "shard" attribution in responses and the per-shard
// sections in stats/health.
//
// Routing.  synthesize/sweep jobs route by consistent-hashing the job's
// content-addressed ResultCache key (ring.hpp) -- the router derives the
// exact key the shard's scheduler will (service::parseJobRequest +
// ResultCache::keyFor over the same technology), so every duplicate of a
// design point lands on the same shard and that shard's in-memory cache
// and single-flight coalescing absorb it.  no_cache jobs and explorations
// hash their raw request text instead.  Sweeps are partitioned into
// per-shard sub-sweeps dispatched concurrently (one I/O thread per shard)
// and the outcomes are reassembled in request order.
//
// Failure model.  A dead shard announces itself as EOF on its pipe; a
// wedged one as a request timeout (after which the shard is killed,
// because a line protocol that skipped one response would mis-pair every
// later one).  Either way the router marks the shard down, respawns it on
// the same --journal directory -- the reboot replays the write-ahead log,
// so every job the dead shard had acknowledged is re-enqueued under its
// original id -- and retries the failed request.  While a shard stays
// down (restart budget exhausted), its key ranges re-route to the next
// live shard on the ring, which peer-fills from the shared on-disk cache
// store rather than recomputing anything a dead shard already finished.
// Exactly-once therefore holds at the cache-key level across kills: an
// acknowledged job is either in a journal (and will re-run into the
// shared store at most once) or already in the store.
//
// Job ids.  Shard-local ids would collide across shards, so the router
// issues its own id space for synthesize/sweep acks and maps them back on
// wait/cancel; explorations get the same treatment.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/process.hpp"
#include "cluster/ring.hpp"
#include "service/json.hpp"
#include "tech/technology.hpp"

namespace lo::cluster {

struct RouterOptions {
  /// Worker command: losynthd binary plus pass-through flags (--threads,
  /// --queue-depth, --tech, ...).  --journal / --cache-dir are appended
  /// per shard from journalRoot / cacheDir.
  std::vector<std::string> workerArgv;
  int shards = 2;
  int vnodesPerShard = 64;
  /// Per-shard write-ahead journal at <journalRoot>/shard<i> ("" = off).
  /// Each shard recovers independently: a restart replays only its own log.
  std::string journalRoot;
  /// Shared on-disk result store handed to every shard ("" = off).  This
  /// is the peer-fill channel: a miss on shard A consults the store before
  /// computing, so results computed on other shards are never recomputed.
  std::string cacheDir;
  /// Must match the workers' --tech, or the router's keys (and therefore
  /// its routing) would diverge from the shards' cache keys.
  tech::Technology technology = tech::Technology::generic060();
  /// Per-request ceiling before a shard is declared wedged and recycled.
  double requestTimeoutSeconds = 300.0;
  /// Respawn dead shards (journal replay) instead of only re-routing.
  bool restartDeadShards = true;
  int maxRestartsPerShard = 16;
};

class ClusterRouter {
 public:
  /// Spawns and health-checks every shard; throws if any fails to boot.
  explicit ClusterRouter(RouterOptions options);
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Handle one request line; always returns a single-line JSON response.
  /// Not thread-safe: serialise calls (the serve loop is single-threaded).
  [[nodiscard]] std::string handleLine(const std::string& line);

  [[nodiscard]] bool shutdownRequested() const { return shutdown_; }

  /// Serve line-by-line until EOF or shutdown; flushes after every line.
  void serve(std::istream& in, std::ostream& out);

  [[nodiscard]] int shardCount() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] pid_t shardPid(int shard) const;
  /// SIGKILL a shard from outside the protocol -- the soak/test fault
  /// site.  The router notices on the next request routed to it.
  void killShard(int shard);

  /// Total successful shard restarts so far (soak invariant input).
  [[nodiscard]] std::uint64_t restarts() const;
  /// Total requests that had to leave their home shard.
  [[nodiscard]] std::uint64_t rerouted() const { return rerouted_; }

 private:
  struct Shard {
    std::unique_ptr<ShardProcess> process;
    std::vector<std::string> argv;
    bool alive = false;
    int restarts = 0;
    std::uint64_t routedJobs = 0;
    std::uint64_t transportErrors = 0;
    /// Journal replay figures reported by the shard's health op at its
    /// most recent (re)boot -- the cluster-visible recovery evidence.
    std::uint64_t lastReplayedRecords = 0;
    std::uint64_t lastRecoveredJobs = 0;
  };

  /// Thrown internally for cluster-level failures; becomes a structured
  /// {"error":{"code":...}} response.
  struct RouterError {
    std::string code;
    std::string message;
  };

  [[nodiscard]] service::Json handle(const service::Json& request,
                                     const std::string& rawLine);
  [[nodiscard]] service::Json handleSynthesize(const service::Json& request,
                                               const std::string& rawLine);
  [[nodiscard]] service::Json handleSweep(const service::Json& request);
  [[nodiscard]] service::Json handleWaitOrCancel(const service::Json& request,
                                                 const std::string& op);
  [[nodiscard]] service::Json handleExplore(const std::string& rawLine);
  [[nodiscard]] service::Json handleExploreResult(const service::Json& request);
  [[nodiscard]] service::Json handleStats();
  [[nodiscard]] service::Json handleHealth();
  [[nodiscard]] service::Json handleShutdown();
  [[nodiscard]] service::Json forwardToAnyShard(const std::string& rawLine);

  /// The routing key for one synthesize/sweep entry: the job's cache key,
  /// or a hash key over the entry text for no_cache jobs.
  [[nodiscard]] std::string routingKeyFor(const service::Json& entry) const;

  /// Pick the live shard for `key`, reviving its home shard first if that
  /// is down.  Throws RouterError{"no_live_shards"} when the whole
  /// cluster is dead.  Counts a reroute when the answer is not home.
  [[nodiscard]] int routeLive(const std::string& key);

  /// One request/response over a shard's pipe.  nullopt marks the shard
  /// dead (EOF, broken pipe, or timeout -> kill).
  [[nodiscard]] std::optional<std::string> forwardRaw(int shard,
                                                      const std::string& line);
  /// forwardRaw with revive-and-retry until the route is exhausted.
  /// Returns the serving shard and its parsed response.
  [[nodiscard]] std::pair<int, service::Json> forwardRouted(
      const std::string& key, const std::string& line);

  void markDead(int shard);
  /// Respawn a dead shard (journal replay) within the restart budget;
  /// true when the shard is alive afterwards.
  [[nodiscard]] bool reviveShard(int shard);
  void spawnShard(int shard);  ///< Throws on spawn/health-check failure.

  [[nodiscard]] std::vector<bool> aliveMask() const;
  [[nodiscard]] std::uint64_t mapNewJob(int shard, std::uint64_t localId);

  RouterOptions options_;
  std::string techPrint_;
  ShardRing ring_;
  std::vector<Shard> shards_;
  bool shutdown_ = false;

  std::uint64_t nextJobId_ = 1;
  std::uint64_t nextExploreId_ = 1;
  /// Router id -> (shard, shard-local id).
  std::unordered_map<std::uint64_t, std::pair<int, std::uint64_t>> jobRoute_;
  std::unordered_map<std::uint64_t, std::pair<int, std::uint64_t>> exploreRoute_;
  std::uint64_t rerouted_ = 0;
};

}  // namespace lo::cluster
