// ClusterRouter: the shard-routing front-end of the losynthd cluster.
//
// Speaks the same line-JSON protocol as a single losynthd and fans the
// work out over N worker daemons (ShardProcess children), so a client
// cannot tell the difference between one daemon and a cluster -- except
// for the added "shard" attribution in responses and the per-shard
// sections in stats/health.
//
// Routing.  synthesize/sweep jobs route by consistent-hashing the job's
// content-addressed ResultCache key (ring.hpp) -- the router derives the
// exact key the shard's scheduler will (service::parseJobRequest +
// ResultCache::keyFor over the same technology), so every duplicate of a
// design point lands on the same shard and that shard's in-memory cache
// and single-flight coalescing absorb it.  no_cache jobs and explorations
// hash their raw request text instead.  Sweeps are partitioned into
// per-shard sub-sweeps dispatched concurrently (one I/O thread per shard)
// and the outcomes are reassembled in request order.
//
// Failure model.  A dead shard announces itself as EOF on its pipe; a
// wedged one as a request timeout (after which the shard is killed,
// because a line protocol that skipped one response would mis-pair every
// later one).  Either way the router marks the shard down and respawns it
// on the same --journal directory -- the reboot replays both write-ahead
// logs, so every job the dead shard had acknowledged is re-enqueued under
// its original id and every exploration it owned restarts under its
// original id.  Respawns after the first failure back off exponentially
// with seeded jitter (restart hygiene: a crash-looping binary must not be
// respawned in a hot loop), except that a cluster with no other live
// shard force-revives immediately.  While a shard stays down (backoff or
// restart budget), its key ranges re-route to the next live member on the
// ring, which peer-fills from the shared on-disk cache store rather than
// recomputing anything a dead shard already finished.
//
// Failover.  Router job ids remember their routing key and a resubmit
// line: a wait/cancel whose home shard cannot be revived re-pins the job
// to a survivor (the resubmission is a cache hit or journal coalesce, not
// a second run) and resolves there.  Explorations failover the same way
// -- the stored request re-runs on a survivor, and the explorer's
// (space, options) determinism plus the shared cache make the survivor's
// front byte-identical to what the dead shard would have produced.
//
// Membership.  `drain` removes a shard from the ring gracefully: new keys
// stop routing to it, its in-flight jobs are waited out, its explore
// sessions re-pin to the inheriting members, then the worker is shut
// down.  `add` re-admits a drained shard or grows the ring by a brand-new
// one (only the captured key ranges move; the shared store warms the new
// member on first miss).
//
// Job ids.  Shard-local ids would collide across shards, so the router
// issues its own id space for synthesize/sweep acks and maps them back on
// wait/cancel; explorations get the same treatment.  A `wait` with an
// "ids" array multiplexes over every involved shard's pipe with one
// poll(2) loop, so a wedged shard cannot stall waits destined for healthy
// ones.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/process.hpp"
#include "cluster/ring.hpp"
#include "service/json.hpp"
#include "tech/technology.hpp"

namespace lo::cluster {

struct RouterOptions {
  /// Worker command: losynthd binary plus pass-through flags (--threads,
  /// --queue-depth, --tech, ...).  --journal / --cache-dir are appended
  /// per shard from journalRoot / cacheDir.
  std::vector<std::string> workerArgv;
  int shards = 2;
  int vnodesPerShard = 64;
  /// Per-shard write-ahead journal at <journalRoot>/shard<i> ("" = off).
  /// Each shard recovers independently: a restart replays only its own log.
  std::string journalRoot;
  /// Shared on-disk result store handed to every shard ("" = off).  This
  /// is the peer-fill channel: a miss on shard A consults the store before
  /// computing, so results computed on other shards are never recomputed.
  std::string cacheDir;
  /// Must match the workers' --tech, or the router's keys (and therefore
  /// its routing) would diverge from the shards' cache keys.
  tech::Technology technology = tech::Technology::generic060();
  /// Per-request ceiling before a shard is declared wedged and recycled.
  double requestTimeoutSeconds = 300.0;
  /// Respawn dead shards (journal replay) instead of only re-routing.
  bool restartDeadShards = true;
  int maxRestartsPerShard = 16;
  /// Restart backoff: the first revive after a death is immediate (so a
  /// one-off kill heals on the next request), the n-th consecutive death
  /// waits base * 2^(n-1) seconds, capped at max, jittered +-25% from the
  /// seeded RNG so a fleet of routers does not thunder in phase.  A death
  /// after `restartBackoffMaxSeconds` of healthy uptime resets the streak.
  double restartBackoffBaseSeconds = 0.05;
  double restartBackoffMaxSeconds = 5.0;
  std::uint64_t backoffJitterSeed = 0x105F;
};

class ClusterRouter {
 public:
  /// Spawns and health-checks every shard; throws if any fails to boot.
  explicit ClusterRouter(RouterOptions options);
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Handle one request line; always returns a single-line JSON response.
  /// Not thread-safe: serialise calls (the serve loop is single-threaded).
  [[nodiscard]] std::string handleLine(const std::string& line);

  [[nodiscard]] bool shutdownRequested() const { return shutdown_; }

  /// Serve line-by-line until EOF or shutdown; flushes after every line.
  void serve(std::istream& in, std::ostream& out);

  [[nodiscard]] int shardCount() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] pid_t shardPid(int shard) const;
  /// SIGKILL a shard from outside the protocol -- the soak/test fault
  /// site.  The router notices on the next request routed to it.
  void killShard(int shard);
  /// SIGSTOP a shard -- the chaos harness's wedge fault.  The shard stays
  /// "up" but answers nothing; the router's request timeout declares it
  /// wedged, kill9s it (SIGKILL works on a stopped process) and revives.
  void wedgeShard(int shard);

  /// Total successful shard restarts so far (soak invariant input).
  [[nodiscard]] std::uint64_t restarts() const;
  /// Total requests that had to leave their home shard.
  [[nodiscard]] std::uint64_t rerouted() const { return rerouted_; }
  /// Jobs and explorations re-pinned to a survivor after their shard died
  /// past its restart budget (or was drained).
  [[nodiscard]] std::uint64_t jobFailovers() const { return jobFailovers_; }
  [[nodiscard]] std::uint64_t exploreFailovers() const { return exploreFailovers_; }
  [[nodiscard]] std::uint64_t drains() const { return drains_; }
  [[nodiscard]] std::uint64_t adds() const { return adds_; }
  /// Current ring members (undrained shards).
  [[nodiscard]] int memberCount() const;

 private:
  struct Shard {
    std::unique_ptr<ShardProcess> process;
    std::vector<std::string> argv;
    bool alive = false;
    /// False after `drain`: not in the ring, not revived, not counted in
    /// all_alive.  `add` re-admits.
    bool member = true;
    int restarts = 0;
    std::uint64_t routedJobs = 0;
    std::uint64_t transportErrors = 0;
    /// Journal replay figures reported by the shard's health op at its
    /// most recent (re)boot -- the cluster-visible recovery evidence.
    std::uint64_t lastReplayedRecords = 0;
    std::uint64_t lastRecoveredJobs = 0;
    /// Restart hygiene: why it last died, the recent death reasons
    /// (bounded), when the backoff allows the next respawn, and the
    /// consecutive-death streak driving the exponent.
    std::string lastRestartReason;
    std::vector<std::string> restartHistory;
    double nextRestartAt = 0.0;
    int backoffStreak = 0;
    double lastReviveAt = 0.0;
  };

  /// Where a router job id routes, plus everything needed to re-pin it to
  /// a survivor when that shard is unrecoverable: the consistent-hash key
  /// and an async resubmission of the original request (a cache hit or
  /// coalesce on the inheritor, never a second engine run).
  struct JobRoute {
    int shard = -1;
    std::uint64_t localId = 0;
    std::string key;
    std::string resubmitLine;
    bool terminal = false;  ///< Observed in a terminal state (drain skips it).
  };

  struct ExploreRoute {
    int shard = -1;
    std::uint64_t localId = 0;
    std::string rawLine;  ///< Original request, for failover re-pinning.
  };

  /// Thrown internally for cluster-level failures; becomes a structured
  /// {"error":{"code":...}} response.
  struct RouterError {
    std::string code;
    std::string message;
  };

  [[nodiscard]] service::Json handle(const service::Json& request,
                                     const std::string& rawLine);
  [[nodiscard]] service::Json handleSynthesize(const service::Json& request,
                                               const std::string& rawLine);
  [[nodiscard]] service::Json handleSweep(const service::Json& request);
  [[nodiscard]] service::Json handleWaitOrCancel(const service::Json& request,
                                                 const std::string& op);
  [[nodiscard]] service::Json handleMultiWait(const service::Json& request);
  [[nodiscard]] service::Json handleExplore(const std::string& rawLine);
  [[nodiscard]] service::Json handleExploreResult(const service::Json& request);
  [[nodiscard]] service::Json handleDrain(const service::Json& request);
  [[nodiscard]] service::Json handleAdd(const service::Json& request);
  [[nodiscard]] service::Json handleStats();
  [[nodiscard]] service::Json handleHealth();
  [[nodiscard]] service::Json handleShutdown();
  [[nodiscard]] service::Json forwardToAnyShard(const std::string& rawLine);

  /// The routing key for one synthesize/sweep entry: the job's cache key,
  /// or a hash key over the entry text for no_cache jobs.
  [[nodiscard]] std::string routingKeyFor(const service::Json& entry) const;

  /// Pick the live member shard for `key`, reviving its home shard first
  /// if that is down (respecting backoff; a cluster with nothing else
  /// alive force-revives).  Throws RouterError{"no_live_shards"} when
  /// nothing can serve.  Counts a reroute when the answer is not home.
  [[nodiscard]] int routeLive(const std::string& key);

  /// One request/response over a shard's pipe.  nullopt marks the shard
  /// dead (EOF, broken pipe, or timeout -> kill).
  [[nodiscard]] std::optional<std::string> forwardRaw(int shard,
                                                      const std::string& line);
  /// forwardRaw with revive-and-retry until the route is exhausted.
  /// Returns the serving shard and its parsed response.
  [[nodiscard]] std::pair<int, service::Json> forwardRouted(
      const std::string& key, const std::string& line);

  void markDead(int shard, const std::string& reason);
  /// Respawn a dead member shard (journal replay) within the restart
  /// budget and -- unless ignoreBackoff -- past its backoff deadline;
  /// true when the shard is alive afterwards.
  [[nodiscard]] bool reviveShard(int shard, bool ignoreBackoff = false);
  void spawnShard(int shard);  ///< Throws on spawn/health-check failure.
  /// The worker argv for shard `s` (journal dir, shared cache appended).
  [[nodiscard]] std::vector<std::string> buildShardArgv(int shard) const;

  /// Re-pin a non-terminal job whose shard is unrecoverable: resubmit on
  /// the ring (async), remap the route, return the inheriting shard.
  int failoverJob(std::uint64_t routerId, JobRoute& route);
  /// Note a wait/cancel response's state so drains skip settled jobs.
  void noteTerminal(JobRoute& route, const service::Json& response);

  [[nodiscard]] std::vector<bool> routableMask() const;  ///< alive && member.
  [[nodiscard]] std::uint64_t mapNewJob(int shard, std::uint64_t localId,
                                        std::string key,
                                        std::string resubmitLine,
                                        bool terminal);
  [[nodiscard]] double nowSeconds() const;

  RouterOptions options_;
  std::string techPrint_;
  ShardRing ring_;
  std::vector<Shard> shards_;
  bool shutdown_ = false;

  std::uint64_t nextJobId_ = 1;
  std::uint64_t nextExploreId_ = 1;
  std::unordered_map<std::uint64_t, JobRoute> jobRoute_;
  std::unordered_map<std::uint64_t, ExploreRoute> exploreRoute_;
  std::uint64_t rerouted_ = 0;
  std::uint64_t jobFailovers_ = 0;
  std::uint64_t exploreFailovers_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t adds_ = 0;
  std::mt19937_64 backoffRng_;
};

}  // namespace lo::cluster
