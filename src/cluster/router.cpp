#include "cluster/router.hpp"

#include <signal.h>

#include <algorithm>
#include <exception>
#include <filesystem>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"

namespace lo::cluster {

namespace {

using service::Json;

Json errorJson(const std::string& why) {
  Json out = Json::object();
  out.set("ok", false);
  out.set("error", why);
  return out;
}

Json structuredErrorJson(const std::string& code, const std::string& message) {
  Json error = Json::object();
  error.set("code", code);
  error.set("message", message);
  Json out = Json::object();
  out.set("ok", false);
  out.set("error", std::move(error));
  return out;
}

std::string shardLabel(int shard) { return "shard" + std::to_string(shard); }

/// Error text of a shard response, whichever shape (string or structured
/// object) the shard used.
std::string errorTextOf(const Json& response, const std::string& fallback) {
  const Json* error = response.find("error");
  if (error == nullptr) return fallback;
  if (error->isObject()) return error->at("message").asString(fallback);
  return error->asString(fallback);
}

/// A sweep outcome standing in for a job the cluster could not place.
Json failedOutcome(const std::string& why) {
  Json out = Json::object();
  out.set("ok", false);
  out.set("state", "failed");
  out.set("error", why);
  return out;
}

/// Recursively add src's numeric leaves into dst, creating objects as
/// needed.  This is how per-shard stats sections become cluster totals.
void sumInto(Json& dst, const Json& src) {
  for (const auto& [key, value] : src.members()) {
    if (value.type() == Json::Type::kNumber) {
      const Json* prior = dst.find(key);
      dst.set(key, (prior != nullptr ? prior->asDouble() : 0.0) + value.asDouble());
    } else if (value.isObject()) {
      Json child = Json::object();
      if (const Json* prior = dst.find(key); prior != nullptr && prior->isObject()) {
        child = *prior;
      }
      sumInto(child, value);
      dst.set(key, std::move(child));
    }
  }
}

}  // namespace

ClusterRouter::ClusterRouter(RouterOptions options)
    : options_(std::move(options)),
      techPrint_(service::ResultCache::techFingerprint(options_.technology)),
      ring_(options_.shards, options_.vnodesPerShard) {
  if (options_.workerArgv.empty()) {
    throw std::invalid_argument("ClusterRouter needs a worker argv");
  }
  shards_.resize(static_cast<std::size_t>(options_.shards));
  if (!options_.cacheDir.empty()) {
    std::filesystem::create_directories(options_.cacheDir);
  }
  for (int s = 0; s < options_.shards; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.process = std::make_unique<ShardProcess>();
    shard.argv = options_.workerArgv;
    if (!options_.journalRoot.empty()) {
      const std::string dir = options_.journalRoot + "/" + shardLabel(s);
      std::filesystem::create_directories(dir);
      shard.argv.push_back("--journal");
      shard.argv.push_back(dir);
    }
    if (!options_.cacheDir.empty()) {
      shard.argv.push_back("--cache-dir");
      shard.argv.push_back(options_.cacheDir);
    }
    spawnShard(s);
  }
}

ClusterRouter::~ClusterRouter() {
  // terminate() closes the shard's stdin; a healthy daemon drains its
  // serve loop and exits cleanly, journal intact for the next boot.
  for (Shard& shard : shards_) {
    if (shard.process) shard.process->terminate(2.0);
  }
}

void ClusterRouter::spawnShard(int shard) {
  Shard& st = shards_[static_cast<std::size_t>(shard)];
  st.alive = false;
  st.process->spawn(st.argv);
  // The boot health check doubles as the harvest point for the journal
  // replay evidence this boot produced (surfaced in cluster health).
  std::string line;
  const double bootTimeout = std::max(30.0, options_.requestTimeoutSeconds);
  if (!st.process->writeLine(R"({"op":"health"})") ||
      st.process->readLine(line, bootTimeout) != ReadStatus::kOk) {
    st.process->kill9();
    throw std::runtime_error(shardLabel(shard) + " failed its boot health check");
  }
  try {
    const Json health = Json::parse(line);
    const Json& journal = health.at("health").at("journal");
    st.lastReplayedRecords = journal.at("replayed_records").asUint64();
    st.lastRecoveredJobs = journal.at("recovered_jobs").asUint64();
  } catch (const service::JsonParseError&) {
    st.process->kill9();
    throw std::runtime_error(shardLabel(shard) + " answered garbage at boot");
  }
  st.alive = true;
}

void ClusterRouter::markDead(int shard) {
  Shard& st = shards_[static_cast<std::size_t>(shard)];
  if (st.alive) ++st.transportErrors;
  st.alive = false;
  // A wedged child must actually be gone before a respawn re-opens its
  // journal; kill9 is a no-op when the child already exited.
  st.process->kill9();
}

bool ClusterRouter::reviveShard(int shard) {
  Shard& st = shards_[static_cast<std::size_t>(shard)];
  if (st.alive) return true;
  if (!options_.restartDeadShards) return false;
  if (st.restarts >= options_.maxRestartsPerShard) return false;
  ++st.restarts;
  try {
    spawnShard(shard);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

std::vector<bool> ClusterRouter::aliveMask() const {
  std::vector<bool> mask;
  mask.reserve(shards_.size());
  for (const Shard& shard : shards_) mask.push_back(shard.alive);
  return mask;
}

int ClusterRouter::routeLive(const std::string& key) {
  const int home = ring_.ownerOf(key);
  // Prefer healing the home shard over scattering its keys: a revived
  // shard replays its journal and keeps serving its own ranges.
  if (!shards_[static_cast<std::size_t>(home)].alive) (void)reviveShard(home);
  const int target = ring_.routeOf(key, aliveMask());
  if (target < 0) {
    throw RouterError{"no_live_shards",
                      "every shard is down and none could be restarted"};
  }
  if (target != home) ++rerouted_;
  return target;
}

std::optional<std::string> ClusterRouter::forwardRaw(int shard,
                                                     const std::string& line) {
  Shard& st = shards_[static_cast<std::size_t>(shard)];
  if (!st.alive) return std::nullopt;
  if (!st.process->writeLine(line)) {
    markDead(shard);
    return std::nullopt;
  }
  std::string response;
  if (st.process->readLine(response, options_.requestTimeoutSeconds) !=
      ReadStatus::kOk) {
    markDead(shard);
    return std::nullopt;
  }
  return response;
}

std::pair<int, Json> ClusterRouter::forwardRouted(const std::string& key,
                                                  const std::string& line) {
  // Every failed attempt consumes a shard life (restart budget or the
  // shard itself), so this loop terminates: either some attempt lands on
  // a live shard or routeLive runs out and throws no_live_shards.
  const int maxAttempts =
      shardCount() * (std::max(0, options_.maxRestartsPerShard) + 2);
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    const int shard = routeLive(key);
    if (std::optional<std::string> response = forwardRaw(shard, line)) {
      ++shards_[static_cast<std::size_t>(shard)].routedJobs;
      return {shard, Json::parse(*response)};
    }
  }
  throw RouterError{"no_live_shards", "request retries exhausted the cluster"};
}

std::uint64_t ClusterRouter::mapNewJob(int shard, std::uint64_t localId) {
  const std::uint64_t routerId = nextJobId_++;
  jobRoute_[routerId] = {shard, localId};
  return routerId;
}

std::string ClusterRouter::routingKeyFor(const Json& entry) const {
  const service::JobRequest job = service::parseJobRequest(entry);
  if (!job.bypassCache) {
    return service::ResultCache::keyFor(job.options, job.specs, job.corner,
                                        techPrint_);
  }
  // no_cache jobs have no cache identity to co-locate; spread them by
  // request text so repeated bypass runs at least balance.
  return "raw:" + entry.dump();
}

std::string ClusterRouter::handleLine(const std::string& line) {
  Json response;
  try {
    if (line.size() > service::kMaxRequestLineBytes) {
      response = errorJson("request line too long (" +
                           std::to_string(line.size()) + " bytes, limit " +
                           std::to_string(service::kMaxRequestLineBytes) + ")");
    } else {
      response = handle(Json::parse(line), line);
    }
  } catch (const RouterError& e) {
    response = structuredErrorJson(e.code, e.message);
  } catch (const std::exception& e) {
    response = errorJson(e.what());
  }
  return response.dump();
}

Json ClusterRouter::handle(const Json& request, const std::string& rawLine) {
  if (!request.isObject()) return errorJson("request must be a JSON object");
  const std::string op = request.at("op").asString();
  if (op == "synthesize") return handleSynthesize(request, rawLine);
  if (op == "sweep") return handleSweep(request);
  if (op == "wait" || op == "cancel") return handleWaitOrCancel(request, op);
  if (op == "explore") return handleExplore(rawLine);
  if (op == "explore_result") return handleExploreResult(request);
  if (op == "stats") return handleStats();
  if (op == "health") return handleHealth();
  if (op == "topologies") return forwardToAnyShard(rawLine);
  if (op == "shutdown") return handleShutdown();

  // Any other op is forwarded verbatim: shards grow ops through
  // ServiceProtocol::registerOp (e.g. "verify") without a router release.
  // Ops that parse as a job request route by cache key so they land on the
  // shard holding that job's cached result; anything else spreads by
  // request text.  A genuinely unknown op comes back as the shard's own
  // structured unknown_op error, which lists what the daemon really
  // speaks.
  std::string key;
  try {
    key = routingKeyFor(request);
  } catch (const std::exception&) {
    key = "raw:" + rawLine;
  }
  auto [shard, response] = forwardRouted(key, rawLine);
  response.set("shard", shard);
  return response;
}

Json ClusterRouter::handleSynthesize(const Json& request,
                                     const std::string& rawLine) {
  const std::string key = routingKeyFor(request);
  auto [shard, response] = forwardRouted(key, rawLine);
  // Shard-local job ids collide across shards; re-issue from the router's
  // id space so wait/cancel can find their way back.
  if (response.at("ok").asBool()) {
    if (const Json* id = response.find("id")) {
      response.set("id", mapNewJob(shard, id->asUint64()));
    }
  }
  response.set("shard", shard);
  return response;
}

Json ClusterRouter::handleWaitOrCancel(const Json& request,
                                       const std::string& op) {
  const std::uint64_t routerId = request.at("id").asUint64();
  const auto route = jobRoute_.find(routerId);
  if (route == jobRoute_.end()) {
    return errorJson("\"" + op + "\" needs a known job \"id\"");
  }
  const auto [shard, localId] = route->second;
  Json forward = request;
  forward.set("id", localId);
  const std::string line = forward.dump();

  std::optional<std::string> raw;
  if (shards_[static_cast<std::size_t>(shard)].alive || reviveShard(shard)) {
    raw = forwardRaw(shard, line);
  }
  if (!raw && reviveShard(shard)) {
    // The shard died holding this job; its journal replay re-enqueued the
    // job under the same local id, so the identical wait/cancel works.
    raw = forwardRaw(shard, line);
  }
  if (!raw) {
    throw RouterError{"shard_down", shardLabel(shard) + " is down; job " +
                                        std::to_string(routerId) +
                                        " is unavailable until it restarts"};
  }
  Json response = Json::parse(*raw);
  if (response.find("id") != nullptr) response.set("id", routerId);
  response.set("shard", shard);
  return response;
}

Json ClusterRouter::handleSweep(const Json& request) {
  const Json* jobs = request.find("jobs");
  if (jobs == nullptr || !jobs->isArray()) {
    return errorJson("\"sweep\" needs a \"jobs\" array");
  }
  const std::vector<Json>& entries = jobs->items();
  const bool trace = request.at("trace").asBool();
  const bool summary = request.at("summary").asBool();

  // Key derivation (parse + canonicalise + hash, a few us per entry) is
  // the router's largest serial per-job cost, and it is embarrassingly
  // parallel: fan it over a small thread pool so a wide sweep's routing
  // overhead shrinks with the cores available instead of growing with the
  // batch.  A bad entry's parse error is captured and rethrown after the
  // join, same surface as the serial loop had.
  std::vector<std::string> keys(entries.size());
  {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t nThreads =
        std::min({hw, entries.size() / 64 + 1, std::size_t{8}});
    if (nThreads <= 1) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        keys[i] = routingKeyFor(entries[i]);
      }
    } else {
      std::vector<std::thread> workers;
      std::vector<std::exception_ptr> errors(nThreads);
      for (std::size_t t = 0; t < nThreads; ++t) {
        workers.emplace_back([&, t] {
          try {
            for (std::size_t i = t; i < entries.size(); i += nThreads) {
              keys[i] = routingKeyFor(entries[i]);
            }
          } catch (...) {
            errors[t] = std::current_exception();
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      for (const std::exception_ptr& error : errors) {
        if (error) std::rethrow_exception(error);
      }
    }
  }

  // Partition by routed shard; routeLive revives dead home shards up
  // front so the partition is against the healthiest cluster available.
  std::vector<std::vector<std::size_t>> byShard(shards_.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    byShard[static_cast<std::size_t>(routeLive(keys[i]))].push_back(i);
  }

  struct SubSweep {
    int shard = -1;
    std::vector<std::size_t> indices;
    std::string requestLine;
    std::optional<std::string> responseLine;
    // Parsed in the I/O thread, so N sub-responses decode concurrently;
    // empty with responseLine set means the shard answered garbage, which
    // the recovery pass treats exactly like a dead pipe.
    std::optional<Json> response;
  };
  std::vector<SubSweep> subs;
  for (int s = 0; s < shardCount(); ++s) {
    std::vector<std::size_t>& indices = byShard[static_cast<std::size_t>(s)];
    if (indices.empty()) continue;
    SubSweep sub;
    sub.shard = s;
    sub.indices = std::move(indices);
    Json subRequest = Json::object();
    subRequest.set("op", "sweep");
    if (trace) subRequest.set("trace", true);
    if (summary) subRequest.set("summary", true);
    Json subJobs = Json::array();
    for (std::size_t i : sub.indices) subJobs.push(entries[i]);
    subRequest.set("jobs", std::move(subJobs));
    sub.requestLine = subRequest.dump();
    subs.push_back(std::move(sub));
  }

  // Happy-path fan-out: one I/O thread per shard, so N shards compute --
  // and, just as important, serialise/parse -- their sub-sweeps
  // concurrently.  Threads touch only their own shard's pipe and their
  // own SubSweep; all router state mutation happens after the join.
  {
    std::vector<std::thread> workers;
    workers.reserve(subs.size());
    for (SubSweep& sub : subs) {
      workers.emplace_back([this, &sub] {
        ShardProcess& process = *shards_[static_cast<std::size_t>(sub.shard)].process;
        if (!process.writeLine(sub.requestLine)) return;
        // One sub-sweep is many jobs behind one response; scale the
        // wedge deadline with the batch.
        const double timeout =
            options_.requestTimeoutSeconds <= 0
                ? 0
                : options_.requestTimeoutSeconds *
                      static_cast<double>(sub.indices.size());
        std::string line;
        if (process.readLine(line, timeout) == ReadStatus::kOk) {
          sub.responseLine = std::move(line);
          try {
            sub.response = Json::parse(*sub.responseLine);
          } catch (const std::exception&) {
            // Leave response empty: garbage on the pipe is shard failure.
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  // Recovery pass, sequential: a failed sub-sweep first retries on its
  // revived owner (journal replay turns the resend into coalesces and
  // cache hits, not double runs); if the shard stays down, its entries
  // re-route one by one to the survivors.
  std::vector<Json> placed(entries.size());
  for (SubSweep& sub : subs) {
    if (!sub.response) {
      markDead(sub.shard);
      if (reviveShard(sub.shard)) {
        sub.responseLine = forwardRaw(sub.shard, sub.requestLine);
        if (sub.responseLine) {
          try {
            sub.response = Json::parse(*sub.responseLine);
          } catch (const std::exception&) {
          }
        }
      }
    }

    bool delivered = false;
    if (sub.response) {
      const Json& response = *sub.response;
      const Json* outcomes = response.find("outcomes");
      if (response.at("ok").asBool() && outcomes != nullptr &&
          outcomes->isArray() &&
          outcomes->items().size() == sub.indices.size()) {
        shards_[static_cast<std::size_t>(sub.shard)].routedJobs +=
            sub.indices.size();
        for (std::size_t j = 0; j < sub.indices.size(); ++j) {
          Json outcome = outcomes->items()[j];
          if (const Json* id = outcome.find("id")) {
            outcome.set("id", mapNewJob(sub.shard, id->asUint64()));
          }
          outcome.set("shard", sub.shard);
          placed[sub.indices[j]] = std::move(outcome);
        }
        delivered = true;
      } else {
        const std::string why = errorTextOf(response, "sweep failed");
        for (std::size_t idx : sub.indices) placed[idx] = failedOutcome(why);
        delivered = true;
      }
    }
    if (delivered) continue;

    for (std::size_t idx : sub.indices) {
      try {
        Json one = Json::object();
        one.set("op", "sweep");
        if (trace) one.set("trace", true);
        if (summary) one.set("summary", true);
        Json oneJobs = Json::array();
        oneJobs.push(entries[idx]);
        one.set("jobs", std::move(oneJobs));
        auto [shard, response] = forwardRouted(keys[idx], one.dump());
        const Json* outcomes = response.find("outcomes");
        if (response.at("ok").asBool() && outcomes != nullptr &&
            outcomes->isArray() && outcomes->items().size() == 1) {
          Json outcome = outcomes->items().front();
          if (const Json* id = outcome.find("id")) {
            outcome.set("id", mapNewJob(shard, id->asUint64()));
          }
          outcome.set("shard", shard);
          placed[idx] = std::move(outcome);
        } else {
          placed[idx] = failedOutcome(errorTextOf(response, "sweep failed"));
        }
      } catch (const RouterError& e) {
        placed[idx] = failedOutcome(e.code + ": " + e.message);
      }
    }
  }

  Json outcomes = Json::array();
  for (Json& outcome : placed) outcomes.push(std::move(outcome));
  Json out = Json::object();
  out.set("ok", true);
  out.set("outcomes", std::move(outcomes));
  return out;
}

Json ClusterRouter::handleExplore(const std::string& rawLine) {
  // Explorations are not content-addressed; balance them by request text.
  auto [shard, response] = forwardRouted("raw:" + rawLine, rawLine);
  if (response.at("ok").asBool()) {
    if (const Json* id = response.find("explore_id")) {
      const std::uint64_t routerId = nextExploreId_++;
      exploreRoute_[routerId] = {shard, id->asUint64()};
      response.set("explore_id", routerId);
    }
  }
  response.set("shard", shard);
  return response;
}

Json ClusterRouter::handleExploreResult(const Json& request) {
  const std::uint64_t routerId = request.at("explore_id").asUint64();
  const auto route = exploreRoute_.find(routerId);
  if (route == exploreRoute_.end()) {
    return errorJson("\"explore_result\" needs a known \"explore_id\"");
  }
  const auto [shard, localId] = route->second;
  if (!shards_[static_cast<std::size_t>(shard)].alive && !reviveShard(shard)) {
    throw RouterError{"shard_down",
                      shardLabel(shard) + " is down; exploration " +
                          std::to_string(routerId) + " is unavailable"};
  }
  Json forward = request;
  forward.set("explore_id", localId);
  std::optional<std::string> raw = forwardRaw(shard, forward.dump());
  if (!raw) {
    // Explorations live in shard memory, not the journal: a crash loses
    // them, and the honest answer is an error, not a silent re-run.
    throw RouterError{"shard_down", shardLabel(shard) + " died holding " +
                                        "exploration " +
                                        std::to_string(routerId)};
  }
  Json response = Json::parse(*raw);
  if (response.find("explore_id") != nullptr) {
    response.set("explore_id", routerId);
  }
  response.set("shard", shard);
  return response;
}

Json ClusterRouter::forwardToAnyShard(const std::string& rawLine) {
  auto [shard, response] = forwardRouted("any", rawLine);
  response.set("shard", shard);
  return response;
}

Json ClusterRouter::handleStats() {
  Json cluster = Json::object();
  Json perShard = Json::object();
  for (int s = 0; s < shardCount(); ++s) {
    Shard& st = shards_[static_cast<std::size_t>(s)];
    std::optional<std::string> raw;
    if (st.alive || reviveShard(s)) raw = forwardRaw(s, R"({"op":"stats"})");
    if (!raw) {
      Json down = Json::object();
      down.set("down", true);
      perShard.set(shardLabel(s), std::move(down));
      continue;
    }
    const Json response = Json::parse(*raw);
    const Json& stats = response.at("stats");
    // Cluster totals sum the scheduler-shaped sections; registered extras
    // (e.g. "explorations") stay per-shard only -- their insides are not
    // meaningfully additive.
    for (const char* section : {"jobs", "stages", "cache", "queue"}) {
      if (const Json* body = stats.find(section); body && body->isObject()) {
        Json total = Json::object();
        if (const Json* prior = cluster.find(section)) total = *prior;
        sumInto(total, *body);
        cluster.set(section, std::move(total));
      }
    }
    perShard.set(shardLabel(s), stats);
  }

  Json router = Json::object();
  router.set("shards", static_cast<std::uint64_t>(shardCount()));
  std::uint64_t aliveCount = 0;
  std::uint64_t routedJobs = 0;
  std::uint64_t transportErrors = 0;
  for (const Shard& shard : shards_) {
    if (shard.alive) ++aliveCount;
    routedJobs += shard.routedJobs;
    transportErrors += shard.transportErrors;
  }
  router.set("alive", aliveCount);
  router.set("routed_jobs", routedJobs);
  router.set("rerouted", rerouted_);
  router.set("restarts", restarts());
  router.set("transport_errors", transportErrors);

  Json stats = Json::object();
  stats.set("cluster", std::move(cluster));
  stats.set("router", std::move(router));
  stats.set("shards", std::move(perShard));
  Json out = Json::object();
  out.set("ok", true);
  out.set("stats", std::move(stats));
  return out;
}

Json ClusterRouter::handleHealth() {
  // Health is observability, not surgery: it reports dead shards rather
  // than reviving them (the next routed job does the healing).
  Json perShard = Json::object();
  std::uint64_t aliveCount = 0;
  for (int s = 0; s < shardCount(); ++s) {
    Shard& st = shards_[static_cast<std::size_t>(s)];
    std::optional<std::string> raw;
    if (st.alive) raw = forwardRaw(s, R"({"op":"health"})");
    Json entry = Json::object();
    entry.set("alive", st.alive);
    entry.set("pid", static_cast<std::int64_t>(st.process->pid()));
    entry.set("restarts", static_cast<std::uint64_t>(st.restarts));
    entry.set("routed_jobs", st.routedJobs);
    entry.set("transport_errors", st.transportErrors);
    entry.set("replayed_records", st.lastReplayedRecords);
    entry.set("recovered_jobs", st.lastRecoveredJobs);
    if (raw) {
      const Json response = Json::parse(*raw);
      entry.set("health", response.at("health"));
    }
    if (st.alive) ++aliveCount;
    perShard.set(shardLabel(s), std::move(entry));
  }

  Json cluster = Json::object();
  cluster.set("shards", static_cast<std::uint64_t>(shardCount()));
  cluster.set("alive", aliveCount);
  cluster.set("all_alive",
              aliveCount == static_cast<std::uint64_t>(shardCount()));
  cluster.set("restarts", restarts());
  cluster.set("rerouted", rerouted_);

  Json health = Json::object();
  health.set("cluster", std::move(cluster));
  health.set("shards", std::move(perShard));
  Json out = Json::object();
  out.set("ok", true);
  out.set("health", std::move(health));
  return out;
}

Json ClusterRouter::handleShutdown() {
  shutdown_ = true;
  std::uint64_t stopped = 0;
  for (int s = 0; s < shardCount(); ++s) {
    Shard& st = shards_[static_cast<std::size_t>(s)];
    if (st.alive) {
      // Polite first: the shard acks and drains; terminate() then closes
      // its stdin and escalates only if it lingers.
      (void)forwardRaw(s, R"({"op":"shutdown"})");
      ++stopped;
    }
    st.process->terminate(2.0);
    st.alive = false;
  }
  Json out = Json::object();
  out.set("ok", true);
  out.set("shutting_down", true);
  out.set("shards_stopped", stopped);
  return out;
}

void ClusterRouter::serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    out << handleLine(line) << "\n" << std::flush;
    if (shutdown_) break;
  }
}

pid_t ClusterRouter::shardPid(int shard) const {
  return shards_[static_cast<std::size_t>(shard)].process->pid();
}

void ClusterRouter::killShard(int shard) {
  // Signal only, no fd surgery: this is called from fault-injection
  // threads while the router may be mid-request on the same shard, and
  // the EOF path is exactly the failure the router is built to absorb.
  const pid_t pid = shards_[static_cast<std::size_t>(shard)].process->pid();
  if (pid > 0) ::kill(pid, SIGKILL);
}

std::uint64_t ClusterRouter::restarts() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<std::uint64_t>(shard.restarts);
  }
  return total;
}

}  // namespace lo::cluster
