#include "cluster/router.hpp"

#include <poll.h>
#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <exception>
#include <filesystem>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"

namespace lo::cluster {

namespace {

using service::Json;

Json errorJson(const std::string& why) {
  Json out = Json::object();
  out.set("ok", false);
  out.set("error", why);
  return out;
}

Json structuredErrorJson(const std::string& code, const std::string& message) {
  Json error = Json::object();
  error.set("code", code);
  error.set("message", message);
  Json out = Json::object();
  out.set("ok", false);
  out.set("error", std::move(error));
  return out;
}

std::string shardLabel(int shard) { return "shard" + std::to_string(shard); }

/// Error text of a shard response, whichever shape (string or structured
/// object) the shard used.
std::string errorTextOf(const Json& response, const std::string& fallback) {
  const Json* error = response.find("error");
  if (error == nullptr) return fallback;
  if (error->isObject()) return error->at("message").asString(fallback);
  return error->asString(fallback);
}

/// A sweep outcome standing in for a job the cluster could not place.
Json failedOutcome(const std::string& why) {
  Json out = Json::object();
  out.set("ok", false);
  out.set("state", "failed");
  out.set("error", why);
  return out;
}

/// Recursively add src's numeric leaves into dst, creating objects as
/// needed.  This is how per-shard stats sections become cluster totals.
void sumInto(Json& dst, const Json& src) {
  for (const auto& [key, value] : src.members()) {
    if (value.type() == Json::Type::kNumber) {
      const Json* prior = dst.find(key);
      dst.set(key, (prior != nullptr ? prior->asDouble() : 0.0) + value.asDouble());
    } else if (value.isObject()) {
      Json child = Json::object();
      if (const Json* prior = dst.find(key); prior != nullptr && prior->isObject()) {
        child = *prior;
      }
      sumInto(child, value);
      dst.set(key, std::move(child));
    }
  }
}

/// The shard forgot this exploration (it finished before a crash, so the
/// journal replay had nothing to restart) -- failover's re-run is the
/// answer.
bool unknownExploration(const Json& response) {
  if (response.at("ok").asBool()) return false;
  return errorTextOf(response, "").find("unknown exploration id") !=
         std::string::npos;
}

/// Same story for jobs: a reboot replays only unfinished work, so a job
/// that settled before the crash answers "unknown job id" afterwards.
/// Failover resubmits it and the shared store answers from cache.
bool unknownJob(const Json& response) {
  if (response.at("ok").asBool()) return false;
  return errorTextOf(response, "").find("unknown job id") != std::string::npos;
}

/// An async resubmission of a synthesize-shaped request: the failover
/// path's "run it again over there" line (a cache hit or coalesce on the
/// inheritor, never a second engine run of a finished job).
std::string asyncResubmitLine(const Json& jobShaped) {
  Json resubmit = jobShaped;
  resubmit.set("op", "synthesize");
  resubmit.set("async", true);
  return resubmit.dump();
}

/// True when a wait/synthesize response reports a settled job.
bool terminalState(const Json& response) {
  if (!response.at("ok").asBool()) return false;
  if (response.find("cancelled") != nullptr) return true;
  const std::string state = response.at("state").asString();
  return !state.empty() && state != "queued" && state != "running";
}

}  // namespace

ClusterRouter::ClusterRouter(RouterOptions options)
    : options_(std::move(options)),
      techPrint_(service::ResultCache::techFingerprint(options_.technology)),
      ring_(options_.shards, options_.vnodesPerShard),
      backoffRng_(options_.backoffJitterSeed) {
  if (options_.workerArgv.empty()) {
    throw std::invalid_argument("ClusterRouter needs a worker argv");
  }
  shards_.resize(static_cast<std::size_t>(options_.shards));
  if (!options_.cacheDir.empty()) {
    std::filesystem::create_directories(options_.cacheDir);
  }
  for (int s = 0; s < options_.shards; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.process = std::make_unique<ShardProcess>();
    shard.argv = buildShardArgv(s);
    spawnShard(s);
  }
}

ClusterRouter::~ClusterRouter() {
  // terminate() closes the shard's stdin; a healthy daemon drains its
  // serve loop and exits cleanly, journal intact for the next boot.
  for (Shard& shard : shards_) {
    if (shard.process) shard.process->terminate(2.0);
  }
}

std::vector<std::string> ClusterRouter::buildShardArgv(int shard) const {
  std::vector<std::string> argv = options_.workerArgv;
  if (!options_.journalRoot.empty()) {
    const std::string dir = options_.journalRoot + "/" + shardLabel(shard);
    std::filesystem::create_directories(dir);
    argv.push_back("--journal");
    argv.push_back(dir);
  }
  if (!options_.cacheDir.empty()) {
    argv.push_back("--cache-dir");
    argv.push_back(options_.cacheDir);
  }
  return argv;
}

double ClusterRouter::nowSeconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ClusterRouter::spawnShard(int shard) {
  Shard& st = shards_[static_cast<std::size_t>(shard)];
  st.alive = false;
  st.process->spawn(st.argv);
  // The boot health check doubles as the harvest point for the journal
  // replay evidence this boot produced (surfaced in cluster health).
  std::string line;
  const double bootTimeout = std::max(30.0, options_.requestTimeoutSeconds);
  if (!st.process->writeLine(R"({"op":"health"})") ||
      st.process->readLine(line, bootTimeout) != ReadStatus::kOk) {
    st.process->kill9();
    throw std::runtime_error(shardLabel(shard) + " failed its boot health check");
  }
  try {
    const Json health = Json::parse(line);
    const Json& journal = health.at("health").at("journal");
    st.lastReplayedRecords = journal.at("replayed_records").asUint64();
    st.lastRecoveredJobs = journal.at("recovered_jobs").asUint64();
  } catch (const service::JsonParseError&) {
    st.process->kill9();
    throw std::runtime_error(shardLabel(shard) + " answered garbage at boot");
  }
  st.alive = true;
  st.lastReviveAt = nowSeconds();
}

void ClusterRouter::markDead(int shard, const std::string& reason) {
  Shard& st = shards_[static_cast<std::size_t>(shard)];
  if (st.alive) {
    ++st.transportErrors;
    const double now = nowSeconds();
    // A shard that stayed healthy for a while earned a clean slate: only
    // rapid-fire deaths escalate the backoff exponent.
    if (now - st.lastReviveAt > options_.restartBackoffMaxSeconds) {
      st.backoffStreak = 0;
    }
    st.lastRestartReason = reason;
    st.restartHistory.push_back(reason);
    if (st.restartHistory.size() > 8) {
      st.restartHistory.erase(st.restartHistory.begin());
    }
    double delay = 0.0;
    if (st.backoffStreak > 0) {
      delay = std::min(options_.restartBackoffMaxSeconds,
                       options_.restartBackoffBaseSeconds *
                           std::pow(2.0, st.backoffStreak - 1));
      std::uniform_real_distribution<double> jitter(0.75, 1.25);
      delay *= jitter(backoffRng_);
    }
    st.nextRestartAt = now + delay;
    ++st.backoffStreak;
  }
  st.alive = false;
  // A wedged child must actually be gone before a respawn re-opens its
  // journal; kill9 is a no-op when the child already exited.
  st.process->kill9();
}

bool ClusterRouter::reviveShard(int shard, bool ignoreBackoff) {
  Shard& st = shards_[static_cast<std::size_t>(shard)];
  if (st.alive) return true;
  if (!st.member) return false;
  if (!options_.restartDeadShards) return false;
  if (st.restarts >= options_.maxRestartsPerShard) return false;
  if (!ignoreBackoff && nowSeconds() < st.nextRestartAt) return false;
  ++st.restarts;
  try {
    spawnShard(shard);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

std::vector<bool> ClusterRouter::routableMask() const {
  std::vector<bool> mask;
  mask.reserve(shards_.size());
  for (const Shard& shard : shards_) mask.push_back(shard.alive && shard.member);
  return mask;
}

int ClusterRouter::memberCount() const {
  int count = 0;
  for (const Shard& shard : shards_) count += shard.member ? 1 : 0;
  return count;
}

int ClusterRouter::routeLive(const std::string& key) {
  const int home = ring_.ownerOf(key);
  Shard& homeShard = shards_[static_cast<std::size_t>(home)];
  // Prefer healing the home shard over scattering its keys: a revived
  // shard replays its journal and keeps serving its own ranges.
  if (homeShard.member && !homeShard.alive) (void)reviveShard(home);
  int target = ring_.routeOf(key, routableMask());
  if (target < 0) {
    // Nothing routable: backoff hygiene yields to availability.  Force-
    // revive members in index order until one comes back.
    for (int s = 0; s < shardCount(); ++s) {
      if (shards_[static_cast<std::size_t>(s)].member &&
          reviveShard(s, /*ignoreBackoff=*/true)) {
        break;
      }
    }
    target = ring_.routeOf(key, routableMask());
  }
  if (target < 0) {
    throw RouterError{"no_live_shards",
                      "every shard is down and none could be restarted"};
  }
  if (target != home) ++rerouted_;
  return target;
}

std::optional<std::string> ClusterRouter::forwardRaw(int shard,
                                                     const std::string& line) {
  Shard& st = shards_[static_cast<std::size_t>(shard)];
  if (!st.alive) return std::nullopt;
  if (!st.process->writeLine(line)) {
    markDead(shard, "write failed (pipe closed)");
    return std::nullopt;
  }
  std::string response;
  const ReadStatus status =
      st.process->readLine(response, options_.requestTimeoutSeconds);
  if (status != ReadStatus::kOk) {
    markDead(shard, status == ReadStatus::kTimeout
                        ? "request timeout (wedged)"
                        : "eof (process died)");
    return std::nullopt;
  }
  return response;
}

std::pair<int, Json> ClusterRouter::forwardRouted(const std::string& key,
                                                  const std::string& line) {
  // Every failed attempt consumes a shard life (restart budget or the
  // shard itself), so this loop terminates: either some attempt lands on
  // a live shard or routeLive runs out and throws no_live_shards.
  const int maxAttempts =
      shardCount() * (std::max(0, options_.maxRestartsPerShard) + 2);
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    const int shard = routeLive(key);
    if (std::optional<std::string> response = forwardRaw(shard, line)) {
      ++shards_[static_cast<std::size_t>(shard)].routedJobs;
      return {shard, Json::parse(*response)};
    }
  }
  throw RouterError{"no_live_shards", "request retries exhausted the cluster"};
}

std::uint64_t ClusterRouter::mapNewJob(int shard, std::uint64_t localId,
                                       std::string key,
                                       std::string resubmitLine,
                                       bool terminal) {
  const std::uint64_t routerId = nextJobId_++;
  JobRoute route;
  route.shard = shard;
  route.localId = localId;
  route.key = std::move(key);
  route.resubmitLine = std::move(resubmitLine);
  route.terminal = terminal;
  jobRoute_[routerId] = std::move(route);
  return routerId;
}

void ClusterRouter::noteTerminal(JobRoute& route, const Json& response) {
  if (terminalState(response)) route.terminal = true;
}

std::string ClusterRouter::routingKeyFor(const Json& entry) const {
  const service::JobRequest job = service::parseJobRequest(entry);
  if (!job.bypassCache) {
    return service::ResultCache::keyFor(job.options, job.specs, job.corner,
                                        techPrint_);
  }
  // no_cache jobs have no cache identity to co-locate; spread them by
  // request text so repeated bypass runs at least balance.
  return "raw:" + entry.dump();
}

std::string ClusterRouter::handleLine(const std::string& line) {
  Json response;
  try {
    if (line.size() > service::kMaxRequestLineBytes) {
      response = errorJson("request line too long (" +
                           std::to_string(line.size()) + " bytes, limit " +
                           std::to_string(service::kMaxRequestLineBytes) + ")");
    } else {
      response = handle(Json::parse(line), line);
    }
  } catch (const RouterError& e) {
    response = structuredErrorJson(e.code, e.message);
  } catch (const std::exception& e) {
    response = errorJson(e.what());
  }
  return response.dump();
}

Json ClusterRouter::handle(const Json& request, const std::string& rawLine) {
  if (!request.isObject()) return errorJson("request must be a JSON object");
  const std::string op = request.at("op").asString();
  if (op == "synthesize") return handleSynthesize(request, rawLine);
  if (op == "sweep") return handleSweep(request);
  if (op == "wait" || op == "cancel") return handleWaitOrCancel(request, op);
  if (op == "explore") return handleExplore(rawLine);
  if (op == "explore_result") return handleExploreResult(request);
  if (op == "drain") return handleDrain(request);
  if (op == "add") return handleAdd(request);
  if (op == "stats") return handleStats();
  if (op == "health") return handleHealth();
  if (op == "topologies") return forwardToAnyShard(rawLine);
  if (op == "shutdown") return handleShutdown();

  // Any other op is forwarded verbatim: shards grow ops through
  // ServiceProtocol::registerOp (e.g. "verify") without a router release.
  // Ops that parse as a job request route by cache key so they land on the
  // shard holding that job's cached result; anything else spreads by
  // request text.  A genuinely unknown op comes back as the shard's own
  // structured unknown_op error, which lists what the daemon really
  // speaks.
  std::string key;
  try {
    key = routingKeyFor(request);
  } catch (const std::exception&) {
    key = "raw:" + rawLine;
  }
  auto [shard, response] = forwardRouted(key, rawLine);
  response.set("shard", shard);
  return response;
}

Json ClusterRouter::handleSynthesize(const Json& request,
                                     const std::string& rawLine) {
  const std::string key = routingKeyFor(request);
  auto [shard, response] = forwardRouted(key, rawLine);
  // Shard-local job ids collide across shards; re-issue from the router's
  // id space so wait/cancel can find their way back.
  if (response.at("ok").asBool()) {
    if (const Json* id = response.find("id")) {
      response.set("id", mapNewJob(shard, id->asUint64(), key,
                                   asyncResubmitLine(request),
                                   terminalState(response)));
    }
  }
  response.set("shard", shard);
  return response;
}

int ClusterRouter::failoverJob(std::uint64_t routerId, JobRoute& route) {
  if (route.resubmitLine.empty() || route.key.empty()) {
    throw RouterError{"shard_down",
                      shardLabel(route.shard) + " is down; job " +
                          std::to_string(routerId) + " cannot be re-pinned"};
  }
  // The resubmission is exactly-once-safe: either the dead shard journaled
  // the job (its eventual replay coalesces on the shared store) or its
  // result is already in the store, so the inheritor answers from cache.
  auto [shard, response] = forwardRouted(route.key, route.resubmitLine);
  const Json* id = response.find("id");
  if (!response.at("ok").asBool() || id == nullptr) {
    throw RouterError{"failover_failed",
                      "job " + std::to_string(routerId) +
                          " could not be re-pinned: " +
                          errorTextOf(response, "resubmission rejected")};
  }
  route.shard = shard;
  route.localId = id->asUint64();
  route.terminal = false;
  ++jobFailovers_;
  return shard;
}

Json ClusterRouter::handleWaitOrCancel(const Json& request,
                                       const std::string& op) {
  if (op == "wait" && request.find("ids") != nullptr) {
    return handleMultiWait(request);
  }
  const std::uint64_t routerId = request.at("id").asUint64();
  const auto route = jobRoute_.find(routerId);
  if (route == jobRoute_.end()) {
    return errorJson("\"" + op + "\" needs a known job \"id\"");
  }
  JobRoute& jr = route->second;

  std::optional<std::string> raw;
  int servingShard = jr.shard;
  if (shards_[static_cast<std::size_t>(jr.shard)].member) {
    Json forward = request;
    forward.set("id", jr.localId);
    const std::string line = forward.dump();
    if (shards_[static_cast<std::size_t>(jr.shard)].alive ||
        reviveShard(jr.shard)) {
      raw = forwardRaw(jr.shard, line);
    }
    if (!raw && reviveShard(jr.shard)) {
      // The shard died holding this job; its journal replay re-enqueued
      // the job under the same local id, so the identical wait/cancel
      // works.
      raw = forwardRaw(jr.shard, line);
    }
    if (raw) {
      // A reboot replays only unfinished jobs; one that settled before
      // the crash is forgotten and must resolve through failover (a cache
      // hit on the inheritor), not surface as an error.
      try {
        if (unknownJob(Json::parse(*raw))) raw.reset();
      } catch (const std::exception&) {
        raw.reset();  // Garbage response: treat like a dead shard.
      }
    }
  }
  if (!raw) {
    // Drained, past the restart budget, or in backoff: re-pin the job to
    // the shard that inherited its key range and resolve there.  A cancel
    // of an already-finished job resolves as cancelled:false, exactly as
    // it would have on the original shard.
    servingShard = failoverJob(routerId, jr);
    Json forward = request;
    forward.set("id", jr.localId);
    raw = forwardRaw(servingShard, forward.dump());
    if (!raw) {
      throw RouterError{"shard_down",
                        shardLabel(servingShard) + " failed while resolving " +
                            "re-pinned job " + std::to_string(routerId)};
    }
  }
  Json response = Json::parse(*raw);
  noteTerminal(jr, response);
  if (response.find("id") != nullptr) response.set("id", routerId);
  response.set("shard", servingShard);
  return response;
}

Json ClusterRouter::handleMultiWait(const Json& request) {
  const Json* ids = request.find("ids");
  if (ids == nullptr || !ids->isArray() || ids->items().empty()) {
    return errorJson("\"wait\" needs a non-empty \"ids\" array");
  }

  struct Slot {
    std::uint64_t routerId = 0;
    Json outcome;
    bool done = false;
  };
  std::vector<Slot> slots(ids->items().size());
  // Per-shard FIFO of slot indices: the daemon answers a pipelined stream
  // of waits in order, so pairing responses back is a queue pop.
  std::map<int, std::deque<std::size_t>> pendingByShard;

  // Resolve every id's serving shard up front (revive or re-pin as the
  // single-id path would), then pipeline the wait lines per shard.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].routerId = ids->items()[i].asUint64();
    const auto route = jobRoute_.find(slots[i].routerId);
    if (route == jobRoute_.end()) {
      slots[i].outcome = errorJson("\"wait\" needs a known job \"id\"");
      slots[i].done = true;
      continue;
    }
    JobRoute& jr = route->second;
    Shard& st = shards_[static_cast<std::size_t>(jr.shard)];
    if (!(st.member && (st.alive || reviveShard(jr.shard)))) {
      try {
        (void)failoverJob(slots[i].routerId, jr);
      } catch (const RouterError& e) {
        slots[i].outcome = structuredErrorJson(e.code, e.message);
        slots[i].done = true;
        continue;
      }
    }
    pendingByShard[jr.shard].push_back(i);
  }

  // Slots that cannot resolve over their pipelined stream (their shard
  // died, wedged, or forgot the job after a reboot) are *deferred*, not
  // failed over inline: a failover resubmits through other shards' pipes,
  // and doing that while those pipes still carry unanswered pipelined
  // waits would mis-pair every later response.  Deferred slots resolve
  // through the single-id path after the poll loop has fully drained.
  std::vector<std::size_t> deferred;
  const auto deferShard = [&](int shard, const std::string& reason) {
    markDead(shard, reason);
    auto queue = pendingByShard.find(shard);
    if (queue == pendingByShard.end()) return;
    for (const std::size_t idx : queue->second) {
      if (!slots[idx].done) deferred.push_back(idx);
    }
    pendingByShard.erase(queue);
  };

  // Pipeline the wait lines; a failed write defers that whole shard.
  std::vector<int> writeFailed;
  for (auto& [shard, queue] : pendingByShard) {
    Shard& st = shards_[static_cast<std::size_t>(shard)];
    for (const std::size_t idx : queue) {
      Json forward = Json::object();
      forward.set("op", "wait");
      forward.set("id", jobRoute_.at(slots[idx].routerId).localId);
      if (!st.process->writeLine(forward.dump())) {
        writeFailed.push_back(shard);
        break;
      }
    }
  }
  for (const int shard : writeFailed) {
    deferShard(shard, "write failed (pipe closed)");
  }

  // Per-shard deadline: one request timeout per outstanding wait (a job
  // may legitimately still be running).  A shard past its deadline is
  // wedged by the single-request rules and gets recycled; healthy shards'
  // responses keep flowing regardless, because one poll(2) loop serves
  // every pipe.
  std::map<int, double> deadline;
  if (options_.requestTimeoutSeconds > 0) {
    for (const auto& [shard, queue] : pendingByShard) {
      deadline[shard] = nowSeconds() + options_.requestTimeoutSeconds *
                                           static_cast<double>(queue.size());
    }
  }

  while (!pendingByShard.empty()) {
    std::vector<struct pollfd> fds;
    std::vector<int> fdShards;
    for (const auto& [shard, queue] : pendingByShard) {
      struct pollfd pfd {};
      pfd.fd = shards_[static_cast<std::size_t>(shard)].process->readFd();
      pfd.events = POLLIN;
      fds.push_back(pfd);
      fdShards.push_back(shard);
    }
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);

    std::vector<std::pair<int, std::string>> failed;
    for (const int shard : fdShards) {
      Shard& st = shards_[static_cast<std::size_t>(shard)];
      auto queue = pendingByShard.find(shard);
      while (queue != pendingByShard.end() && !queue->second.empty()) {
        std::string line;
        const ReadStatus status = st.process->pollLine(line);
        if (status == ReadStatus::kTimeout) break;
        if (status != ReadStatus::kOk) {
          failed.emplace_back(shard, "eof (process died)");
          break;
        }
        const std::size_t idx = queue->second.front();
        queue->second.pop_front();
        Json response;
        try {
          response = Json::parse(line);
        } catch (const std::exception&) {
          failed.emplace_back(shard, "garbage on the pipe");
          // The unpaired response poisons the stream; put the slot back so
          // the deferred pass resolves it.
          queue->second.push_front(idx);
          break;
        }
        if (unknownJob(response)) {
          // A rebooted shard forgot this settled job; the deferred pass
          // re-pins it (cache hit on the inheritor).
          deferred.push_back(idx);
          continue;
        }
        JobRoute& jr = jobRoute_.at(slots[idx].routerId);
        noteTerminal(jr, response);
        if (response.find("id") != nullptr) {
          response.set("id", slots[idx].routerId);
        }
        response.set("shard", shard);
        ++st.routedJobs;
        slots[idx].outcome = std::move(response);
        slots[idx].done = true;
      }
      if (queue != pendingByShard.end() && queue->second.empty()) {
        pendingByShard.erase(queue);
      }
    }
    for (const auto& [shard, reason] : failed) deferShard(shard, reason);

    if (!deadline.empty()) {
      const double now = nowSeconds();
      std::vector<int> wedged;
      for (const auto& [shard, queue] : pendingByShard) {
        if (now > deadline[shard]) wedged.push_back(shard);
      }
      for (const int shard : wedged) {
        deferShard(shard, "request timeout (wedged)");
      }
    }
  }

  // Every pipelined stream has drained (answered in full or dead), so
  // failover resubmissions can no longer mis-pair a response.
  for (const std::size_t idx : deferred) {
    if (slots[idx].done) continue;
    Json single = Json::object();
    single.set("op", "wait");
    single.set("id", slots[idx].routerId);
    try {
      slots[idx].outcome = handleWaitOrCancel(single, "wait");
    } catch (const RouterError& e) {
      slots[idx].outcome = structuredErrorJson(e.code, e.message);
    } catch (const std::exception& e) {
      slots[idx].outcome = errorJson(e.what());
    }
    slots[idx].done = true;
  }

  Json outcomes = Json::array();
  for (Slot& slot : slots) outcomes.push(std::move(slot.outcome));
  Json out = Json::object();
  out.set("ok", true);
  out.set("outcomes", std::move(outcomes));
  return out;
}

Json ClusterRouter::handleSweep(const Json& request) {
  const Json* jobs = request.find("jobs");
  if (jobs == nullptr || !jobs->isArray()) {
    return errorJson("\"sweep\" needs a \"jobs\" array");
  }
  const std::vector<Json>& entries = jobs->items();
  const bool trace = request.at("trace").asBool();
  const bool summary = request.at("summary").asBool();

  // Key derivation (parse + canonicalise + hash, a few us per entry) is
  // the router's largest serial per-job cost, and it is embarrassingly
  // parallel: fan it over a small thread pool so a wide sweep's routing
  // overhead shrinks with the cores available instead of growing with the
  // batch.  A bad entry's parse error is captured and rethrown after the
  // join, same surface as the serial loop had.
  std::vector<std::string> keys(entries.size());
  {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t nThreads =
        std::min({hw, entries.size() / 64 + 1, std::size_t{8}});
    if (nThreads <= 1) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        keys[i] = routingKeyFor(entries[i]);
      }
    } else {
      std::vector<std::thread> workers;
      std::vector<std::exception_ptr> errors(nThreads);
      for (std::size_t t = 0; t < nThreads; ++t) {
        workers.emplace_back([&, t] {
          try {
            for (std::size_t i = t; i < entries.size(); i += nThreads) {
              keys[i] = routingKeyFor(entries[i]);
            }
          } catch (...) {
            errors[t] = std::current_exception();
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      for (const std::exception_ptr& error : errors) {
        if (error) std::rethrow_exception(error);
      }
    }
  }

  // Partition by routed shard; routeLive revives dead home shards up
  // front so the partition is against the healthiest cluster available.
  std::vector<std::vector<std::size_t>> byShard(shards_.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    byShard[static_cast<std::size_t>(routeLive(keys[i]))].push_back(i);
  }

  struct SubSweep {
    int shard = -1;
    std::vector<std::size_t> indices;
    std::string requestLine;
    std::optional<std::string> responseLine;
    // Parsed in the I/O thread, so N sub-responses decode concurrently;
    // empty with responseLine set means the shard answered garbage, which
    // the recovery pass treats exactly like a dead pipe.
    std::optional<Json> response;
  };
  std::vector<SubSweep> subs;
  for (int s = 0; s < shardCount(); ++s) {
    std::vector<std::size_t>& indices = byShard[static_cast<std::size_t>(s)];
    if (indices.empty()) continue;
    SubSweep sub;
    sub.shard = s;
    sub.indices = std::move(indices);
    Json subRequest = Json::object();
    subRequest.set("op", "sweep");
    if (trace) subRequest.set("trace", true);
    if (summary) subRequest.set("summary", true);
    Json subJobs = Json::array();
    for (std::size_t i : sub.indices) subJobs.push(entries[i]);
    subRequest.set("jobs", std::move(subJobs));
    sub.requestLine = subRequest.dump();
    subs.push_back(std::move(sub));
  }

  // Happy-path fan-out: one I/O thread per shard, so N shards compute --
  // and, just as important, serialise/parse -- their sub-sweeps
  // concurrently.  Threads touch only their own shard's pipe and their
  // own SubSweep; all router state mutation happens after the join.
  {
    std::vector<std::thread> workers;
    workers.reserve(subs.size());
    for (SubSweep& sub : subs) {
      workers.emplace_back([this, &sub] {
        ShardProcess& process = *shards_[static_cast<std::size_t>(sub.shard)].process;
        if (!process.writeLine(sub.requestLine)) return;
        // One sub-sweep is many jobs behind one response; scale the
        // wedge deadline with the batch.
        const double timeout =
            options_.requestTimeoutSeconds <= 0
                ? 0
                : options_.requestTimeoutSeconds *
                      static_cast<double>(sub.indices.size());
        std::string line;
        if (process.readLine(line, timeout) == ReadStatus::kOk) {
          sub.responseLine = std::move(line);
          try {
            sub.response = Json::parse(*sub.responseLine);
          } catch (const std::exception&) {
            // Leave response empty: garbage on the pipe is shard failure.
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  // Recovery pass, sequential: a failed sub-sweep first retries on its
  // revived owner (journal replay turns the resend into coalesces and
  // cache hits, not double runs); if the shard stays down, its entries
  // re-route one by one to the survivors.
  std::vector<Json> placed(entries.size());
  for (SubSweep& sub : subs) {
    if (!sub.response) {
      markDead(sub.shard, "sub-sweep failed (died or wedged)");
      if (reviveShard(sub.shard)) {
        sub.responseLine = forwardRaw(sub.shard, sub.requestLine);
        if (sub.responseLine) {
          try {
            sub.response = Json::parse(*sub.responseLine);
          } catch (const std::exception&) {
          }
        }
      }
    }

    bool delivered = false;
    if (sub.response) {
      const Json& response = *sub.response;
      const Json* outcomes = response.find("outcomes");
      if (response.at("ok").asBool() && outcomes != nullptr &&
          outcomes->isArray() &&
          outcomes->items().size() == sub.indices.size()) {
        shards_[static_cast<std::size_t>(sub.shard)].routedJobs +=
            sub.indices.size();
        for (std::size_t j = 0; j < sub.indices.size(); ++j) {
          Json outcome = outcomes->items()[j];
          if (const Json* id = outcome.find("id")) {
            outcome.set("id",
                        mapNewJob(sub.shard, id->asUint64(),
                                  keys[sub.indices[j]],
                                  asyncResubmitLine(entries[sub.indices[j]]),
                                  terminalState(outcome)));
          }
          outcome.set("shard", sub.shard);
          placed[sub.indices[j]] = std::move(outcome);
        }
        delivered = true;
      } else {
        const std::string why = errorTextOf(response, "sweep failed");
        for (std::size_t idx : sub.indices) placed[idx] = failedOutcome(why);
        delivered = true;
      }
    }
    if (delivered) continue;

    for (std::size_t idx : sub.indices) {
      try {
        Json one = Json::object();
        one.set("op", "sweep");
        if (trace) one.set("trace", true);
        if (summary) one.set("summary", true);
        Json oneJobs = Json::array();
        oneJobs.push(entries[idx]);
        one.set("jobs", std::move(oneJobs));
        auto [shard, response] = forwardRouted(keys[idx], one.dump());
        const Json* outcomes = response.find("outcomes");
        if (response.at("ok").asBool() && outcomes != nullptr &&
            outcomes->isArray() && outcomes->items().size() == 1) {
          Json outcome = outcomes->items().front();
          if (const Json* id = outcome.find("id")) {
            outcome.set("id", mapNewJob(shard, id->asUint64(), keys[idx],
                                        asyncResubmitLine(entries[idx]),
                                        terminalState(outcome)));
          }
          outcome.set("shard", shard);
          placed[idx] = std::move(outcome);
        } else {
          placed[idx] = failedOutcome(errorTextOf(response, "sweep failed"));
        }
      } catch (const RouterError& e) {
        placed[idx] = failedOutcome(e.code + ": " + e.message);
      }
    }
  }

  Json outcomes = Json::array();
  for (Json& outcome : placed) outcomes.push(std::move(outcome));
  Json out = Json::object();
  out.set("ok", true);
  out.set("outcomes", std::move(outcomes));
  return out;
}

Json ClusterRouter::handleExplore(const std::string& rawLine) {
  // Explorations are not content-addressed; balance them by request text.
  auto [shard, response] = forwardRouted("raw:" + rawLine, rawLine);
  if (response.at("ok").asBool()) {
    if (const Json* id = response.find("explore_id")) {
      const std::uint64_t routerId = nextExploreId_++;
      ExploreRoute route;
      route.shard = shard;
      route.localId = id->asUint64();
      route.rawLine = rawLine;
      exploreRoute_[routerId] = std::move(route);
      response.set("explore_id", routerId);
    }
  }
  response.set("shard", shard);
  return response;
}

Json ClusterRouter::handleExploreResult(const Json& request) {
  const std::uint64_t routerId = request.at("explore_id").asUint64();
  const auto route = exploreRoute_.find(routerId);
  if (route == exploreRoute_.end()) {
    return errorJson("\"explore_result\" needs a known \"explore_id\"");
  }
  ExploreRoute& er = route->second;

  std::optional<std::string> raw;
  int servingShard = er.shard;
  if (shards_[static_cast<std::size_t>(er.shard)].member) {
    Json forward = request;
    forward.set("explore_id", er.localId);
    const std::string line = forward.dump();
    if (shards_[static_cast<std::size_t>(er.shard)].alive ||
        reviveShard(er.shard)) {
      raw = forwardRaw(er.shard, line);
    }
    if (!raw && reviveShard(er.shard)) {
      // The shard died holding the session; its explore journal replay
      // restarted it under the same local id, so the identical
      // explore_result resumes on the reboot (cached evaluations replay
      // as hits -- a fast-forward, not a recompute).
      raw = forwardRaw(er.shard, line);
    }
    if (raw) {
      // A revived shard that finished the session *before* dying had
      // nothing pending to replay and has forgotten the id; the failover
      // re-run below reproduces the same front from cache.
      try {
        if (!unknownExploration(Json::parse(*raw))) {
          Json response = Json::parse(*raw);
          if (response.find("explore_id") != nullptr) {
            response.set("explore_id", routerId);
          }
          response.set("shard", servingShard);
          return response;
        }
      } catch (const std::exception&) {
        // Garbage response: treat like a dead shard below.
      }
      raw.reset();
    }
  }

  // Past the restart budget, drained, or forgotten: re-pin the session to
  // a survivor.  Determinism per (space, options) plus the shared store
  // make the survivor's front byte-identical to the lost shard's.
  Json resubmit = Json::parse(er.rawLine);
  resubmit.set("async", true);
  auto [newShard, response] = forwardRouted("raw:" + er.rawLine, resubmit.dump());
  const Json* id = response.find("explore_id");
  if (!response.at("ok").asBool() || id == nullptr) {
    throw RouterError{"failover_failed",
                      "exploration " + std::to_string(routerId) +
                          " could not be re-pinned: " +
                          errorTextOf(response, "resubmission rejected")};
  }
  er.shard = newShard;
  er.localId = id->asUint64();
  ++exploreFailovers_;
  servingShard = newShard;

  Json forward = request;
  forward.set("explore_id", er.localId);
  raw = forwardRaw(servingShard, forward.dump());
  if (!raw) {
    throw RouterError{"shard_down",
                      shardLabel(servingShard) + " failed while resuming " +
                          "exploration " + std::to_string(routerId)};
  }
  Json out = Json::parse(*raw);
  if (out.find("explore_id") != nullptr) out.set("explore_id", routerId);
  out.set("shard", servingShard);
  return out;
}

Json ClusterRouter::handleDrain(const Json& request) {
  const Json* shardField = request.find("shard");
  if (shardField == nullptr) {
    return errorJson("\"drain\" needs a \"shard\" index");
  }
  const int victim = shardField->asInt(-1);
  if (victim < 0 || victim >= shardCount()) {
    return errorJson("\"drain\": no such shard " + std::to_string(victim));
  }
  Shard& st = shards_[static_cast<std::size_t>(victim)];
  if (!st.member) {
    return errorJson(shardLabel(victim) + " is already drained");
  }
  if (memberCount() <= 1) {
    return errorJson("cannot drain the last member shard");
  }

  // Prefer a live victim for the graceful path (waiting out its jobs);
  // everything below still works without one via lazy failover.  Revive
  // before leaving the ring -- reviveShard refuses non-members.
  const bool victimUp = st.alive || reviveShard(victim, /*ignoreBackoff=*/true);
  // Out of the ring first: from here no new key routes to the victim.
  st.member = false;

  // Wait out the victim's in-flight jobs.  Each settles into the shared
  // store (so later wait/cancel from clients resolves anywhere as a cache
  // hit); a job the victim cannot settle re-pins to its inheritor now.
  std::uint64_t jobsSettled = 0;
  std::uint64_t jobsMoved = 0;
  for (auto& [routerId, jr] : jobRoute_) {
    if (jr.shard != victim || jr.terminal) continue;
    if (victimUp && st.alive) {
      Json wait = Json::object();
      wait.set("op", "wait");
      wait.set("id", jr.localId);
      if (const std::optional<std::string> rawResp =
              forwardRaw(victim, wait.dump())) {
        try {
          noteTerminal(jr, Json::parse(*rawResp));
        } catch (const std::exception&) {
        }
        if (jr.terminal) {
          ++jobsSettled;
          continue;
        }
      }
    }
    try {
      (void)failoverJob(routerId, jr);
      ++jobsMoved;
    } catch (const RouterError&) {
      // Left pinned; the client's next wait retries the failover.
    }
  }

  // Hand the victim's explore sessions to their inheritors: resubmit each
  // stored request (the same payload the session journal holds) onto the
  // ring.  The re-run fast-forwards through the shared cache, so no
  // explore budget is lost.
  std::uint64_t sessionsMoved = 0;
  for (auto& [routerId, er] : exploreRoute_) {
    if (er.shard != victim) continue;
    try {
      Json resubmit = Json::parse(er.rawLine);
      resubmit.set("async", true);
      auto [shard, response] =
          forwardRouted("raw:" + er.rawLine, resubmit.dump());
      const Json* id = response.find("explore_id");
      if (response.at("ok").asBool() && id != nullptr) {
        er.shard = shard;
        er.localId = id->asUint64();
        ++sessionsMoved;
        ++exploreFailovers_;
      }
    } catch (const RouterError&) {
      // Left pinned; explore_result retries the failover lazily.
    }
  }

  // Stop the worker: polite shutdown first (drains its queue), then
  // terminate.  Not a transport error -- this death was ordered.
  if (st.alive) (void)forwardRaw(victim, R"({"op":"shutdown"})");
  st.process->terminate(2.0);
  st.alive = false;
  ++drains_;

  Json out = Json::object();
  out.set("ok", true);
  out.set("drained", victim);
  out.set("jobs_settled", jobsSettled);
  out.set("jobs_moved", jobsMoved);
  out.set("sessions_moved", sessionsMoved);
  out.set("members", static_cast<std::uint64_t>(memberCount()));
  return out;
}

Json ClusterRouter::handleAdd(const Json& request) {
  int target = -1;
  if (const Json* shardField = request.find("shard")) {
    // Re-admit a drained shard.
    target = shardField->asInt(-1);
    if (target < 0 || target >= shardCount()) {
      return errorJson("\"add\": no such shard " + std::to_string(target));
    }
    Shard& st = shards_[static_cast<std::size_t>(target)];
    if (st.member) {
      return errorJson(shardLabel(target) + " is already a member");
    }
    st.member = true;
    st.backoffStreak = 0;
    st.nextRestartAt = 0.0;
    if (!st.alive) {
      try {
        spawnShard(target);
      } catch (const std::exception& e) {
        st.member = false;
        return errorJson(shardLabel(target) +
                         " failed to start: " + std::string(e.what()));
      }
    }
  } else {
    // Grow the ring by a brand-new shard.  Only the key ranges its vnodes
    // capture change owner; its cold caches warm lazily through peer-fill
    // from the shared store, so moved keys cost a disk read, not a re-run.
    target = ring_.addShard();
    Shard st;
    st.process = std::make_unique<ShardProcess>();
    st.argv = buildShardArgv(target);
    shards_.push_back(std::move(st));
    try {
      spawnShard(target);
    } catch (const std::exception& e) {
      shards_.back().member = false;
      return errorJson(shardLabel(target) +
                       " failed to start: " + std::string(e.what()));
    }
  }
  ++adds_;
  Json out = Json::object();
  out.set("ok", true);
  out.set("shard", target);
  out.set("members", static_cast<std::uint64_t>(memberCount()));
  out.set("peer_fill", !options_.cacheDir.empty());
  return out;
}

Json ClusterRouter::forwardToAnyShard(const std::string& rawLine) {
  auto [shard, response] = forwardRouted("any", rawLine);
  response.set("shard", shard);
  return response;
}

Json ClusterRouter::handleStats() {
  Json cluster = Json::object();
  Json perShard = Json::object();
  for (int s = 0; s < shardCount(); ++s) {
    Shard& st = shards_[static_cast<std::size_t>(s)];
    if (!st.member) {
      Json drained = Json::object();
      drained.set("member", false);
      perShard.set(shardLabel(s), std::move(drained));
      continue;
    }
    std::optional<std::string> raw;
    if (st.alive || reviveShard(s)) raw = forwardRaw(s, R"({"op":"stats"})");
    if (!raw) {
      Json down = Json::object();
      down.set("down", true);
      perShard.set(shardLabel(s), std::move(down));
      continue;
    }
    const Json response = Json::parse(*raw);
    const Json& stats = response.at("stats");
    // Cluster totals sum the scheduler-shaped sections; registered extras
    // (e.g. "explorations") stay per-shard only -- their insides are not
    // meaningfully additive.
    for (const char* section : {"jobs", "stages", "cache", "queue"}) {
      if (const Json* body = stats.find(section); body && body->isObject()) {
        Json total = Json::object();
        if (const Json* prior = cluster.find(section)) total = *prior;
        sumInto(total, *body);
        cluster.set(section, std::move(total));
      }
    }
    perShard.set(shardLabel(s), stats);
  }

  Json router = Json::object();
  router.set("shards", static_cast<std::uint64_t>(shardCount()));
  router.set("members", static_cast<std::uint64_t>(memberCount()));
  std::uint64_t aliveCount = 0;
  std::uint64_t routedJobs = 0;
  std::uint64_t transportErrors = 0;
  for (const Shard& shard : shards_) {
    if (shard.alive) ++aliveCount;
    routedJobs += shard.routedJobs;
    transportErrors += shard.transportErrors;
  }
  router.set("alive", aliveCount);
  router.set("routed_jobs", routedJobs);
  router.set("rerouted", rerouted_);
  router.set("restarts", restarts());
  router.set("transport_errors", transportErrors);
  router.set("job_failovers", jobFailovers_);
  router.set("explore_failovers", exploreFailovers_);
  router.set("drains", drains_);
  router.set("adds", adds_);

  Json stats = Json::object();
  stats.set("cluster", std::move(cluster));
  stats.set("router", std::move(router));
  stats.set("shards", std::move(perShard));
  Json out = Json::object();
  out.set("ok", true);
  out.set("stats", std::move(stats));
  return out;
}

Json ClusterRouter::handleHealth() {
  // Health is observability, not surgery: it reports dead shards rather
  // than reviving them (the next routed job does the healing).
  const double now = nowSeconds();
  Json perShard = Json::object();
  std::uint64_t aliveMembers = 0;
  for (int s = 0; s < shardCount(); ++s) {
    Shard& st = shards_[static_cast<std::size_t>(s)];
    std::optional<std::string> raw;
    if (st.alive && st.member) raw = forwardRaw(s, R"({"op":"health"})");
    Json entry = Json::object();
    entry.set("alive", st.alive);
    entry.set("member", st.member);
    entry.set("pid", static_cast<std::int64_t>(st.process->pid()));
    entry.set("restarts", static_cast<std::uint64_t>(st.restarts));
    entry.set("routed_jobs", st.routedJobs);
    entry.set("transport_errors", st.transportErrors);
    entry.set("replayed_records", st.lastReplayedRecords);
    entry.set("recovered_jobs", st.lastRecoveredJobs);
    if (!st.lastRestartReason.empty()) {
      entry.set("last_restart_reason", st.lastRestartReason);
      Json history = Json::array();
      for (const std::string& reason : st.restartHistory) history.push(reason);
      entry.set("restart_history", std::move(history));
    }
    if (!st.alive && st.member) {
      entry.set("backoff_seconds", std::max(0.0, st.nextRestartAt - now));
    }
    if (raw) {
      const Json response = Json::parse(*raw);
      entry.set("health", response.at("health"));
    }
    if (st.alive && st.member) ++aliveMembers;
    perShard.set(shardLabel(s), std::move(entry));
  }

  Json cluster = Json::object();
  cluster.set("shards", static_cast<std::uint64_t>(shardCount()));
  cluster.set("members", static_cast<std::uint64_t>(memberCount()));
  cluster.set("alive", aliveMembers);
  // all_alive is a membership invariant: drained shards are intentionally
  // gone and must not mark a healthy cluster degraded.
  cluster.set("all_alive",
              aliveMembers == static_cast<std::uint64_t>(memberCount()));
  cluster.set("restarts", restarts());
  cluster.set("rerouted", rerouted_);
  cluster.set("job_failovers", jobFailovers_);
  cluster.set("explore_failovers", exploreFailovers_);
  cluster.set("drains", drains_);
  cluster.set("adds", adds_);

  Json health = Json::object();
  health.set("cluster", std::move(cluster));
  health.set("shards", std::move(perShard));
  Json out = Json::object();
  out.set("ok", true);
  out.set("health", std::move(health));
  return out;
}

Json ClusterRouter::handleShutdown() {
  shutdown_ = true;
  std::uint64_t stopped = 0;
  for (int s = 0; s < shardCount(); ++s) {
    Shard& st = shards_[static_cast<std::size_t>(s)];
    if (st.alive) {
      // Polite first: the shard acks and drains; terminate() then closes
      // its stdin and escalates only if it lingers.
      (void)forwardRaw(s, R"({"op":"shutdown"})");
      ++stopped;
    }
    st.process->terminate(2.0);
    st.alive = false;
  }
  Json out = Json::object();
  out.set("ok", true);
  out.set("shutting_down", true);
  out.set("shards_stopped", stopped);
  return out;
}

void ClusterRouter::serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    out << handleLine(line) << "\n" << std::flush;
    if (shutdown_) break;
  }
}

pid_t ClusterRouter::shardPid(int shard) const {
  return shards_[static_cast<std::size_t>(shard)].process->pid();
}

void ClusterRouter::killShard(int shard) {
  // Signal only, no fd surgery: this is called from fault-injection
  // threads while the router may be mid-request on the same shard, and
  // the EOF path is exactly the failure the router is built to absorb.
  const pid_t pid = shards_[static_cast<std::size_t>(shard)].process->pid();
  if (pid > 0) ::kill(pid, SIGKILL);
}

void ClusterRouter::wedgeShard(int shard) {
  // SIGSTOP: the child keeps its pipes open but answers nothing, which is
  // the wedge the request timeout exists for.  The recycle path's SIGKILL
  // terminates stopped processes too, so no SIGCONT is ever needed.
  const pid_t pid = shards_[static_cast<std::size_t>(shard)].process->pid();
  if (pid > 0) ::kill(pid, SIGSTOP);
}

std::uint64_t ClusterRouter::restarts() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += static_cast<std::uint64_t>(shard.restarts);
  }
  return total;
}

}  // namespace lo::cluster
