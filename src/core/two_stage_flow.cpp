#include "core/two_stage_flow.hpp"

namespace lo::core {

TwoStageFlowResult runTwoStageFlow(const tech::Technology& t,
                                   const TwoStageFlowOptions& options,
                                   const sizing::OtaSpecs& specs) {
  EngineOptions engineOptions;
  engineOptions.topology = kTwoStageTopologyName;
  engineOptions.sizingCase = options.sizingCase;
  engineOptions.modelName = options.modelName;
  engineOptions.maxLayoutCalls = options.maxLayoutCalls;
  engineOptions.convergenceTol = options.convergenceTol;
  engineOptions.verifyOptions = options.verifyOptions;

  const SynthesisEngine engine(t, engineOptions);
  TwoStageTopology topology(t, engine.model(), options.layoutOptions);
  const EngineResult er = engine.run(topology, specs);

  TwoStageFlowResult result;
  result.sizing = topology.sizingResult();
  result.layout = topology.layout();
  result.extractedDesign = topology.extractedDesign();
  result.predicted = er.predicted;
  result.measured = er.measured;
  result.layoutCalls = er.layoutCalls;
  result.parasiticConverged = er.parasiticConverged;
  return result;
}

}  // namespace lo::core
