#include "core/two_stage_flow.hpp"

#include <cmath>

namespace lo::core {

namespace {

sizing::SizingPolicy policyFor(SizingCase c) {
  sizing::SizingPolicy p;
  switch (c) {
    case SizingCase::kCase1: p.diffusionCaps = false; break;
    case SizingCase::kCase2: break;
    case SizingCase::kCase3:
    case SizingCase::kCase4: p.exactDiffusion = true; break;
  }
  return p;
}

}  // namespace

TwoStageFlowResult runTwoStageFlow(const tech::Technology& t,
                                   const TwoStageFlowOptions& options,
                                   const sizing::OtaSpecs& specs) {
  TwoStageFlowResult result;
  const auto model = device::MosModel::create(options.modelName);
  sizing::TwoStageSizer sizer(t, *model);
  sizing::SizingPolicy policy = policyFor(options.sizingCase);
  const bool feedback = options.sizingCase == SizingCase::kCase3 ||
                        options.sizingCase == SizingCase::kCase4;

  result.sizing = sizer.size(specs, policy);

  if (feedback) {
    double prevCapOut = -1.0;
    layout::TwoStageLayoutResult parasiticRun;
    for (int call = 1; call <= options.maxLayoutCalls; ++call) {
      parasiticRun = layout::generateTwoStageLayout(t, result.sizing.design,
                                                    options.layoutOptions, false);
      ++result.layoutCalls;
      const double capOut = parasiticRun.parasitics.capOn("out") +
                            parasiticRun.parasitics.capOn("o1");
      if (prevCapOut >= 0.0 &&
          std::abs(capOut - prevCapOut) < options.convergenceTol * std::max(prevCapOut, 1e-18)) {
        result.parasiticConverged = true;
        break;
      }
      prevCapOut = capOut;
      policy.twoStageTemplates = parasiticRun.junctions;
      if (options.sizingCase == SizingCase::kCase4) {
        policy.routingParasitics = &parasiticRun.parasitics;
      }
      result.sizing = sizer.size(specs, policy);
    }
  }

  result.layout =
      layout::generateTwoStageLayout(t, result.sizing.design, options.layoutOptions, true);

  result.extractedDesign = result.sizing.design;
  for (const auto& [group, geo] : result.layout.junctions) {
    result.extractedDesign.geometry(group) = geo;
  }
  // The drawn passives replace the ideal values.
  result.extractedDesign.cc = result.layout.ccInfo.drawnFarads;
  result.extractedDesign.rz = result.layout.rzInfo.drawnOhms;

  result.measured = sizing::verifyTwoStage(t, *model, result.extractedDesign,
                                           &result.layout.parasitics,
                                           options.verifyOptions);
  result.predicted = result.sizing.predicted;
  return result;
}

}  // namespace lo::core
