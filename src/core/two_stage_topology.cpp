#include "core/two_stage_topology.hpp"

namespace lo::core {

TwoStageTopology::TwoStageTopology(const tech::Technology& t,
                                   const device::MosModel& model,
                                   layout::TwoStageLayoutOptions layoutOptions)
    : tech_(t), model_(model), layoutOptions_(std::move(layoutOptions)) {}

const std::vector<std::string>& TwoStageTopology::criticalNets() const {
  // Both amplifying nodes, the Rz/Cc midpoint (bottom-plate parasitic of
  // the compensation capacitor) and the tail: all four must settle, not
  // just the output (the single-net criterion could declare convergence
  // while the compensation network was still moving).
  static const std::vector<std::string> kNets = {"out", "o1", "rzm", "tail"};
  return kNets;
}

void TwoStageTopology::size(const sizing::OtaSpecs& specs,
                            const sizing::SizingPolicy& policy) {
  sizing_ = sizing::TwoStageSizer(tech_, model_).size(specs, policy);
}

const layout::ParasiticReport& TwoStageTopology::layoutParasitic() {
  parasiticRun_ = layout::generateTwoStageLayout(tech_, sizing_.design, layoutOptions_,
                                                 /*generateGeometry=*/false);
  hasParasiticRun_ = true;
  return parasiticRun_.parasitics;
}

void TwoStageTopology::feedback(sizing::SizingPolicy& policy, bool includeRouting) {
  policy.twoStageTemplates = parasiticRun_.junctions;
  if (includeRouting) {
    policy.routingParasitics = &parasiticRun_.parasitics;
  }
}

void TwoStageTopology::layoutGenerate() {
  layout_ = layout::generateTwoStageLayout(tech_, sizing_.design, layoutOptions_,
                                           /*generateGeometry=*/true);
}

void TwoStageTopology::applyExtracted() {
  extracted_ = sizing::applyExtractedGeometry(sizing_.design, layout_.junctions,
                                              layout_.ccInfo.drawnFarads,
                                              layout_.rzInfo.drawnOhms);
}

sizing::OtaPerformance TwoStageTopology::verify(const sizing::VerifyOptions& options) {
  return sizing::verifyTwoStage(tech_, model_, extracted_, &layout_.parasitics,
                                options);
}

verify::VerificationSetup TwoStageTopology::verificationSetup() {
  verify::VerificationSetup s;
  s.supported = true;
  s.preLayout = [d = sizing_.design](circuit::Circuit& c) {
    circuit::instantiateTwoStage(c, d);
  };
  s.postLayout = [d = extracted_](circuit::Circuit& c) {
    circuit::instantiateTwoStage(c, d);
  };
  s.parasitics = &layout_.parasitics;
  s.inputCm = extracted_.inputCm;
  s.vdd = extracted_.vdd;
  return s;
}

}  // namespace lo::core
