#include "core/ota_topology.hpp"

namespace lo::core {

FoldedCascodeOtaTopology::FoldedCascodeOtaTopology(const tech::Technology& t,
                                                   const device::MosModel& model,
                                                   layout::OtaLayoutOptions layoutOptions)
    : tech_(t), model_(model), layoutOptions_(std::move(layoutOptions)) {}

const std::vector<std::string>& FoldedCascodeOtaTopology::criticalNets() const {
  // The folding node, the output and the tail (which includes the floating
  // well) -- the capacitances the paper's convergence study traces.
  static const std::vector<std::string> kNets = {"x1", "out", "tail"};
  return kNets;
}

void FoldedCascodeOtaTopology::size(const sizing::OtaSpecs& specs,
                                    const sizing::SizingPolicy& policy) {
  sizing_ = sizing::OtaSizer(tech_, model_).size(specs, policy);
}

const layout::ParasiticReport& FoldedCascodeOtaTopology::layoutParasitic() {
  parasiticRun_ = layout::generateOtaLayout(tech_, sizing_.design, layoutOptions_,
                                            /*generateGeometry=*/false);
  hasParasiticRun_ = true;
  return parasiticRun_.parasitics;
}

void FoldedCascodeOtaTopology::feedback(sizing::SizingPolicy& policy,
                                        bool includeRouting) {
  policy.junctionTemplates = parasiticRun_.junctions;
  if (includeRouting) {
    policy.routingParasitics = &parasiticRun_.parasitics;
  }
}

void FoldedCascodeOtaTopology::prepareGeneration(bool includeBiasGenerator) {
  biasEnabled_ = includeBiasGenerator;
  if (biasEnabled_) {
    bias_ = sizing::designOtaBias(tech_, model_, sizing_.design);
  }
}

void FoldedCascodeOtaTopology::layoutGenerate() {
  layout::OtaLayoutOptions genOptions = layoutOptions_;
  if (biasEnabled_) {
    // Draw the bias generator into the rows; its nets are then routed and
    // their parasitics appear in the report.
    genOptions.biasGenerator = &bias_;
  }
  layout_ = layout::generateOtaLayout(tech_, sizing_.design, genOptions,
                                      /*generateGeometry=*/true);
}

void FoldedCascodeOtaTopology::applyExtracted() {
  extracted_ = sizing::applyExtractedGeometry(sizing_.design, layout_.junctions);
}

sizing::OtaPerformance FoldedCascodeOtaTopology::verify(
    const sizing::VerifyOptions& options) {
  if (biasEnabled_) {
    return sizing::measureAmplifier(
        tech_, model_,
        [&](circuit::Circuit& c) {
          circuit::instantiateOtaWithBias(c, extracted_, bias_);
        },
        extracted_.inputCm, extracted_.vdd, &layout_.parasitics, options);
  }
  return sizing::OtaVerifier(tech_, model_, options)
      .verify(extracted_, &layout_.parasitics);
}

verify::VerificationSetup FoldedCascodeOtaTopology::verificationSetup() {
  verify::VerificationSetup s;
  s.supported = true;
  // The instantiators capture design copies so the setup stays valid even
  // if the adapter is resized afterwards.
  if (biasEnabled_) {
    s.preLayout = [d = sizing_.design, b = bias_](circuit::Circuit& c) {
      circuit::instantiateOtaWithBias(c, d, b);
    };
    s.postLayout = [d = extracted_, b = bias_](circuit::Circuit& c) {
      circuit::instantiateOtaWithBias(c, d, b);
    };
  } else {
    s.preLayout = [d = sizing_.design](circuit::Circuit& c) {
      circuit::instantiateOta(c, d);
    };
    s.postLayout = [d = extracted_](circuit::Circuit& c) {
      circuit::instantiateOta(c, d);
    };
  }
  s.parasitics = &layout_.parasitics;
  s.inputCm = extracted_.inputCm;
  s.vdd = extracted_.vdd;
  return s;
}

}  // namespace lo::core
