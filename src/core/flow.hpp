// The layout-oriented synthesis flow (paper Fig. 1b) -- the paper's central
// contribution.
//
// Couples the sizing tool and the layout generator: after each sizing pass
// the layout tool runs in parasitic calculation mode and feeds back the fold
// plans, exact junction geometry, routing/coupling capacitance and well
// sizes; sizing then compensates by resizing.  The loop repeats "till the
// calculated parasitics remain unchanged", after which the layout tool runs
// once in generation mode, the netlist is extracted, and the result is
// verified by simulation.
//
// The four SizingCase values correspond to Table 1's columns: what the
// *sizing* run is told about the layout varies, while extraction and the
// verification simulation always see the full physical picture.
#pragma once

#include <string>
#include <vector>

#include "layout/ota_layout.hpp"
#include "sizing/ota_sizer.hpp"
#include "sizing/verify.hpp"
#include "tech/technology.hpp"

namespace lo::core {

enum class SizingCase {
  kCase1,  ///< No layout capacitance during sizing (neither diffusion nor routing).
  kCase2,  ///< Diffusion caps with pessimistic single-fold geometry, no routing.
  kCase3,  ///< Exact diffusion from layout feedback, no routing capacitance.
  kCase4,  ///< All layout parasitics fed back (the proposed methodology).
};

[[nodiscard]] constexpr const char* sizingCaseName(SizingCase c) {
  switch (c) {
    case SizingCase::kCase1: return "case1";
    case SizingCase::kCase2: return "case2";
    case SizingCase::kCase3: return "case3";
    case SizingCase::kCase4: return "case4";
  }
  return "?";
}

struct FlowOptions {
  SizingCase sizingCase = SizingCase::kCase4;
  std::string modelName = "ekv";
  /// Draw and verify the transistor-level bias generator instead of ideal
  /// bias voltage sources (corner-robust; costs four reference legs).
  bool includeBiasGenerator = false;
  layout::OtaLayoutOptions layoutOptions;
  int maxLayoutCalls = 8;
  /// Relative change of the critical-net capacitances below which the
  /// parasitics count as "unchanged".
  double convergenceTol = 0.02;
  sizing::VerifyOptions verifyOptions;
};

/// One sizing <-> layout iteration, for the convergence study.
struct FlowIteration {
  int layoutCall = 0;
  double capX1 = 0.0;    ///< Parasitic cap on the folding node [F].
  double capOut = 0.0;   ///< Parasitic cap on the output net [F].
  double capTail = 0.0;  ///< Tail net (includes the floating well) [F].
  double tailCurrent = 0.0;
  double pairWidth = 0.0;
};

struct FlowResult {
  sizing::SizingResult sizing;          ///< Final sizing pass.
  circuit::OtaBiasDesign bias;          ///< Valid when includeBiasGenerator.
  layout::OtaLayoutResult layout;       ///< Generation-mode layout.
  circuit::FoldedCascodeOtaDesign extractedDesign;  ///< Fold-quantised geometry.
  sizing::OtaPerformance predicted;     ///< Synthesised values (Table 1 plain).
  sizing::OtaPerformance measured;      ///< Extracted-netlist simulation (brackets).
  std::vector<FlowIteration> iterations;
  int layoutCalls = 0;                  ///< Parasitic-mode calls before convergence.
  bool parasiticConverged = false;
};

class SynthesisFlow {
 public:
  SynthesisFlow(const tech::Technology& t, FlowOptions options);

  [[nodiscard]] FlowResult run(const sizing::OtaSpecs& specs) const;

  [[nodiscard]] const device::MosModel& model() const { return *model_; }

 private:
  const tech::Technology& tech_;
  FlowOptions options_;
  std::unique_ptr<device::MosModel> model_;
};

}  // namespace lo::core
