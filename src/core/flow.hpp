// Back-compat face of the folded-cascode synthesis flow (paper Fig. 1b).
//
// The loop itself lives in SynthesisEngine (engine.hpp); SynthesisFlow is
// a thin wrapper that drives the engine with a FoldedCascodeOtaTopology
// adapter and repackages the outputs into the original FlowResult shape.
// SizingCase and sizingCaseName are defined in engine.hpp and re-exported
// here unchanged.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/ota_topology.hpp"

namespace lo::core {

struct FlowOptions {
  SizingCase sizingCase = SizingCase::kCase4;
  std::string modelName = "ekv";
  /// Draw and verify the transistor-level bias generator instead of ideal
  /// bias voltage sources (corner-robust; costs four reference legs).
  bool includeBiasGenerator = false;
  layout::OtaLayoutOptions layoutOptions;
  int maxLayoutCalls = 8;
  /// Relative change of the critical-net capacitances below which the
  /// parasitics count as "unchanged".
  double convergenceTol = 0.02;
  sizing::VerifyOptions verifyOptions;
};

/// One sizing <-> layout iteration, for the convergence study.
struct FlowIteration {
  int layoutCall = 0;
  double capX1 = 0.0;    ///< Parasitic cap on the folding node [F].
  double capOut = 0.0;   ///< Parasitic cap on the output net [F].
  double capTail = 0.0;  ///< Tail net (includes the floating well) [F].
  double tailCurrent = 0.0;
  double pairWidth = 0.0;
};

struct FlowResult {
  sizing::SizingResult sizing;          ///< Final sizing pass.
  circuit::OtaBiasDesign bias;          ///< Valid when includeBiasGenerator.
  layout::OtaLayoutResult layout;       ///< Generation-mode layout.
  circuit::FoldedCascodeOtaDesign extractedDesign;  ///< Fold-quantised geometry.
  sizing::OtaPerformance predicted;     ///< Synthesised values (Table 1 plain).
  sizing::OtaPerformance measured;      ///< Extracted-netlist simulation (brackets).
  std::vector<FlowIteration> iterations;
  int layoutCalls = 0;                  ///< Parasitic-mode calls before convergence.
  bool parasiticConverged = false;
};

class SynthesisFlow {
 public:
  SynthesisFlow(const tech::Technology& t, FlowOptions options);

  [[nodiscard]] FlowResult run(const sizing::OtaSpecs& specs) const;

  [[nodiscard]] const device::MosModel& model() const { return engine_.model(); }

 private:
  const tech::Technology& tech_;
  FlowOptions options_;
  SynthesisEngine engine_;
};

}  // namespace lo::core
