// Folded-cascode OTA adapter for the synthesis engine: wraps the COMDIAC
// design plan (sizing::OtaSizer), the CAIRO layout program
// (layout::generateOtaLayout), the optional transistor-level bias
// generator and the verification testbenches behind the Topology hooks.
#pragma once

#include "core/topology.hpp"
#include "layout/ota_layout.hpp"
#include "sizing/ota_sizer.hpp"

namespace lo::core {

class FoldedCascodeOtaTopology final : public Topology {
 public:
  FoldedCascodeOtaTopology(const tech::Technology& t, const device::MosModel& model,
                           layout::OtaLayoutOptions layoutOptions = {});

  [[nodiscard]] std::string_view name() const override {
    return kFoldedCascodeOtaTopologyName;
  }
  [[nodiscard]] const std::vector<std::string>& criticalNets() const override;
  [[nodiscard]] layout::ConstraintSet placementConstraints() const override {
    return layout::otaPlacementConstraints(layoutOptions_, biasEnabled_);
  }

  void size(const sizing::OtaSpecs& specs, const sizing::SizingPolicy& policy) override;
  const layout::ParasiticReport& layoutParasitic() override;
  void feedback(sizing::SizingPolicy& policy, bool includeRouting) override;
  void prepareGeneration(bool includeBiasGenerator) override;
  void layoutGenerate() override;
  void applyExtracted() override;
  [[nodiscard]] sizing::OtaPerformance verify(
      const sizing::VerifyOptions& options) override;
  [[nodiscard]] verify::VerificationSetup verificationSetup() override;

  [[nodiscard]] sizing::OtaPerformance predicted() const override {
    return sizing_.predicted;
  }
  [[nodiscard]] const layout::ParasiticReport* parasiticSnapshot() const override {
    return hasParasiticRun_ ? &parasiticRun_.parasitics : nullptr;
  }
  [[nodiscard]] double primaryCurrent() const override {
    return sizing_.design.tailCurrent;
  }
  [[nodiscard]] double pairWidth() const override { return sizing_.design.inputPair.w; }
  [[nodiscard]] geom::Coord layoutWidth() const override { return layout_.width; }
  [[nodiscard]] geom::Coord layoutHeight() const override { return layout_.height; }

  // Topology-specific outputs, valid after an engine run.
  [[nodiscard]] const sizing::SizingResult& sizingResult() const { return sizing_; }
  [[nodiscard]] const layout::OtaLayoutResult& layout() const { return layout_; }
  [[nodiscard]] const circuit::FoldedCascodeOtaDesign& extractedDesign() const {
    return extracted_;
  }
  [[nodiscard]] const circuit::OtaBiasDesign& bias() const { return bias_; }
  [[nodiscard]] bool biasEnabled() const { return biasEnabled_; }

 private:
  const tech::Technology& tech_;
  const device::MosModel& model_;
  layout::OtaLayoutOptions layoutOptions_;

  sizing::SizingResult sizing_;
  layout::OtaLayoutResult parasiticRun_;
  bool hasParasiticRun_ = false;
  layout::OtaLayoutResult layout_;
  circuit::FoldedCascodeOtaDesign extracted_;
  circuit::OtaBiasDesign bias_;
  bool biasEnabled_ = false;
};

}  // namespace lo::core
