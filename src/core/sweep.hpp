// Batch sweep driver: N independent synthesis jobs across a thread pool.
//
// The paper's speed argument ("the sizing process is very fast ... allows
// interactive exploration of wide variety of design space points") scales
// with cores once the engine is topology generic: every (topology, spec,
// process-corner) job is independent, so the driver fans them out over
// std::threads with full per-job isolation -- each job gets its own
// Technology copy (shifted to its corner) and its own MosModel instance,
// so no state is shared between workers.
//
// Results are returned in job order regardless of scheduling: a run with
// one worker and a run with N workers produce bit-identical output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace lo::core {

/// One synthesis job: which topology/case (inside options), what specs,
/// and at which process corner of the driver's base technology.
struct SweepJob {
  std::string label;  ///< Free-form tag echoed into the outcome.
  EngineOptions options;
  sizing::OtaSpecs specs;
  tech::ProcessCorner corner = tech::ProcessCorner::kTypical;
};

struct SweepOutcome {
  std::size_t index = 0;  ///< Position in the submitted job list.
  std::string label;
  bool ok = false;
  std::string error;      ///< Exception text when !ok.
  EngineResult result;    ///< Valid when ok.
};

class SweepDriver {
 public:
  /// `threads` = worker-thread cap; 0 picks hardware_concurrency().
  explicit SweepDriver(tech::Technology baseTech, int threads = 0);

  /// Run every job and return outcomes in job order.  A job that throws
  /// reports ok=false with the exception text instead of aborting the
  /// sweep.
  [[nodiscard]] std::vector<SweepOutcome> run(const std::vector<SweepJob>& jobs) const;

  /// Threads the driver will actually use for `jobCount` jobs.
  [[nodiscard]] int workerCount(std::size_t jobCount) const;

 private:
  tech::Technology baseTech_;
  int threads_ = 0;
};

}  // namespace lo::core
