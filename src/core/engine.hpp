// The topology-generic synthesis engine (paper Fig. 1b).
//
// One implementation of the paper's central loop for every topology:
//
//   size -> layout (parasitic calculation mode) -> snapshot critical-net
//   capacitances -> converged? -> feed layout knowledge back -> resize ->
//   ... -> layout (generation mode) -> extract -> verify by simulation.
//
// What the sizing pass is told about the layout is the SizingCase (Table 1
// columns); which nets must settle is the topology's criticalNets().  The
// engine owns the convergence bookkeeping, the policy schedule and the
// generation/extraction/verification tail; the Topology supplies the
// circuit-specific design plan and layout program.
//
// SynthesisFlow (flow.hpp) and runTwoStageFlow (two_stage_flow.hpp) are
// thin wrappers over this engine that preserve the original result types.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/topology.hpp"

namespace lo::core {

/// The pipeline stages the engine reports to EngineHooks::onStage.
enum class EngineStage {
  kSizing,            ///< A size() pass (design-plan run).
  kParasiticLayout,   ///< A parasitic-calculation-mode layout call.
  kGeneration,        ///< Generation-mode layout (full mask geometry).
  kExtraction,        ///< Extracted geometry applied back onto the design.
  kVerification,      ///< Verification-by-simulation.
  kPostLayoutVerify,  ///< Pre- vs post-layout spec comparison (lo_verify).
};

[[nodiscard]] constexpr const char* engineStageName(EngineStage s) {
  switch (s) {
    case EngineStage::kSizing: return "sizing";
    case EngineStage::kParasiticLayout: return "parasitic_layout";
    case EngineStage::kGeneration: return "generation";
    case EngineStage::kExtraction: return "extraction";
    case EngineStage::kVerification: return "verification";
    case EngineStage::kPostLayoutVerify: return "post_layout_verify";
  }
  return "?";
}

/// Thrown by the engine when EngineHooks::cancelRequested returns true
/// between stages; callers (the job scheduler) map it to a cancelled /
/// deadline-expired outcome.
class JobCancelled : public std::runtime_error {
 public:
  JobCancelled() : std::runtime_error("synthesis job cancelled") {}
};

/// Optional observation and control hooks threaded through a run.  All
/// callbacks may be invoked from whichever thread runs the engine; none
/// influences the numerical result, so hooked and hook-free runs stay
/// bit-identical.
struct EngineHooks {
  /// Polled before every pipeline stage (and every layout-loop iteration);
  /// returning true aborts the run with JobCancelled.
  std::function<bool()> cancelRequested;
  /// Called immediately before each stage body runs.  May throw: the
  /// exception propagates out of run() exactly as a stage failure would,
  /// which is how the testkit fault planner lands a TransientError in the
  /// middle of a run (after real work has already happened) instead of
  /// only at the attempt boundary.
  std::function<void(EngineStage)> onStageStart;
  /// Called after each stage with its wall-clock duration in seconds.
  std::function<void(EngineStage, double)> onStage;
};

enum class SizingCase {
  kCase1,  ///< No layout capacitance during sizing (neither diffusion nor routing).
  kCase2,  ///< Diffusion caps with pessimistic single-fold geometry, no routing.
  kCase3,  ///< Exact diffusion from layout feedback, no routing capacitance.
  kCase4,  ///< All layout parasitics fed back (the proposed methodology).
};

[[nodiscard]] constexpr const char* sizingCaseName(SizingCase c) {
  switch (c) {
    case SizingCase::kCase1: return "case1";
    case SizingCase::kCase2: return "case2";
    case SizingCase::kCase3: return "case3";
    case SizingCase::kCase4: return "case4";
  }
  return "?";
}

/// Does this case feed layout knowledge back into sizing (and hence run
/// the parasitic-mode loop at all)?
[[nodiscard]] constexpr bool usesLayoutFeedback(SizingCase c) {
  return c == SizingCase::kCase3 || c == SizingCase::kCase4;
}

struct EngineOptions {
  /// Registry key used by the registry-driven run(specs) overload.
  std::string topology = kFoldedCascodeOtaTopologyName;
  SizingCase sizingCase = SizingCase::kCase4;
  std::string modelName = "ekv";
  /// Draw and verify a transistor-level bias generator where the topology
  /// supports one (currently the folded-cascode OTA).
  bool includeBiasGenerator = false;
  int maxLayoutCalls = 8;
  /// Relative change of the critical-net capacitances below which the
  /// parasitics count as "unchanged".
  double convergenceTol = 0.02;
  sizing::VerifyOptions verifyOptions;
  /// The post-layout verification tier (off by default).  When enabled the
  /// engine runs a final kPostLayoutVerify stage that re-simulates the
  /// schematic and extracted netlists and judges the pre/post deltas; the
  /// knobs join the cache key only when the stage is on, so existing
  /// configurations keep their keys.
  verify::VerificationOptions postLayoutVerify;
  /// Cancellation / stage-timing hooks (not part of a job's identity: the
  /// service-layer cache key deliberately ignores them).
  EngineHooks hooks;
};

/// One sizing <-> layout iteration, for the convergence study.
struct EngineIteration {
  int layoutCall = 0;
  /// Capacitance on each critical net [F], aligned with
  /// EngineResult::criticalNets.
  std::vector<double> netCaps;
  double primaryCurrent = 0.0;  ///< Topology's headline bias current [A].
  double pairWidth = 0.0;       ///< Input-pair width [m].
};

/// How a parasitic loop that fell out of `maxLayoutCalls` actually failed
/// (or how it succeeded).  Downstream layers treat anything other than
/// kConverged as a degraded result: the scheduler surfaces it, the Pareto
/// archive refuses the point, and the sweep driver reports it.
enum class ConvergenceVerdict {
  kConverged,    ///< Critical-net caps settled below the tolerance.
  kOscillating,  ///< The cap vector revisits an earlier state (a cycle).
  kDrifting,     ///< Caps keep moving with no detected cycle.
};

[[nodiscard]] constexpr const char* convergenceVerdictName(ConvergenceVerdict v) {
  switch (v) {
    case ConvergenceVerdict::kConverged: return "converged";
    case ConvergenceVerdict::kOscillating: return "oscillating";
    case ConvergenceVerdict::kDrifting: return "drifting";
  }
  return "?";
}

/// The convergence watchdog's findings for one engine run.  Cases 1/2 skip
/// the parasitic loop entirely; they report kConverged with loopRan=false.
struct ConvergenceReport {
  ConvergenceVerdict verdict = ConvergenceVerdict::kConverged;
  bool loopRan = false;        ///< The sizing<->layout loop executed (cases 3/4).
  /// Relative change between the last two cap snapshots (1.0 when only a
  /// single snapshot exists, so an unfinished loop never looks settled).
  double worstResidual = 0.0;
  /// relativeChange between successive snapshots, one entry per layout
  /// call after the first.
  std::vector<double> callDeltas;
  /// Detected oscillation period in layout calls (>= 2); 0 otherwise.
  int cycleLength = 0;

  [[nodiscard]] bool converged() const {
    return verdict == ConvergenceVerdict::kConverged;
  }
};

/// The watchdog itself, exposed so tests can feed synthetic cap histories:
/// classifies an iteration history as converged / oscillating / drifting.
/// `tol` is the same tolerance the loop's exit criterion used; a cycle is
/// a final cap vector within `tol` of an earlier snapshot >= 2 calls back.
[[nodiscard]] ConvergenceReport analyzeConvergence(
    const std::vector<EngineIteration>& iterations, bool parasiticConverged,
    double tol);

struct EngineResult {
  std::vector<std::string> criticalNets;  ///< Order of EngineIteration::netCaps.
  std::vector<EngineIteration> iterations;
  int layoutCalls = 0;          ///< Parasitic-mode calls before convergence.
  bool parasiticConverged = false;
  ConvergenceReport convergence;  ///< Watchdog verdict over `iterations`.
  sizing::OtaPerformance predicted;  ///< Synthesised values (Table 1 plain).
  sizing::OtaPerformance measured;   ///< Extracted-netlist simulation (brackets).
  /// Pre- vs post-layout spec comparison; ran=false (and absent from the
  /// serialised result) unless EngineOptions::postLayoutVerify.enabled.
  verify::VerificationReport verification;
  /// Generation-mode cell bounding box [um]; 0 when the topology draws no
  /// geometry.  The slicing-tree result, surfaced so layout area can serve
  /// as an optimisation objective without adapter access.
  double layoutWidthUm = 0.0;
  double layoutHeightUm = 0.0;
  /// Wall-clock seconds per pipeline stage, in execution order (a stage
  /// that runs repeatedly, e.g. kSizing in the parasitic loop, appears once
  /// per execution).  Pure instrumentation: excluded from the serialised
  /// result and every cache key.
  std::vector<std::pair<EngineStage, double>> stageSeconds;

  [[nodiscard]] double layoutAreaUm2() const { return layoutWidthUm * layoutHeightUm; }
};

class SynthesisEngine {
 public:
  SynthesisEngine(const tech::Technology& t, EngineOptions options);

  /// Create the topology named by options.topology through the registry
  /// and run it.  Topology-specific outputs (layout cell, sized design,
  /// ...) are discarded; use the two-argument overload to keep them.
  [[nodiscard]] EngineResult run(const sizing::OtaSpecs& specs) const;

  /// Run a caller-owned topology instance (custom layout options, custom
  /// adapters).  After the call the instance holds the sizing result, the
  /// generation-mode layout and the extracted design.
  [[nodiscard]] EngineResult run(Topology& topology,
                                 const sizing::OtaSpecs& specs) const;

  [[nodiscard]] const device::MosModel& model() const { return *model_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// The Table 1 policy schedule shared by every topology.
  [[nodiscard]] static sizing::SizingPolicy policyFor(SizingCase c);

  /// Largest relative per-net change between two capacitance snapshots.
  /// Snapshots of different lengths (a topology whose critical-net list
  /// changed mid-loop) count as 100% change, never as "compare the common
  /// prefix and call it settled".
  [[nodiscard]] static double relativeChange(const std::vector<double>& a,
                                             const std::vector<double>& b);

 private:
  const tech::Technology& tech_;
  EngineOptions options_;
  std::unique_ptr<device::MosModel> model_;
};

}  // namespace lo::core
