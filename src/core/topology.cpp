#include "core/topology.hpp"

#include <sstream>
#include <stdexcept>

#include "core/ota_topology.hpp"
#include "core/two_stage_topology.hpp"

namespace lo::core {

TopologyRegistry::TopologyRegistry() {
  factories_[kFoldedCascodeOtaTopologyName] =
      [](const tech::Technology& t, const device::MosModel& m) {
        return std::make_unique<FoldedCascodeOtaTopology>(t, m);
      };
  factories_[kTwoStageTopologyName] =
      [](const tech::Technology& t, const device::MosModel& m) {
        return std::make_unique<TwoStageTopology>(t, m);
      };
}

TopologyRegistry& TopologyRegistry::instance() {
  static TopologyRegistry registry;
  return registry;
}

void TopologyRegistry::add(const std::string& name, Factory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (factories_.count(name) != 0) {
    throw std::invalid_argument("topology \"" + name +
                                "\" is already registered; duplicate "
                                "registrations are rejected");
  }
  factories_[name] = std::move(factory);
}

std::unique_ptr<Topology> TopologyRegistry::create(
    const std::string& name, const tech::Technology& t,
    const device::MosModel& model) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::ostringstream msg;
      msg << "unknown topology \"" << name << "\"; registered:";
      for (const auto& [key, unused] : factories_) msg << " " << key;
      throw std::invalid_argument(msg.str());
    }
    factory = it->second;
  }
  return factory(t, model);
}

bool TopologyRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::vector<std::string> TopologyRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, unused] : factories_) out.push_back(key);
  return out;
}

}  // namespace lo::core
