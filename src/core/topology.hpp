// Topology abstraction for the synthesis engine.
//
// The paper's flow (size -> parasitic-mode layout -> resize -> ... ->
// generation-mode layout -> extract -> verify) is topology independent;
// only the design plan, the layout program and the netlist differ between
// circuits.  A Topology bundles exactly those pieces behind the hooks the
// engine drives, so a new circuit plugs into the methodology by
// implementing this interface and registering a factory -- the paper's
// "hierarchy simplifies the addition of new topologies" claim, made into
// an API boundary.
//
// A Topology instance is *stateful per run*: the engine calls the hooks in
// a fixed order and the adapter accumulates the sizing result, the layout
// runs and the extracted design, which callers read back through the
// concrete adapter type (FoldedCascodeOtaTopology, TwoStageTopology).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "device/mos_model.hpp"
#include "layout/constraints.hpp"
#include "layout/extract.hpp"
#include "sizing/ota_spec.hpp"
#include "sizing/verify.hpp"
#include "tech/technology.hpp"
#include "verify/verify.hpp"

namespace lo::core {

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Nets whose parasitic capacitance must settle before the sizing <->
  /// layout loop counts as converged (paper: "till the calculated
  /// parasitics remain unchanged").  Fixed for the topology's lifetime.
  [[nodiscard]] virtual const std::vector<std::string>& criticalNets() const = 0;

  /// The matching intent the topology's layout program declares (mirror
  /// pairs, common-centroid stacks, rows) as first-class constraints; the
  /// engine validates them before the first layout call.  Topologies with
  /// no physical layout return an empty set.
  [[nodiscard]] virtual layout::ConstraintSet placementConstraints() const {
    return {};
  }

  /// Run (or re-run) the design plan under the current policy state.
  virtual void size(const sizing::OtaSpecs& specs,
                    const sizing::SizingPolicy& policy) = 0;

  /// Run the layout program in parasitic calculation mode on the current
  /// design and return the resulting per-net report.  The report stays
  /// owned by the topology and valid until the next layout call.
  virtual const layout::ParasiticReport& layoutParasitic() = 0;

  /// Feed the last parasitic-mode layout's knowledge (junction templates,
  /// and the routing/coupling/well report when `includeRouting`) back into
  /// `policy` for the next size() call.
  virtual void feedback(sizing::SizingPolicy& policy, bool includeRouting) = 0;

  /// Hook before the generation-mode layout; topologies that support a
  /// drawn bias generator design it here.
  virtual void prepareGeneration(bool /*includeBiasGenerator*/) {}

  /// Run the layout program in generation mode (full mask geometry).
  virtual void layoutGenerate() = 0;

  /// Replace the design's geometry with what the layout actually drew
  /// (fold-quantised widths, exact junctions, drawn passives).
  virtual void applyExtracted() = 0;

  /// Verify the extracted design by simulation against the generation-mode
  /// parasitic report.
  [[nodiscard]] virtual sizing::OtaPerformance verify(
      const sizing::VerifyOptions& options) = 0;

  /// Hand the post-layout verification tier its inputs: instantiators for
  /// the schematic-level and extracted netlists plus the generation-mode
  /// parasitic report.  Valid after applyExtracted(); topologies without
  /// a simulatable netlist keep the default (supported = false) and the
  /// engine skips the stage.
  [[nodiscard]] virtual verify::VerificationSetup verificationSetup() { return {}; }

  /// Performance predicted by the last sizing pass.
  [[nodiscard]] virtual sizing::OtaPerformance predicted() const = 0;

  /// Last parasitic-mode report, or nullptr before the first layout call
  /// (the engine's convergence snapshots are taken from this).
  [[nodiscard]] virtual const layout::ParasiticReport* parasiticSnapshot() const = 0;

  /// Diagnostics recorded into the per-iteration history.
  [[nodiscard]] virtual double primaryCurrent() const = 0;
  [[nodiscard]] virtual double pairWidth() const = 0;

  /// Bounding-box dimensions of the generation-mode layout [nm]; 0 before
  /// layoutGenerate() has run (or for topologies with no physical layout).
  /// The engine records these into EngineResult so downstream consumers
  /// (the design-space explorer's area objective) need no adapter access.
  [[nodiscard]] virtual geom::Coord layoutWidth() const { return 0; }
  [[nodiscard]] virtual geom::Coord layoutHeight() const { return 0; }
};

/// String-keyed factory table for topologies.  The built-in adapters
/// (folded_cascode_ota, two_stage) are registered on first access; new
/// topologies register themselves at startup or from user code.
class TopologyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Topology>(
      const tech::Technology&, const device::MosModel&)>;

  /// The process-wide registry (thread safe).
  [[nodiscard]] static TopologyRegistry& instance();

  /// Register a factory under `name`; throws std::invalid_argument when the
  /// name is already taken (silent replacement hid registration clashes).
  void add(const std::string& name, Factory factory);

  /// Instantiate a registered topology; throws std::invalid_argument
  /// naming the unknown key and the known ones.
  [[nodiscard]] std::unique_ptr<Topology> create(
      const std::string& name, const tech::Technology& t,
      const device::MosModel& model) const;

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  TopologyRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

/// Registry keys of the built-in topologies.
inline constexpr const char* kFoldedCascodeOtaTopologyName = "folded_cascode_ota";
inline constexpr const char* kTwoStageTopologyName = "two_stage";

}  // namespace lo::core
