// Two-stage Miller OTA adapter for the synthesis engine: the design plan
// (sizing::TwoStageSizer), the two-stage layout program (including the
// drawn compensation capacitor and nulling resistor) and the shared
// verification testbenches behind the Topology hooks.
#pragma once

#include "core/topology.hpp"
#include "layout/two_stage_layout.hpp"
#include "sizing/two_stage.hpp"

namespace lo::core {

class TwoStageTopology final : public Topology {
 public:
  TwoStageTopology(const tech::Technology& t, const device::MosModel& model,
                   layout::TwoStageLayoutOptions layoutOptions = {});

  [[nodiscard]] std::string_view name() const override { return kTwoStageTopologyName; }
  [[nodiscard]] const std::vector<std::string>& criticalNets() const override;
  [[nodiscard]] layout::ConstraintSet placementConstraints() const override {
    return layout::twoStagePlacementConstraints();
  }

  void size(const sizing::OtaSpecs& specs, const sizing::SizingPolicy& policy) override;
  const layout::ParasiticReport& layoutParasitic() override;
  void feedback(sizing::SizingPolicy& policy, bool includeRouting) override;
  void layoutGenerate() override;
  void applyExtracted() override;
  [[nodiscard]] sizing::OtaPerformance verify(
      const sizing::VerifyOptions& options) override;
  [[nodiscard]] verify::VerificationSetup verificationSetup() override;

  [[nodiscard]] sizing::OtaPerformance predicted() const override {
    return sizing_.predicted;
  }
  [[nodiscard]] const layout::ParasiticReport* parasiticSnapshot() const override {
    return hasParasiticRun_ ? &parasiticRun_.parasitics : nullptr;
  }
  [[nodiscard]] double primaryCurrent() const override {
    return sizing_.design.tailCurrent;
  }
  [[nodiscard]] double pairWidth() const override { return sizing_.design.inputPair.w; }
  [[nodiscard]] geom::Coord layoutWidth() const override { return layout_.width; }
  [[nodiscard]] geom::Coord layoutHeight() const override { return layout_.height; }

  // Topology-specific outputs, valid after an engine run.
  [[nodiscard]] const sizing::TwoStageSizingResult& sizingResult() const {
    return sizing_;
  }
  [[nodiscard]] const layout::TwoStageLayoutResult& layout() const { return layout_; }
  [[nodiscard]] const circuit::TwoStageOtaDesign& extractedDesign() const {
    return extracted_;
  }

 private:
  const tech::Technology& tech_;
  const device::MosModel& model_;
  layout::TwoStageLayoutOptions layoutOptions_;

  sizing::TwoStageSizingResult sizing_;
  layout::TwoStageLayoutResult parasiticRun_;
  bool hasParasiticRun_ = false;
  layout::TwoStageLayoutResult layout_;
  circuit::TwoStageOtaDesign extracted_;
};

}  // namespace lo::core
