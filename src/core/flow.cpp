#include "core/flow.hpp"

#include "sizing/ota_sizer.hpp"

#include <cmath>

namespace lo::core {

namespace {

using circuit::OtaGroup;

sizing::SizingPolicy policyFor(SizingCase c) {
  sizing::SizingPolicy p;
  switch (c) {
    case SizingCase::kCase1:
      p.diffusionCaps = false;
      break;
    case SizingCase::kCase2:
      p.diffusionCaps = true;
      p.exactDiffusion = false;
      break;
    case SizingCase::kCase3:
    case SizingCase::kCase4:
      p.diffusionCaps = true;
      p.exactDiffusion = true;
      break;
  }
  return p;
}

/// Relative change between two parasitic snapshots on the critical nets.
double relativeChange(const FlowIteration& a, const FlowIteration& b) {
  auto rel = [](double x, double y) {
    const double base = std::max(std::abs(x), 1e-18);
    return std::abs(x - y) / base;
  };
  return std::max({rel(a.capX1, b.capX1), rel(a.capOut, b.capOut),
                   rel(a.capTail, b.capTail)});
}

FlowIteration snapshotIteration(int call, const layout::OtaLayoutResult& lay,
                                const circuit::FoldedCascodeOtaDesign& d) {
  FlowIteration it;
  it.layoutCall = call;
  it.capX1 = lay.parasitics.capOn("x1");
  it.capOut = lay.parasitics.capOn("out");
  it.capTail = lay.parasitics.capOn("tail");
  it.tailCurrent = d.tailCurrent;
  it.pairWidth = d.inputPair.w;
  return it;
}

}  // namespace

SynthesisFlow::SynthesisFlow(const tech::Technology& t, FlowOptions options)
    : tech_(t), options_(std::move(options)),
      model_(device::MosModel::create(options_.modelName)) {}

FlowResult SynthesisFlow::run(const sizing::OtaSpecs& specs) const {
  FlowResult result;
  sizing::OtaSizer sizer(tech_, *model_);
  sizing::SizingPolicy policy = policyFor(options_.sizingCase);
  const bool usesLayoutFeedback = options_.sizingCase == SizingCase::kCase3 ||
                                  options_.sizingCase == SizingCase::kCase4;

  // First sizing: "one fold per transistor, only diffusion capacitances"
  // (cases 2-4) or no layout caps at all (case 1).
  result.sizing = sizer.size(specs, policy);

  layout::OtaLayoutResult parasiticRun;
  if (usesLayoutFeedback) {
    // Sizing <-> layout loop in parasitic calculation mode.
    FlowIteration prev;
    for (int call = 1; call <= options_.maxLayoutCalls; ++call) {
      parasiticRun = layout::generateOtaLayout(tech_, result.sizing.design,
                                               options_.layoutOptions,
                                               /*generateGeometry=*/false);
      ++result.layoutCalls;
      const FlowIteration it =
          snapshotIteration(call, parasiticRun, result.sizing.design);
      result.iterations.push_back(it);

      if (call > 1 && relativeChange(prev, it) < options_.convergenceTol) {
        result.parasiticConverged = true;
        break;
      }
      prev = it;

      // Feed the layout knowledge back into the sizing policy and resize.
      policy.junctionTemplates = parasiticRun.junctions;
      if (options_.sizingCase == SizingCase::kCase4) {
        policy.routingParasitics = &parasiticRun.parasitics;
      }
      result.sizing = sizer.size(specs, policy);
    }
  }

  // Generation mode: the physical layout of the final design (with the
  // bias generator drawn into the rows when requested).
  layout::OtaLayoutOptions genOptions = options_.layoutOptions;
  if (options_.includeBiasGenerator) {
    result.bias = sizing::designOtaBias(tech_, *model_, result.sizing.design);
    genOptions.biasGenerator = &result.bias;
  }
  result.layout = layout::generateOtaLayout(tech_, result.sizing.design, genOptions,
                                            /*generateGeometry=*/true);

  // Extraction: fold-quantised device geometry + full parasitic report.
  result.extractedDesign =
      sizing::applyExtractedGeometry(result.sizing.design, result.layout.junctions);

  // Verification by simulation of the extracted netlist (always with every
  // parasitic, whatever the sizing case -- this is the "between brackets"
  // column of Table 1).
  if (options_.includeBiasGenerator) {
    result.measured = sizing::measureAmplifier(
        tech_, *model_,
        [&](circuit::Circuit& c) {
          circuit::instantiateOtaWithBias(c, result.extractedDesign, result.bias);
        },
        result.extractedDesign.inputCm, result.extractedDesign.vdd,
        &result.layout.parasitics, options_.verifyOptions);
  } else {
    sizing::OtaVerifier verifier(tech_, *model_, options_.verifyOptions);
    result.measured = verifier.verify(result.extractedDesign, &result.layout.parasitics);
  }
  result.predicted = result.sizing.predicted;
  return result;
}

}  // namespace lo::core
