#include "core/flow.hpp"

namespace lo::core {

namespace {

EngineOptions toEngineOptions(const FlowOptions& o) {
  EngineOptions e;
  e.topology = kFoldedCascodeOtaTopologyName;
  e.sizingCase = o.sizingCase;
  e.modelName = o.modelName;
  e.includeBiasGenerator = o.includeBiasGenerator;
  e.maxLayoutCalls = o.maxLayoutCalls;
  e.convergenceTol = o.convergenceTol;
  e.verifyOptions = o.verifyOptions;
  return e;
}

}  // namespace

SynthesisFlow::SynthesisFlow(const tech::Technology& t, FlowOptions options)
    : tech_(t), options_(std::move(options)), engine_(t, toEngineOptions(options_)) {}

FlowResult SynthesisFlow::run(const sizing::OtaSpecs& specs) const {
  FoldedCascodeOtaTopology topology(tech_, engine_.model(), options_.layoutOptions);
  const EngineResult er = engine_.run(topology, specs);

  FlowResult result;
  result.sizing = topology.sizingResult();
  result.bias = topology.bias();
  result.layout = topology.layout();
  result.extractedDesign = topology.extractedDesign();
  result.predicted = er.predicted;
  result.measured = er.measured;
  result.layoutCalls = er.layoutCalls;
  result.parasiticConverged = er.parasiticConverged;
  // criticalNets() order is {x1, out, tail}.
  result.iterations.reserve(er.iterations.size());
  for (const EngineIteration& it : er.iterations) {
    FlowIteration fi;
    fi.layoutCall = it.layoutCall;
    fi.capX1 = it.netCaps[0];
    fi.capOut = it.netCaps[1];
    fi.capTail = it.netCaps[2];
    fi.tailCurrent = it.primaryCurrent;
    fi.pairWidth = it.pairWidth;
    result.iterations.push_back(fi);
  }
  return result;
}

}  // namespace lo::core
