#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace lo::core {

SweepDriver::SweepDriver(tech::Technology baseTech, int threads)
    : baseTech_(std::move(baseTech)), threads_(threads) {}

int SweepDriver::workerCount(std::size_t jobCount) const {
  int threads = threads_;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  return std::max(1, std::min<int>(threads, static_cast<int>(jobCount)));
}

std::vector<SweepOutcome> SweepDriver::run(const std::vector<SweepJob>& jobs) const {
  std::vector<SweepOutcome> outcomes(jobs.size());

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < jobs.size(); i = next.fetch_add(1)) {
      const SweepJob& job = jobs[i];
      SweepOutcome& out = outcomes[i];
      out.index = i;
      out.label = job.label;
      try {
        // Per-job isolation: a private Technology at the job's corner and,
        // inside the engine, a private MosModel instance.
        const tech::Technology jobTech = baseTech_.atCorner(job.corner);
        const SynthesisEngine engine(jobTech, job.options);
        out.result = engine.run(job.specs);
        out.ok = true;
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
      }
    }
  };

  const int threads = workerCount(jobs.size());
  if (threads <= 1) {
    worker();
    return outcomes;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return outcomes;
}

}  // namespace lo::core
