#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace lo::core {

sizing::SizingPolicy SynthesisEngine::policyFor(SizingCase c) {
  sizing::SizingPolicy p;
  switch (c) {
    case SizingCase::kCase1:
      p.diffusionCaps = false;
      break;
    case SizingCase::kCase2:
      p.diffusionCaps = true;
      p.exactDiffusion = false;
      break;
    case SizingCase::kCase3:
    case SizingCase::kCase4:
      p.diffusionCaps = true;
      p.exactDiffusion = true;
      break;
  }
  return p;
}

double SynthesisEngine::relativeChange(const std::vector<double>& a,
                                       const std::vector<double>& b) {
  // A length mismatch means the critical-net set itself changed between
  // snapshots; treating it as 100% change keeps the loop running instead
  // of silently comparing only the common prefix.
  if (a.size() != b.size()) return 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double base = std::max(std::abs(a[i]), 1e-18);
    worst = std::max(worst, std::abs(a[i] - b[i]) / base);
  }
  return worst;
}

ConvergenceReport analyzeConvergence(const std::vector<EngineIteration>& iterations,
                                     bool parasiticConverged, double tol) {
  ConvergenceReport report;
  report.loopRan = !iterations.empty();
  if (!report.loopRan) return report;  // Cases 1/2: nothing to converge.

  const std::size_t n = iterations.size();
  report.callDeltas.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    report.callDeltas.push_back(SynthesisEngine::relativeChange(
        iterations[i - 1].netCaps, iterations[i].netCaps));
  }
  // A single snapshot carries no settling evidence at all.
  report.worstResidual = report.callDeltas.empty() ? 1.0 : report.callDeltas.back();

  if (parasiticConverged) return report;  // verdict stays kConverged.

  // The loop fell out of maxLayoutCalls still moving.  Oscillation: the
  // final cap vector matches (within tol) an earlier snapshot at least two
  // calls back, so the loop was revisiting states, not approaching one.
  const std::vector<double>& last = iterations[n - 1].netCaps;
  for (std::size_t period = 2; period < n; ++period) {
    if (SynthesisEngine::relativeChange(iterations[n - 1 - period].netCaps, last) <
        std::max(tol, 1e-12)) {
      report.verdict = ConvergenceVerdict::kOscillating;
      report.cycleLength = static_cast<int>(period);
      return report;
    }
  }
  report.verdict = ConvergenceVerdict::kDrifting;
  return report;
}

SynthesisEngine::SynthesisEngine(const tech::Technology& t, EngineOptions options)
    : tech_(t), options_(std::move(options)),
      model_(device::MosModel::create(options_.modelName)) {}

EngineResult SynthesisEngine::run(const sizing::OtaSpecs& specs) const {
  const auto topology =
      TopologyRegistry::instance().create(options_.topology, tech_, *model_);
  return run(*topology, specs);
}

EngineResult SynthesisEngine::run(Topology& topology,
                                  const sizing::OtaSpecs& specs) const {
  const EngineHooks& hooks = options_.hooks;
  const auto checkCancel = [&hooks] {
    if (hooks.cancelRequested && hooks.cancelRequested()) throw JobCancelled();
  };
  EngineResult result;

  // Every stage execution is timed and recorded on the result (the hot-path
  // trajectory bench/ext_sim and the perf logs read), whether or not an
  // onStage hook is listening.
  const auto timed = [&hooks, &result](EngineStage stage, auto&& body) {
    if (hooks.onStageStart) hooks.onStageStart(stage);
    const auto start = std::chrono::steady_clock::now();
    body();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    result.stageSeconds.emplace_back(stage, seconds);
    if (hooks.onStage) hooks.onStage(stage, seconds);
  };

  result.criticalNets = topology.criticalNets();

  // A malformed matching declaration fails every layout call identically;
  // reject it up front with the full violation list instead of letting the
  // first parasitic-mode layout throw mid-loop.
  layout::requireValidConstraints(topology.placementConstraints());

  sizing::SizingPolicy policy = policyFor(options_.sizingCase);

  // First sizing: "one fold per transistor, only diffusion capacitances"
  // (cases 2-4) or no layout caps at all (case 1).
  checkCancel();
  timed(EngineStage::kSizing, [&] { topology.size(specs, policy); });

  if (usesLayoutFeedback(options_.sizingCase)) {
    // Sizing <-> layout loop in parasitic calculation mode, until the
    // critical-net capacitances remain unchanged.
    std::vector<double> prev;
    for (int call = 1; call <= options_.maxLayoutCalls; ++call) {
      checkCancel();
      const layout::ParasiticReport* reportPtr = nullptr;
      timed(EngineStage::kParasiticLayout,
            [&] { reportPtr = &topology.layoutParasitic(); });
      const layout::ParasiticReport& report = *reportPtr;
      ++result.layoutCalls;

      EngineIteration it;
      it.layoutCall = call;
      it.netCaps.reserve(result.criticalNets.size());
      for (const std::string& net : result.criticalNets) {
        it.netCaps.push_back(report.capOn(net));
      }
      it.primaryCurrent = topology.primaryCurrent();
      it.pairWidth = topology.pairWidth();
      result.iterations.push_back(it);

      if (call > 1 && relativeChange(prev, it.netCaps) < options_.convergenceTol) {
        result.parasiticConverged = true;
        break;
      }
      prev = it.netCaps;

      // Feed the layout knowledge back into the sizing policy and resize.
      checkCancel();
      topology.feedback(policy, options_.sizingCase == SizingCase::kCase4);
      timed(EngineStage::kSizing, [&] { topology.size(specs, policy); });
    }
  }

  result.convergence = analyzeConvergence(result.iterations,
                                          result.parasiticConverged,
                                          options_.convergenceTol);

  // Generation mode, extraction and verification-by-simulation: always with
  // every parasitic, whatever the sizing case (Table 1's bracket column).
  checkCancel();
  timed(EngineStage::kGeneration, [&] {
    topology.prepareGeneration(options_.includeBiasGenerator);
    topology.layoutGenerate();
  });
  result.layoutWidthUm = static_cast<double>(topology.layoutWidth()) * 1e-3;
  result.layoutHeightUm = static_cast<double>(topology.layoutHeight()) * 1e-3;
  timed(EngineStage::kExtraction, [&] { topology.applyExtracted(); });
  checkCancel();
  timed(EngineStage::kVerification,
        [&] { result.measured = topology.verify(options_.verifyOptions); });
  result.predicted = topology.predicted();

  // Post-layout verification tier: re-simulate schematic vs extracted
  // netlists and judge the per-spec deltas.  The extracted-netlist core
  // measurement is reused from the verification stage above, so the extra
  // cost is the schematic re-measurement plus the extended sweeps.
  if (options_.postLayoutVerify.enabled) {
    checkCancel();
    timed(EngineStage::kPostLayoutVerify, [&] {
      const verify::VerificationSetup setup = topology.verificationSetup();
      if (setup.supported) {
        result.verification = verify::runVerification(
            tech_, *model_, setup, specs, options_.verifyOptions,
            options_.postLayoutVerify, &result.measured);
      }
    });
  }
  return result;
}

}  // namespace lo::core
