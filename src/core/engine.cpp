#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace lo::core {

sizing::SizingPolicy SynthesisEngine::policyFor(SizingCase c) {
  sizing::SizingPolicy p;
  switch (c) {
    case SizingCase::kCase1:
      p.diffusionCaps = false;
      break;
    case SizingCase::kCase2:
      p.diffusionCaps = true;
      p.exactDiffusion = false;
      break;
    case SizingCase::kCase3:
    case SizingCase::kCase4:
      p.diffusionCaps = true;
      p.exactDiffusion = true;
      break;
  }
  return p;
}

double SynthesisEngine::relativeChange(const std::vector<double>& a,
                                       const std::vector<double>& b) {
  double worst = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double base = std::max(std::abs(a[i]), 1e-18);
    worst = std::max(worst, std::abs(a[i] - b[i]) / base);
  }
  return worst;
}

SynthesisEngine::SynthesisEngine(const tech::Technology& t, EngineOptions options)
    : tech_(t), options_(std::move(options)),
      model_(device::MosModel::create(options_.modelName)) {}

EngineResult SynthesisEngine::run(const sizing::OtaSpecs& specs) const {
  const auto topology =
      TopologyRegistry::instance().create(options_.topology, tech_, *model_);
  return run(*topology, specs);
}

EngineResult SynthesisEngine::run(Topology& topology,
                                  const sizing::OtaSpecs& specs) const {
  const EngineHooks& hooks = options_.hooks;
  const auto checkCancel = [&hooks] {
    if (hooks.cancelRequested && hooks.cancelRequested()) throw JobCancelled();
  };
  const auto timed = [&hooks](EngineStage stage, auto&& body) {
    if (hooks.onStageStart) hooks.onStageStart(stage);
    if (!hooks.onStage) {
      body();
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    body();
    hooks.onStage(stage, std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  };

  EngineResult result;
  result.criticalNets = topology.criticalNets();

  sizing::SizingPolicy policy = policyFor(options_.sizingCase);

  // First sizing: "one fold per transistor, only diffusion capacitances"
  // (cases 2-4) or no layout caps at all (case 1).
  checkCancel();
  timed(EngineStage::kSizing, [&] { topology.size(specs, policy); });

  if (usesLayoutFeedback(options_.sizingCase)) {
    // Sizing <-> layout loop in parasitic calculation mode, until the
    // critical-net capacitances remain unchanged.
    std::vector<double> prev;
    for (int call = 1; call <= options_.maxLayoutCalls; ++call) {
      checkCancel();
      const layout::ParasiticReport* reportPtr = nullptr;
      timed(EngineStage::kParasiticLayout,
            [&] { reportPtr = &topology.layoutParasitic(); });
      const layout::ParasiticReport& report = *reportPtr;
      ++result.layoutCalls;

      EngineIteration it;
      it.layoutCall = call;
      it.netCaps.reserve(result.criticalNets.size());
      for (const std::string& net : result.criticalNets) {
        it.netCaps.push_back(report.capOn(net));
      }
      it.primaryCurrent = topology.primaryCurrent();
      it.pairWidth = topology.pairWidth();
      result.iterations.push_back(it);

      if (call > 1 && relativeChange(prev, it.netCaps) < options_.convergenceTol) {
        result.parasiticConverged = true;
        break;
      }
      prev = it.netCaps;

      // Feed the layout knowledge back into the sizing policy and resize.
      checkCancel();
      topology.feedback(policy, options_.sizingCase == SizingCase::kCase4);
      timed(EngineStage::kSizing, [&] { topology.size(specs, policy); });
    }
  }

  // Generation mode, extraction and verification-by-simulation: always with
  // every parasitic, whatever the sizing case (Table 1's bracket column).
  checkCancel();
  timed(EngineStage::kGeneration, [&] {
    topology.prepareGeneration(options_.includeBiasGenerator);
    topology.layoutGenerate();
  });
  result.layoutWidthUm = static_cast<double>(topology.layoutWidth()) * 1e-3;
  result.layoutHeightUm = static_cast<double>(topology.layoutHeight()) * 1e-3;
  timed(EngineStage::kExtraction, [&] { topology.applyExtracted(); });
  checkCancel();
  timed(EngineStage::kVerification,
        [&] { result.measured = topology.verify(options_.verifyOptions); });
  result.predicted = topology.predicted();
  return result;
}

}  // namespace lo::core
