// Back-compat face of the two-stage Miller OTA flow: a thin wrapper that
// drives the shared SynthesisEngine (engine.hpp) with a TwoStageTopology
// adapter and repackages the outputs into the original result shape.
#pragma once

#include "core/engine.hpp"
#include "core/two_stage_topology.hpp"

namespace lo::core {

struct TwoStageFlowOptions {
  SizingCase sizingCase = SizingCase::kCase4;
  std::string modelName = "ekv";
  layout::TwoStageLayoutOptions layoutOptions;
  int maxLayoutCalls = 8;
  double convergenceTol = 0.02;
  sizing::VerifyOptions verifyOptions;
};

struct TwoStageFlowResult {
  sizing::TwoStageSizingResult sizing;
  layout::TwoStageLayoutResult layout;
  circuit::TwoStageOtaDesign extractedDesign;
  sizing::OtaPerformance predicted;
  sizing::OtaPerformance measured;
  int layoutCalls = 0;
  bool parasiticConverged = false;
};

[[nodiscard]] TwoStageFlowResult runTwoStageFlow(const tech::Technology& t,
                                                 const TwoStageFlowOptions& options,
                                                 const sizing::OtaSpecs& specs);

}  // namespace lo::core
