// Layout-oriented synthesis flow for the two-stage Miller OTA: the same
// sizing <-> layout-parasitic loop as the folded cascode, driving the
// two-stage design plan and layout program.  Demonstrates the paper's claim
// that new topologies slot into the methodology unchanged.
#pragma once

#include "core/flow.hpp"
#include "layout/two_stage_layout.hpp"
#include "sizing/two_stage.hpp"

namespace lo::core {

struct TwoStageFlowOptions {
  SizingCase sizingCase = SizingCase::kCase4;
  std::string modelName = "ekv";
  layout::TwoStageLayoutOptions layoutOptions;
  int maxLayoutCalls = 8;
  double convergenceTol = 0.02;
  sizing::VerifyOptions verifyOptions;
};

struct TwoStageFlowResult {
  sizing::TwoStageSizingResult sizing;
  layout::TwoStageLayoutResult layout;
  circuit::TwoStageOtaDesign extractedDesign;
  sizing::OtaPerformance predicted;
  sizing::OtaPerformance measured;
  int layoutCalls = 0;
  bool parasiticConverged = false;
};

[[nodiscard]] TwoStageFlowResult runTwoStageFlow(const tech::Technology& t,
                                                 const TwoStageFlowOptions& options,
                                                 const sizing::OtaSpecs& specs);

}  // namespace lo::core
