// COMDIAC-style knowledge-based sizing of the folded-cascode OTA.
//
// Follows the paper's design plan (section 4): the operating point (gate
// drive and length) of every matched group is fixed up front; currents are
// estimated from the GBW target; widths follow by model inversion; the plan
// then iterates until the phase margin is met (raising the folded-branch
// current, then the gate drives) and re-estimates currents until the GBW
// capacitance budget converges.  The parasitics included in the budget are
// dictated by the SizingPolicy (Table 1 cases 1-4).
#pragma once

#include "circuit/ota.hpp"
#include "device/mos_model.hpp"
#include "sizing/ota_evaluator.hpp"
#include "sizing/ota_spec.hpp"
#include "tech/technology.hpp"

namespace lo::sizing {

struct SizingResult {
  circuit::FoldedCascodeOtaDesign design;
  OtaPerformance predicted;
  OperatingChoices finalChoices;  ///< Gate drives after the PM adjustments.
  int gbwIterations = 0;
  int pmIterations = 0;
  bool converged = false;
};

/// Size the transistor-level bias generator for a finished OTA design: the
/// vbn/vp1 diodes are the sink/tail devices scaled to the reference current
/// (exact mirror tracking), and the cascode-bias diodes are sized so their
/// VGS reproduces the designed vc1 / (vdd - vc3) levels.
[[nodiscard]] circuit::OtaBiasDesign designOtaBias(
    const tech::Technology& t, const device::MosModel& model,
    const circuit::FoldedCascodeOtaDesign& design);

class OtaSizer {
 public:
  OtaSizer(const tech::Technology& t, const device::MosModel& model)
      : tech_(t), model_(model), evaluator_(t, model) {}

  [[nodiscard]] SizingResult size(const OtaSpecs& specs, const SizingPolicy& policy,
                                  OperatingChoices choices = {}) const;

 private:
  /// Rebuild the whole design for the current choices / currents.
  void buildDesign(const OtaSpecs& specs, const SizingPolicy& policy,
                   const OperatingChoices& choices, double gm1, double cascodeRatio,
                   circuit::FoldedCascodeOtaDesign& d) const;

  /// Apply the policy's junction-geometry knowledge to one device.
  void applyJunctionPolicy(const SizingPolicy& policy, circuit::OtaGroup group,
                           device::MosGeometry& geo) const;

  const tech::Technology& tech_;
  const device::MosModel& model_;
  OtaEvaluator evaluator_;
};

}  // namespace lo::sizing
