// Specifications, operating-point choices and performance records for the
// folded-cascode OTA synthesis (Table 1 of the paper).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "circuit/ota.hpp"
#include "circuit/two_stage.hpp"
#include "device/mos_op.hpp"
#include "layout/extract.hpp"

namespace lo::sizing {

/// Input specifications (paper, Table 1 caption).
struct OtaSpecs {
  double vdd = 3.3;
  double gbw = 65e6;             ///< Gain-bandwidth product target [Hz].
  double phaseMarginDeg = 65.0;
  double cload = 3e-12;
  double inputCmLow = 0.55;      ///< Input common-mode range [V].
  double inputCmHigh = 1.84;
  double outputLow = 0.51;       ///< Output voltage range [V].
  double outputHigh = 2.31;
  // Extended spec surface judged by the post-layout verification tier.
  // 0 means "unconstrained" (the measurement is still reported).
  double thdMaxPercent = 0.0;    ///< Max THD at the verify tone [%].
  double psrrMinDb = 0.0;        ///< Min low-frequency supply rejection [dB].
  double offsetMaxMv = 0.0;      ///< Max |input-referred offset| [mV].

  [[nodiscard]] double inputCmMid() const { return 0.5 * (inputCmLow + inputCmHigh); }
};

/// The fixed per-group operating points COMDIAC starts from: "The dc
/// operating point of all transistors is fixed at the beginning of the
/// sizing process ... the effective gate-source voltage VGS - VTH is held
/// constant" (paper, section 4).
struct OperatingChoices {
  struct GroupChoice {
    double veff = 0.2;  ///< |VGS| - |VTH| [V].
    double length = 1e-6;
  };
  GroupChoice inputPair{0.16, 1.0e-6};
  GroupChoice tail{0.25, 2.0e-6};
  GroupChoice sink{0.30, 1.5e-6};
  GroupChoice nCascode{0.22, 0.8e-6};
  GroupChoice pSource{0.30, 1.5e-6};
  GroupChoice pCascode{0.25, 0.8e-6};

  [[nodiscard]] GroupChoice& of(circuit::OtaGroup g);
  [[nodiscard]] const GroupChoice& of(circuit::OtaGroup g) const;
};

/// How much layout knowledge the sizing run uses: the four cases of Table 1.
struct SizingPolicy {
  /// Consider source/drain junction capacitance at all (off in case 1).
  bool diffusionCaps = true;
  /// Junction geometry source: false = pessimistic single-fold estimate
  /// (case 2); true = exact folded geometry fed back by the layout tool
  /// (cases 3 and 4, via junctionTemplates).
  bool exactDiffusion = false;
  /// Routing / coupling / well capacitance report from the layout tool
  /// (case 4); null otherwise.
  const layout::ParasiticReport* routingParasitics = nullptr;
  /// Per-group junction geometry templates from the last layout call; the
  /// sizer rescales areas/perimeters linearly with width (exact at fixed
  /// fold count).  Empty until the layout tool has been called.
  std::map<circuit::OtaGroup, device::MosGeometry> junctionTemplates;
  /// Same, for the two-stage topology's groups.
  std::map<circuit::TwoStageGroup, device::MosGeometry> twoStageTemplates;

  [[nodiscard]] static SizingPolicy case1() {
    SizingPolicy p;
    p.diffusionCaps = false;
    return p;
  }
  [[nodiscard]] static SizingPolicy case2() { return SizingPolicy{}; }
};

/// Every row of Table 1.
struct OtaPerformance {
  double dcGainDb = 0.0;
  double gbwHz = 0.0;
  double phaseMarginDeg = 0.0;
  double slewRateVPerUs = 0.0;
  double cmrrDb = 0.0;
  double offsetMv = 0.0;
  double outputResistanceMOhm = 0.0;
  double inputNoiseUv = 0.0;             ///< Integrated 1 Hz - 100 MHz.
  double thermalNoiseDensityNv = 0.0;    ///< Input-referred at 1 MHz [nV/rtHz].
  double flickerNoiseUv = 0.0;           ///< Input-referred at 100 Hz [uV/rtHz].
  double powerMw = 0.0;
  double psrrDb = 0.0;           ///< Positive-supply rejection at DC.
  double settlingTimeNs = 0.0;   ///< 1% settling after the slew step.
};

/// Frequency at which the flicker figure of OtaPerformance is quoted.
inline constexpr double kFlickerSpotHz = 100.0;
/// Frequency at which the thermal density is quoted.
inline constexpr double kThermalSpotHz = 1e6;
/// Band over which the total input noise is integrated.
inline constexpr double kNoiseBandLowHz = 1.0;
inline constexpr double kNoiseBandHighHz = 100e6;

}  // namespace lo::sizing
