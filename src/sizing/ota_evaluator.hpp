// Analytic performance evaluation of a folded-cascode OTA design.
//
// This is COMDIAC's "performance is then evaluated using predefined
// equations" step (paper, section 4): every small-signal parameter comes
// from the same device model the simulator uses, and the equations are the
// standard folded-cascode expressions.  The amount of parasitic capacitance
// included follows the SizingPolicy (Table 1 cases 1-4).
#pragma once

#include "circuit/ota.hpp"
#include "device/mos_model.hpp"
#include "sizing/ota_spec.hpp"
#include "tech/technology.hpp"

namespace lo::sizing {

/// Estimated DC picture: one op point per matched group plus node voltages.
struct OtaOpSnapshot {
  device::MosOpPoint pair, tail, sink, nCasc, pSrc, pCasc;
  double vtail = 0.0;  ///< Common source of the input pair.
  double vx = 0.0;     ///< Folding nodes x1/x2.
  double vy = 0.0;     ///< Mirror node y1.
  double vz = 0.0;     ///< Sources of the PMOS cascodes.
  double vout = 0.0;   ///< Assumed output level (input common mode).
};

/// Node capacitance budget under a policy (used for poles and GBW).
struct OtaCapBudget {
  double out = 0.0;  ///< Total at the output node including the load.
  double x = 0.0;    ///< At each folding node.
  double y = 0.0;    ///< At the mirror node.
  double z = 0.0;    ///< At each PMOS cascode source.
};

class OtaEvaluator {
 public:
  OtaEvaluator(const tech::Technology& t, const device::MosModel& model)
      : tech_(t), model_(model) {}

  /// Solve the approximate DC picture by model inversion (fixed-point on
  /// the cascode source nodes).
  [[nodiscard]] OtaOpSnapshot snapshot(const circuit::FoldedCascodeOtaDesign& design,
                                       double inputCm) const;

  /// Capacitance budget under the policy, from the snapshot's device caps
  /// (junction caps already reflect the geometry in the design, which the
  /// sizer prepared per the policy) plus routing/coupling if provided.
  [[nodiscard]] OtaCapBudget capBudget(const circuit::FoldedCascodeOtaDesign& design,
                                       const OtaOpSnapshot& snap,
                                       const SizingPolicy& policy) const;

  /// Full Table-1 row predicted analytically.
  [[nodiscard]] OtaPerformance evaluate(const circuit::FoldedCascodeOtaDesign& design,
                                        const OtaSpecs& specs,
                                        const SizingPolicy& policy) const;

 private:
  const tech::Technology& tech_;
  const device::MosModel& model_;
};

}  // namespace lo::sizing
