#include "sizing/ota_evaluator.hpp"

#include <cmath>

#include "device/inversion.hpp"
#include "tech/units.hpp"

namespace lo::sizing {

namespace {

using circuit::FoldedCascodeOtaDesign;

double atanDeg(double x) { return std::atan(x) * 180.0 / M_PI; }

}  // namespace

OperatingChoices::GroupChoice& OperatingChoices::of(circuit::OtaGroup g) {
  using circuit::OtaGroup;
  switch (g) {
    case OtaGroup::kInputPair: return inputPair;
    case OtaGroup::kTail: return tail;
    case OtaGroup::kSink: return sink;
    case OtaGroup::kNCascode: return nCascode;
    case OtaGroup::kPSource: return pSource;
    case OtaGroup::kPCascode: return pCascode;
  }
  return inputPair;
}

const OperatingChoices::GroupChoice& OperatingChoices::of(circuit::OtaGroup g) const {
  return const_cast<OperatingChoices*>(this)->of(g);
}

OtaOpSnapshot OtaEvaluator::snapshot(const FoldedCascodeOtaDesign& d, double inputCm) const {
  const double temp = tech_.temperature;
  const tech::MosModelCard& nmos = tech_.nmos;
  const tech::MosModelCard& pmos = tech_.pmos;
  const double iPair = d.tailCurrent / 2.0;
  const double iCasc = d.cascodeCurrent;

  OtaOpSnapshot s;
  s.vout = inputCm;

  // Input pair: bulk tied to source, so no body effect on VGS.
  const double vgs1 =
      device::vgsForCurrent(model_, pmos, d.inputPair, iPair, 1.0, 0.0, d.vdd, temp);
  s.vtail = inputCm + vgs1;

  // Folding node: fixed point through the NMOS cascode bias.
  double vx = 0.3;
  for (int i = 0; i < 6; ++i) {
    const double vgsNc = device::vgsForCurrent(model_, nmos, d.nCascode, iCasc,
                                               std::max(s.vout - vx, 0.2), -vx, d.vdd, temp);
    vx = d.vc1 - vgsNc;
    vx = std::max(vx, 0.05);
  }
  s.vx = vx;

  // Mirror node (gates of MP3/MP4 at their own drain loop).
  const double vgsPs =
      device::vgsForCurrent(model_, pmos, d.pSource, iCasc, 1.0, 0.0, d.vdd, temp);
  s.vy = d.vdd - vgsPs;

  // PMOS cascode sources.
  double vz = d.vdd - 0.3;
  for (int i = 0; i < 6; ++i) {
    const double vgsPc =
        device::vgsForCurrent(model_, pmos, d.pCascode, iCasc,
                              std::max(vz - s.vout, 0.2), -(d.vdd - vz), d.vdd, temp);
    vz = d.vc3 + vgsPc;
    vz = std::min(vz, d.vdd - 0.05);
  }
  s.vz = vz;

  // Operating points at the solved node voltages.
  s.pair = model_.evaluate(pmos, d.inputPair, inputCm - s.vtail, s.vx - s.vtail, 0.0, temp);
  s.tail = model_.evaluate(pmos, d.tail, d.vp1 - d.vdd, s.vtail - d.vdd, 0.0, temp);
  s.sink = model_.evaluate(nmos, d.sink, d.vbn, s.vx, 0.0, temp);
  s.nCasc = model_.evaluate(nmos, d.nCascode, d.vc1 - s.vx, s.vout - s.vx, -s.vx, temp);
  s.pSrc = model_.evaluate(pmos, d.pSource, s.vy - d.vdd, s.vz - d.vdd, 0.0, temp);
  s.pCasc =
      model_.evaluate(pmos, d.pCascode, d.vc3 - s.vz, s.vout - s.vz, d.vdd - s.vz, temp);
  return s;
}

OtaCapBudget OtaEvaluator::capBudget(const FoldedCascodeOtaDesign& d,
                                     const OtaOpSnapshot& s,
                                     const SizingPolicy& policy) const {
  auto routing = [&](const char* net) {
    return policy.routingParasitics ? policy.routingParasitics->capOn(net) : 0.0;
  };
  OtaCapBudget c;
  c.out = d.cload + s.nCasc.cdb + s.nCasc.cgd + s.pCasc.cdb + s.pCasc.cgd + routing("out");
  c.x = s.pair.cdb + s.pair.cgd + s.sink.cdb + s.sink.cgd + s.nCasc.csb + s.nCasc.cgs +
        routing("x1");
  c.y = s.nCasc.cdb + s.nCasc.cgd + s.pCasc.cdb + s.pCasc.cgd + 2.0 * s.pSrc.cgs +
        2.0 * s.pSrc.cgd + routing("y1");
  c.z = s.pSrc.cdb + s.pSrc.cgd + s.pCasc.csb + s.pCasc.cgs + routing("z1");
  return c;
}

OtaPerformance OtaEvaluator::evaluate(const FoldedCascodeOtaDesign& d, const OtaSpecs& specs,
                                      const SizingPolicy& policy) const {
  const OtaOpSnapshot s = snapshot(d, specs.inputCmMid());
  const OtaCapBudget c = capBudget(d, s, policy);

  OtaPerformance p;
  const double gm1 = s.pair.gm;

  // Unity-gain frequency and phase margin: output pole dominant, folding
  // node and PMOS-cascode-source poles, mirror pole-zero doublet.  The
  // non-dominant poles also depress the magnitude near the crossing, so the
  // true unity frequency is found by a short fixed-point iteration.
  const double fu0 = gm1 / (2.0 * M_PI * c.out);
  const double fp2 = (s.nCasc.gm + s.nCasc.gmb) / (2.0 * M_PI * c.x);
  const double fp3 = s.pSrc.gm / (2.0 * M_PI * c.y);
  const double fp4 = (s.pCasc.gm + s.pCasc.gmb) / (2.0 * M_PI * c.z);
  double fu = fu0;
  for (int i = 0; i < 6; ++i) {
    const double k2 = (1.0 + std::pow(fu / fp2, 2.0)) * (1.0 + std::pow(fu / fp4, 2.0)) *
                      (1.0 + std::pow(fu / fp3, 2.0)) /
                      (1.0 + std::pow(fu / (2.0 * fp3), 2.0));
    fu = fu0 / std::sqrt(k2);  // k2 is the squared magnitude excess.
  }
  double pm = 90.0 - atanDeg(fu / fp2) - atanDeg(fu / fp4);
  pm -= atanDeg(fu / fp3) - atanDeg(fu / (2.0 * fp3));  // Mirror doublet.
  p.gbwHz = fu;
  p.phaseMarginDeg = pm;

  // DC gain through the cascoded output resistance.
  const double roNc = 1.0 / s.nCasc.gds;
  const double roX = 1.0 / (s.sink.gds + s.pair.gds);
  const double rDown = roNc + roX + (s.nCasc.gm + s.nCasc.gmb) * roNc * roX;
  const double roPc = 1.0 / s.pCasc.gds;
  const double roPs = 1.0 / s.pSrc.gds;
  const double rUp = roPc + roPs + (s.pCasc.gm + s.pCasc.gmb) * roPc * roPs;
  const double rout = rUp * rDown / (rUp + rDown);
  const double adm = gm1 * rout;
  p.dcGainDb = 20.0 * std::log10(adm);
  p.outputResistanceMOhm = rout / 1e6;

  // Slew rate: the tail current (or what the folded branch can absorb).
  p.slewRateVPerUs = std::min(d.tailCurrent, 2.0 * d.cascodeCurrent) / c.out / 1e6;

  // CMRR: tail impedance conversion attenuated by the mirror accuracy.
  const double rTail = 1.0 / s.tail.gds;
  const double mirrorError = s.pSrc.gds / s.pSrc.gm;
  p.cmrrDb = 20.0 * std::log10(2.0 * gm1 * rTail / mirrorError);

  // Systematic offset: the input shift that moves the output from the
  // mirror-node equilibrium to the assumed output level.
  p.offsetMv = (s.vy - s.vout) / adm * 1e3;

  // Noise: pair, sinks and mirror sources dominate; input-referred.
  const double thermal =
      2.0 * (s.pair.thermalNoisePsd + s.sink.thermalNoisePsd + s.pSrc.thermalNoisePsd) /
      (gm1 * gm1);
  const double flicker =
      2.0 * (s.pair.flickerCoeff + s.sink.flickerCoeff + s.pSrc.flickerCoeff) / (gm1 * gm1);
  p.thermalNoiseDensityNv = std::sqrt(thermal + flicker / kThermalSpotHz) * 1e9;
  p.flickerNoiseUv = std::sqrt(thermal + flicker / kFlickerSpotHz) * 1e6;
  // Integrated input-referred noise over the amplifier band (1 Hz .. fu).
  const double fHigh = std::min(fu, kNoiseBandHighHz);
  const double meanSquare =
      thermal * fHigh + flicker * std::log(fHigh / kNoiseBandLowHz);
  p.inputNoiseUv = std::sqrt(meanSquare) * 1e6;

  // PSRR at DC: two supply paths compete.  Through the cascoded upper
  // branch the ripple is attenuated by Rout/rUp; through the tail source
  // (whose gate bias is ground-referenced) the ripple modulates the tail
  // current like a common-mode input, cancelled by the mirror up to its
  // accuracy.  The worse (smaller) rejection dominates.
  const double psrrCascode = gm1 * rUp;
  const double psrrTail = 2.0 * gm1 * s.pair.gm / (s.tail.gm * mirrorError * gm1);
  p.psrrDb = 20.0 * std::log10(std::min(psrrCascode, psrrTail));

  // Settling: one slewing interval plus a few closed-loop time constants.
  const double stepV = 0.4;
  const double tSlew = stepV / (p.slewRateVPerUs * 1e6);
  const double tLin = 4.6 / (2.0 * M_PI * fu);  // ln(100) time constants.
  p.settlingTimeNs = (tSlew + tLin) * 1e9;

  p.powerMw = d.supplyCurrent() * d.vdd * 1e3;
  return p;
}

}  // namespace lo::sizing
