#include "sizing/montecarlo.hpp"

#include <cmath>
#include <random>

#include "sim/measure.hpp"
#include "sim/simulator.hpp"
#include "sizing/verify.hpp"

namespace lo::sizing {

MonteCarloResult runMonteCarlo(const tech::Technology& t, const device::MosModel& model,
                               const circuit::FoldedCascodeOtaDesign& design,
                               const layout::ParasiticReport* parasitics,
                               MonteCarloOptions options) {
  OtaVerifier verifier(t, model);
  const circuit::Circuit base = verifier.buildAcTestbench(design, parasitics, 1.0, 0.0, 0.0);

  std::mt19937 rng(options.seed);
  std::normal_distribution<double> gauss(0.0, 1.0);

  MonteCarloResult result;
  result.samples = options.samples;
  // One working circuit and one Simulator for the whole trial sequence: the
  // simulator reads the circuit afresh on every solve, so rewriting the
  // per-trial mismatch fields in place avoids a netlist copy per sample,
  // and neighbouring trials are close enough that each operating point
  // warm-starts from the previous one (cold-ladder fallback on the rare
  // divergent draw).
  circuit::Circuit work = base;
  sim::Simulator sim(work, t, model);
  sim::Simulator::WarmStart warm;
  const auto inp = *work.findNode("inp");
  const auto out = *work.findNode("out");
  for (int sample = 0; sample < options.samples; ++sample) {
    for (circuit::Mos& m : work.mosfets) {
      const double area = m.geo.w * m.geo.l;
      const double sigmaVt = options.avt / std::sqrt(std::max(area, 1e-15));
      const double sigmaBeta = options.abeta / std::sqrt(std::max(area, 1e-15));
      m.vtoDelta = sigmaVt * gauss(rng);
      m.kpScale = 1.0 + sigmaBeta * gauss(rng);
    }
    try {
      const sim::DcSolution op = sim.dcOperatingPoint(warm);
      result.offsetsMv.push_back((op.voltage(inp) - op.voltage(out)) * 1e3);
      const auto ac = sim.ac(op, 10.0, 100.0, 3);
      result.gainsDb.push_back(sim::toDb(sim::dcGain(sim::curveAt(ac, out))));
    } catch (const sim::SimulationError&) {
      ++result.failures;
    }
  }

  auto stats = [](const std::vector<double>& v, double& mean, double& sigma) {
    if (v.empty()) return;
    double sum = 0.0;
    for (double x : v) sum += x;
    mean = sum / v.size();
    double ss = 0.0;
    for (double x : v) ss += (x - mean) * (x - mean);
    sigma = v.size() > 1 ? std::sqrt(ss / (v.size() - 1)) : 0.0;
  };
  stats(result.offsetsMv, result.offsetMeanMv, result.offsetSigmaMv);
  stats(result.gainsDb, result.gainMeanDb, result.gainSigmaDb);
  return result;
}

}  // namespace lo::sizing
