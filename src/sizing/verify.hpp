// Verification-by-simulation interface (paper, section 4: "A verification
// interface has also been developed which controls a verification-by-
// simulation process").
//
// Builds the measurement testbenches around an amplifier (optionally
// annotated with extracted parasitics), runs the lospice simulator, and
// fills the same OtaPerformance record the analytic evaluator produces --
// the two sides of every Table 1 column.
//
// Testbench: the amplifier sits in DC unity feedback through a 1 GOhm / 1 F
// network that is transparent at DC and open at any measured frequency, so
// one operating point serves the open-loop AC, CMRR, output-resistance and
// noise measurements.  Slew rate uses a hard unity-feedback connection and
// a +/-0.4 V input step.
//
// The measurement core is topology independent: any amplifier that exposes
// "inp" / "inn" / "out" nodes and a supply source named "VDD" can be
// measured through measureAmplifier(); OtaVerifier and verifyTwoStage are
// the two packaged instances.
#pragma once

#include <functional>

#include "circuit/ota.hpp"
#include "circuit/two_stage.hpp"
#include "device/mos_model.hpp"
#include "layout/extract.hpp"
#include "sim/simulator.hpp"
#include "sizing/ota_spec.hpp"
#include "tech/technology.hpp"

namespace lo::sizing {

struct VerifyOptions {
  double fStart = 10.0;
  double fStop = 1e9;
  int pointsPerDecade = 12;
  double tranStep = 0.5e-9;
  double tranStop = 500e-9;
  double stepAmplitude = 0.4;  ///< Input step for the slew-rate test [V].
  /// Run the simulator's pre-optimization reference solve path instead of
  /// the fast one.  Both are bit-identical (the golden solver tests prove
  /// it), so this changes speed, never results -- which is why it is
  /// deliberately excluded from serialization and cache keys.
  bool referenceSolver = false;
};

/// Adds the amplifier under test to the circuit.  Must create nodes named
/// "inp", "inn", "out" and a supply V source named "VDD".
using AmpInstantiateFn = std::function<void(circuit::Circuit&)>;

/// Measure every Table 1 row by simulation for an arbitrary amplifier.
[[nodiscard]] OtaPerformance measureAmplifier(const tech::Technology& t,
                                              const device::MosModel& model,
                                              const AmpInstantiateFn& instantiate,
                                              double inputCm, double vdd,
                                              const layout::ParasiticReport* parasitics,
                                              const VerifyOptions& options = {});

/// The generic AC testbench (exposed for tests and Monte Carlo).
[[nodiscard]] circuit::Circuit buildAmpAcTestbench(const AmpInstantiateFn& instantiate,
                                                   double inputCm,
                                                   const layout::ParasiticReport* parasitics,
                                                   double diffAcMag, double cmAcMag,
                                                   double routProbeAcMag);

class OtaVerifier {
 public:
  OtaVerifier(const tech::Technology& t, const device::MosModel& model,
              VerifyOptions options = {})
      : tech_(t), model_(model), options_(options) {}

  /// Measure the folded-cascode OTA.  When `parasitics` is given, its lumped
  /// capacitances are added to the netlists (extracted-netlist simulation);
  /// the design's device geometries should already carry the extracted
  /// junction figures in that case.
  [[nodiscard]] OtaPerformance verify(const circuit::FoldedCascodeOtaDesign& design,
                                      const layout::ParasiticReport* parasitics) const;

  /// The AC testbench (differential excitation) for external inspection.
  [[nodiscard]] circuit::Circuit buildAcTestbench(
      const circuit::FoldedCascodeOtaDesign& design,
      const layout::ParasiticReport* parasitics, double diffAcMag, double cmAcMag,
      double routProbeAcMag) const;

 private:
  const tech::Technology& tech_;
  const device::MosModel& model_;
  VerifyOptions options_;
};

/// Usable voltage window measured by sweeping the unity-gain buffer.
struct RangeMeasurement {
  double low = 0.0;
  double high = 0.0;
  [[nodiscard]] double span() const { return high - low; }
};

/// Sweep the buffer's input across the rails and report the window where
/// the output tracks within `trackingTolerance`.  This is the intersection
/// of the input common-mode range and the output swing (the two range specs
/// of the paper's Table 1 caption); outside it some device leaves
/// saturation.
[[nodiscard]] RangeMeasurement measureUsableRange(const tech::Technology& t,
                                                  const device::MosModel& model,
                                                  const AmpInstantiateFn& instantiate,
                                                  double vdd,
                                                  double trackingTolerance = 0.02);

/// Measure the two-stage Miller OTA with the same testbenches.
[[nodiscard]] OtaPerformance verifyTwoStage(const tech::Technology& t,
                                            const device::MosModel& model,
                                            const circuit::TwoStageOtaDesign& design,
                                            const layout::ParasiticReport* parasitics,
                                            const VerifyOptions& options = {});

/// Replace the design's device geometries with the exact per-device
/// junction figures the layout tool extracted (fold-quantised widths
/// included -- the source of the paper's residual offset).
[[nodiscard]] circuit::FoldedCascodeOtaDesign applyExtractedGeometry(
    circuit::FoldedCascodeOtaDesign design,
    const std::map<circuit::OtaGroup, device::MosGeometry>& junctions);

/// Two-stage variant: the drawn passives (plate capacitor, poly serpentine)
/// replace the ideal CC / RZ values alongside the junction figures.
[[nodiscard]] circuit::TwoStageOtaDesign applyExtractedGeometry(
    circuit::TwoStageOtaDesign design,
    const std::map<circuit::TwoStageGroup, device::MosGeometry>& junctions,
    double drawnCc, double drawnRz);

}  // namespace lo::sizing
