#include "sizing/verify.hpp"

#include <cmath>

#include "sim/measure.hpp"

namespace lo::sizing {

namespace {

using circuit::Circuit;
using circuit::FoldedCascodeOtaDesign;
using circuit::NodeId;
using circuit::Waveform;

Circuit buildSlewTestbench(const AmpInstantiateFn& instantiate, double inputCm,
                           const layout::ParasiticReport* parasitics,
                           const VerifyOptions& options) {
  Circuit c;
  c.title = "amplifier slew testbench";
  instantiate(c);
  const NodeId out = *c.findNode("out");
  const NodeId inn = *c.findNode("inn");
  const NodeId inp = *c.findNode("inp");
  c.addVSource("VSHORT", out, inn, Waveform::makeDc(0.0));
  const double a = options.stepAmplitude;
  c.addVSource("VIN", inp, circuit::kGround,
               Waveform::makePulse(inputCm - a / 2, inputCm + a / 2, 20e-9, 1e-9, 1e-9,
                                   options.tranStop / 2, options.tranStop * 2));
  if (parasitics) layout::annotateCircuit(c, *parasitics);
  return c;
}

}  // namespace

FoldedCascodeOtaDesign applyExtractedGeometry(
    FoldedCascodeOtaDesign design,
    const std::map<circuit::OtaGroup, device::MosGeometry>& junctions) {
  for (const auto& [group, geo] : junctions) design.geometry(group) = geo;
  return design;
}

circuit::TwoStageOtaDesign applyExtractedGeometry(
    circuit::TwoStageOtaDesign design,
    const std::map<circuit::TwoStageGroup, device::MosGeometry>& junctions,
    double drawnCc, double drawnRz) {
  for (const auto& [group, geo] : junctions) design.geometry(group) = geo;
  design.cc = drawnCc;
  design.rz = drawnRz;
  return design;
}

Circuit buildAmpAcTestbench(const AmpInstantiateFn& instantiate, double inputCm,
                            const layout::ParasiticReport* parasitics, double diffAcMag,
                            double cmAcMag, double routProbeAcMag) {
  Circuit c;
  c.title = "amplifier ac testbench";
  instantiate(c);
  const NodeId out = *c.findNode("out");
  const NodeId inn = *c.findNode("inn");
  const NodeId inp = *c.findNode("inp");
  const NodeId cmref = c.node("cmref");
  c.addVSource("VCM", cmref, circuit::kGround, Waveform::makeDc(inputCm), cmAcMag);
  c.addVSource("VDIFF", inp, cmref, Waveform::makeDc(0.0), diffAcMag);
  // DC unity feedback, transparent only below ~1e-10 Hz.
  c.addResistor("RFB", out, inn, 1e9);
  c.addCapacitor("CFB", inn, cmref, 1.0);
  if (routProbeAcMag != 0.0) {
    c.addISource("IPROBE", circuit::kGround, out, Waveform::makeDc(0.0), routProbeAcMag);
  }
  if (parasitics) layout::annotateCircuit(c, *parasitics);
  return c;
}

RangeMeasurement measureUsableRange(const tech::Technology& t,
                                    const device::MosModel& model,
                                    const AmpInstantiateFn& instantiate, double vdd,
                                    double trackingTolerance) {
  // Hard unity feedback; sweep the input from rail to rail.
  Circuit c;
  c.title = "range testbench";
  instantiate(c);
  const NodeId out = *c.findNode("out");
  const NodeId inn = *c.findNode("inn");
  const NodeId inp = *c.findNode("inp");
  c.addVSource("VSHORT", out, inn, Waveform::makeDc(0.0));
  c.addVSource("VIN", inp, circuit::kGround, Waveform::makeDc(vdd / 2));

  sim::SimOptions simOpt;
  simOpt.tempK = t.temperature;
  sim::Simulator sim(c, t, model, simOpt);
  const auto sweep = sim.dcSweep("VIN", 0.05, vdd - 0.05, 66);

  RangeMeasurement r;
  bool inRange = false;
  for (const auto& pt : sweep) {
    const bool tracks =
        std::abs(pt.solution.voltage(out) - pt.value) < trackingTolerance;
    if (tracks && !inRange) {
      r.low = pt.value;
      inRange = true;
    }
    if (tracks) r.high = pt.value;
  }
  return r;
}

OtaPerformance measureAmplifier(const tech::Technology& t, const device::MosModel& model,
                                const AmpInstantiateFn& instantiate, double inputCm,
                                double vdd, const layout::ParasiticReport* parasitics,
                                const VerifyOptions& options) {
  OtaPerformance p;
  const double fLow = options.fStart;

  sim::SimOptions simOpt;
  simOpt.tempK = t.temperature;
  simOpt.solver =
      options.referenceSolver ? sim::SolverMode::kReference : sim::SolverMode::kFast;

  // --- One AC testbench, one operating point, every small-signal figure.
  // The excitations (differential, common-mode, supply, output probe) are
  // moved onto branches at solve time (acFrom / acBatch) instead of baked
  // into four acMag-variant copies of the same netlist, so the whole
  // small-signal suite shares a single DC solve -- and, in the fast solver
  // mode, the low-band excitation block shares each frequency point's
  // factorization. ---
  {
    const Circuit c = buildAmpAcTestbench(instantiate, inputCm, parasitics, 0.0, 0.0, 0.0);
    sim::Simulator sim(c, t, model, simOpt);
    const sim::DcSolution op = sim.dcOperatingPoint();
    const NodeId out = *c.findNode("out");
    const NodeId inp = *c.findNode("inp");

    // Offset: unity feedback forces out = inp - Voffset.
    p.offsetMv = (op.voltage(inp) - op.voltage(out)) * 1e3;

    // Power from the supply branch current.
    for (std::size_t i = 0; i < c.vsources.size(); ++i) {
      if (c.vsources[i].name == "VDD") {
        p.powerMw = std::abs(op.vsourceCurrents[i]) * vdd * 1e3;
      }
    }

    const auto ac = sim.acFrom(op, "VDIFF", fLow, options.fStop, options.pointsPerDecade);
    const sim::AcCurve adm = sim::curveAt(ac, out);
    const double a0 = sim::dcGain(adm);
    p.dcGainDb = sim::toDb(a0);
    p.gbwHz = sim::unityGainFrequency(adm);
    p.phaseMarginDeg = sim::phaseMarginDeg(adm);

    const auto noise = sim.noise(op, out, "VDIFF", kNoiseBandLowHz, kNoiseBandHighHz, 10);
    // Input-referred PSD integrated over the amplifier band (1 Hz .. fu),
    // the same convention the analytic evaluator uses.
    const double inMs = sim::integratePsd(noise, kNoiseBandLowHz,
                                          std::min(p.gbwHz, kNoiseBandHighHz),
                                          /*inputReferred=*/true);
    p.inputNoiseUv = std::sqrt(inMs) * 1e6;
    auto spot = [&](double f) {
      for (std::size_t i = 0; i + 1 < noise.size(); ++i) {
        if (noise[i].freq <= f && f <= noise[i + 1].freq) {
          const double x =
              std::log(f / noise[i].freq) / std::log(noise[i + 1].freq / noise[i].freq);
          return noise[i].inputRefPsd +
                 x * (noise[i + 1].inputRefPsd - noise[i].inputRefPsd);
        }
      }
      return noise.back().inputRefPsd;
    };
    p.thermalNoiseDensityNv = std::sqrt(spot(kThermalSpotHz)) * 1e9;
    p.flickerNoiseUv = std::sqrt(spot(kFlickerSpotHz)) * 1e6;

    // --- CMRR / PSRR / output resistance: one excitation block over the
    // shared low-frequency grid.  Common-mode gain drives the VCM branch,
    // supply rejection the VDD branch, output resistance a unit AC current
    // into "out" -- each curve bit-identical to the standalone
    // ac()/acFrom() measurement it replaces. ---
    const auto lowBand =
        sim.acBatch(op,
                    {sim::AcExcitation::unitVsource("VCM"),
                     sim::AcExcitation::unitVsource("VDD"),
                     sim::AcExcitation::unitCurrent(circuit::kGround, out)},
                    fLow, 10.0 * fLow, 4);
    const double admDc = std::pow(10.0, p.dcGainDb / 20.0);
    const double acm = sim::dcGain(sim::curveAt(lowBand[0], out));
    p.cmrrDb = sim::toDb(admDc / std::max(acm, 1e-12));
    const double avdd = sim::dcGain(sim::curveAt(lowBand[1], out));
    p.psrrDb = sim::toDb(admDc / std::max(avdd, 1e-12));
    p.outputResistanceMOhm = std::abs(lowBand[2].front().at(out)) / 1e6;
  }

  // --- Slew rate: hard unity feedback, +/- step. ---
  {
    const Circuit c = buildSlewTestbench(instantiate, inputCm, parasitics, options);
    sim::Simulator sim(c, t, model, simOpt);
    const auto tran = sim.transient(options.tranStop, options.tranStep);
    const NodeId out = *c.findNode("out");
    const sim::SlewRates sr = sim::slewRates(tran, out, 10e-9);
    p.slewRateVPerUs = std::min(sr.rising, sr.falling) / 1e6;

    // 1% settling after the rising edge (20 ns) toward the pre-fall level.
    const double tEdge = 20e-9;
    const double tFall = 20e-9 + options.tranStop / 2;
    double finalV = 0.0;
    for (const sim::TranPoint& pt : tran) {
      if (pt.time < tFall - 2e-9) finalV = pt.nodeV[out];
    }
    const double band = 0.01 * options.stepAmplitude;
    double settled = options.tranStop;
    for (std::size_t i = tran.size(); i-- > 0;) {
      if (tran[i].time < tEdge || tran[i].time > tFall - 2e-9) continue;
      if (std::abs(tran[i].nodeV[out] - finalV) > band) {
        settled = tran[i].time;
        break;
      }
    }
    p.settlingTimeNs = (settled - tEdge) * 1e9;
  }

  return p;
}

Circuit OtaVerifier::buildAcTestbench(const FoldedCascodeOtaDesign& design,
                                      const layout::ParasiticReport* parasitics,
                                      double diffAcMag, double cmAcMag,
                                      double routProbeAcMag) const {
  return buildAmpAcTestbench(
      [&](Circuit& c) { circuit::instantiateOta(c, design); }, design.inputCm, parasitics,
      diffAcMag, cmAcMag, routProbeAcMag);
}

OtaPerformance OtaVerifier::verify(const FoldedCascodeOtaDesign& design,
                                   const layout::ParasiticReport* parasitics) const {
  return measureAmplifier(
      tech_, model_, [&](Circuit& c) { circuit::instantiateOta(c, design); },
      design.inputCm, design.vdd, parasitics, options_);
}

OtaPerformance verifyTwoStage(const tech::Technology& t, const device::MosModel& model,
                              const circuit::TwoStageOtaDesign& design,
                              const layout::ParasiticReport* parasitics,
                              const VerifyOptions& options) {
  return measureAmplifier(
      t, model, [&](Circuit& c) { circuit::instantiateTwoStage(c, design); },
      design.inputCm, design.vdd, parasitics, options);
}

}  // namespace lo::sizing
