#include "sizing/two_stage.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "device/folding.hpp"
#include "device/inversion.hpp"
#include "tech/units.hpp"

namespace lo::sizing {

namespace {

using circuit::TwoStageGroup;
using circuit::TwoStageOtaDesign;

/// Junction knowledge per the policy: nothing (case 1), pessimistic single
/// fold (case 2 and the first pass of 3/4), or the layout-reported figures
/// rescaled with width (cases 3/4 after the first layout call).
void applyJunctionPolicy(const tech::Technology& t, const SizingPolicy& policy,
                         TwoStageGroup group, device::MosGeometry& geo) {
  if (!policy.diffusionCaps) {
    geo.ad = geo.as = geo.pd = geo.ps = 0.0;
    return;
  }
  const auto it = policy.twoStageTemplates.find(group);
  if (policy.exactDiffusion && it != policy.twoStageTemplates.end() && it->second.w > 0) {
    const device::MosGeometry& tpl = it->second;
    const double k = geo.w / tpl.w;
    geo.nf = tpl.nf;
    geo.ad = tpl.ad * k;
    geo.as = tpl.as * k;
    geo.pd = tpl.pd * k;
    geo.ps = tpl.ps * k;
    return;
  }
  device::applyUnfoldedGeometry(t.rules, geo);
}

}  // namespace

TwoStageSnapshot TwoStageSizer::snapshot(const TwoStageOtaDesign& d, double inputCm) const {
  const double temp = tech_.temperature;
  const tech::MosModelCard& nmos = tech_.nmos;
  const tech::MosModelCard& pmos = tech_.pmos;
  TwoStageSnapshot s;
  s.vout = inputCm;

  const double iPair = d.tailCurrent / 2.0;
  // Tail-node fixed point: the pair's VGS depends on its own source voltage
  // through the body effect.
  double vtail = 0.2;
  for (int i = 0; i < 6; ++i) {
    const double vgs1 = device::vgsForCurrent(model_, nmos, d.inputPair, iPair, 1.0,
                                              -vtail, d.vdd, temp);
    vtail = std::max(inputCm - vgs1, 0.05);
  }
  s.vtail = vtail;
  const double vgs3 =
      device::vgsForCurrent(model_, pmos, d.mirror, iPair, 0.5, 0.0, d.vdd, temp);
  s.vd1 = d.vdd - vgs3;

  s.pair = model_.evaluate(nmos, d.inputPair, inputCm - s.vtail, s.vd1 - s.vtail,
                           -s.vtail, temp);
  s.mirror = model_.evaluate(pmos, d.mirror, s.vd1 - d.vdd, s.vd1 - d.vdd, 0.0, temp);
  s.tail = model_.evaluate(nmos, d.tail, d.vbn, s.vtail, 0.0, temp);
  s.driver = model_.evaluate(pmos, d.driver, s.vd1 - d.vdd, s.vout - d.vdd, 0.0, temp);
  s.sink2 = model_.evaluate(nmos, d.sink2, d.vbn, s.vout, 0.0, temp);
  return s;
}

OtaPerformance TwoStageSizer::evaluate(const TwoStageOtaDesign& d, const OtaSpecs& specs,
                                       const SizingPolicy& policy) const {
  const TwoStageSnapshot s = snapshot(d, specs.inputCmMid());
  auto routing = [&](const char* net) {
    return policy.routingParasitics ? policy.routingParasitics->capOn(net) : 0.0;
  };

  OtaPerformance p;
  const double gm1 = s.pair.gm;
  const double gm6 = s.driver.gm;

  // Load at the output and at the first-stage output.
  const double cOut = d.cload + s.driver.cdb + s.driver.cgd + s.sink2.cdb + s.sink2.cgd +
                      routing("out");
  const double cO1 = s.pair.cdb + s.pair.cgd + s.mirror.cdb + s.mirror.cgd +
                     s.driver.cgs + routing("o1");

  // Exact small-signal solution of the compensated two-stage network
  // (nodes: o1, Rz/Cc midpoint, out).  Still a predefined-equation model --
  // just solved instead of approximated by separated poles, because the
  // nulling network couples them too strongly for textbook formulas.
  const double g1 = s.pair.gds + s.mirror.gds;
  const double g2 = s.driver.gds + s.sink2.gds;
  const double gz = 1.0 / d.rz;
  const double cgd6 = s.driver.cgd;
  // Mirror pole-zero doublet: half the input current arrives through the
  // diode node d1, delayed by w3 = gm3 / C(d1).
  const double cD1 = s.mirror.cgs * 2.0 + s.mirror.cdb + s.pair.cdb + s.pair.cgd +
                     routing("d1");
  const double w3 = s.mirror.gm / std::max(cD1, 1e-18);
  auto transfer = [&](double f) {
    using C = std::complex<double>;
    const C jw{0.0, 2.0 * M_PI * f};
    // Unknowns: v(o1), v(mid), v(out).  Input: first stage pushes -gm1*vin
    // into o1 (vin = 1), filtered by the mirror doublet.
    const C inj = C(-gm1) * (C(1.0) + jw / (2.0 * w3)) / (C(1.0) + jw / w3);
    C a[3][3] = {{C(g1 + gz) + jw * (cO1 + cgd6), C(-gz), -jw * cgd6},
                 {C(-gz), C(gz) + jw * d.cc, -jw * d.cc},
                 {C(gm6) - jw * cgd6, -jw * d.cc, C(g2) + jw * (cOut + d.cc + cgd6)}};
    C b[3] = {inj, C(0), C(0)};
    // Gaussian elimination, 3x3.
    for (int col = 0; col < 3; ++col) {
      int piv = col;
      for (int r = col + 1; r < 3; ++r) {
        if (std::abs(a[r][col]) > std::abs(a[piv][col])) piv = r;
      }
      std::swap(a[col], a[piv]);
      std::swap(b[col], b[piv]);
      for (int r = col + 1; r < 3; ++r) {
        const C f2 = a[r][col] / a[col][col];
        for (int k = col; k < 3; ++k) a[r][k] -= f2 * a[col][k];
        b[r] -= f2 * b[col];
      }
    }
    for (int r = 2; r >= 0; --r) {
      for (int k = r + 1; k < 3; ++k) b[r] -= a[r][k] * b[k];
      b[r] /= a[r][r];
    }
    return b[2];  // v(out).
  };

  // Find the unity crossing on a log grid, then the phase margin there.
  const double fu0 = gm1 / (2.0 * M_PI * d.cc);
  double fu = 0.0;
  double fLo = fu0 / 30.0, fHi = fu0 * 30.0;
  double prevF = fLo, prevMag = std::abs(transfer(fLo));
  for (int i = 1; i <= 160; ++i) {
    const double f = fLo * std::pow(fHi / fLo, i / 160.0);
    const double mag = std::abs(transfer(f));
    if (prevMag >= 1.0 && mag < 1.0) {
      const double t = std::log(prevMag) / std::log(prevMag / mag);
      fu = prevF * std::pow(f / prevF, t);
      break;
    }
    prevF = f;
    prevMag = mag;
  }
  if (fu <= 0.0) fu = fu0;
  const std::complex<double> h0 = transfer(1.0);
  const std::complex<double> hu = transfer(fu);
  double phaseShift = std::arg(hu) - std::arg(h0);
  while (phaseShift > 0) phaseShift -= 2.0 * M_PI;
  p.gbwHz = fu;
  p.phaseMarginDeg = 180.0 + phaseShift * 180.0 / M_PI;

  const double ro1 = 1.0 / (s.pair.gds + s.mirror.gds);
  const double ro2 = 1.0 / (s.driver.gds + s.sink2.gds);
  const double adm = gm1 * ro1 * gm6 * ro2;
  p.dcGainDb = 20.0 * std::log10(adm);
  p.outputResistanceMOhm = ro2 / 1e6;

  p.slewRateVPerUs =
      std::min(d.tailCurrent / d.cc, d.stage2Current / (cOut + d.cc)) / 1e6;

  const double rTail = 1.0 / s.tail.gds;
  p.cmrrDb = 20.0 * std::log10(2.0 * s.mirror.gm * rTail * gm1 * ro1);

  p.offsetMv = 0.0;  // Balanced by construction (driver biased off the mirror VGS).

  const double thermal =
      2.0 * (s.pair.thermalNoisePsd + s.mirror.thermalNoisePsd) / (gm1 * gm1);
  const double flicker =
      2.0 * (s.pair.flickerCoeff + s.mirror.flickerCoeff) / (gm1 * gm1);
  p.thermalNoiseDensityNv = std::sqrt(thermal + flicker / kThermalSpotHz) * 1e9;
  p.flickerNoiseUv = std::sqrt(thermal + flicker / kFlickerSpotHz) * 1e6;
  const double fHigh = std::min(fu, kNoiseBandHighHz);
  p.inputNoiseUv =
      std::sqrt(thermal * fHigh + flicker * std::log(fHigh / kNoiseBandLowHz)) * 1e6;

  // PSRR at DC: the second stage's source sits on VDD, so supply ripple
  // appears at the output attenuated only by gds6/(gds6+gds7); rejection is
  // the differential gain against that path.
  p.psrrDb = 20.0 * std::log10(adm / std::max(s.driver.gds * ro2, 1e-9));

  const double stepV = 0.4;
  const double tSlew = stepV / (p.slewRateVPerUs * 1e6);
  const double tLin = 4.6 / (2.0 * M_PI * fu);
  p.settlingTimeNs = (tSlew + tLin) * 1e9;

  p.powerMw = d.supplyCurrent() * d.vdd * 1e3;
  return p;
}

void TwoStageSizer::buildDesign(const OtaSpecs& specs, const SizingPolicy& policy,
                                const TwoStageChoices& choices, double gm1,
                                double stage2Ratio, TwoStageOtaDesign& d) const {
  const double temp = tech_.temperature;
  const tech::MosModelCard& nmos = tech_.nmos;
  const tech::MosModelCard& pmos = tech_.pmos;

  d.vdd = specs.vdd;
  d.cload = specs.cload;
  d.inputCm = specs.inputCmMid();
  d.cc = choices.ccOverCl * specs.cload;

  // Input pair from gm1 at the chosen gate drive.
  {
    const double vth = model_.threshold(nmos, 0.0);
    device::MosGeometry ref;
    ref.w = 10e-6;
    ref.l = choices.inputPair.length;
    const device::MosOpPoint op = model_.evaluateNormalized(
        nmos, ref, vth + choices.inputPair.veff, choices.inputPair.veff + 0.3, 0.0, temp);
    d.inputPair.w = ref.w * gm1 / op.gm;
    d.inputPair.l = choices.inputPair.length;
    d.tailCurrent = 2.0 * std::abs(op.id) * d.inputPair.w / ref.w;
  }
  d.stage2Current = stage2Ratio * d.tailCurrent;

  auto sizeGroup = [&](const tech::MosModelCard& card,
                       const OperatingChoices::GroupChoice& gc, double current,
                       device::MosGeometry& geo) {
    geo.l = gc.length;
    const double vth = model_.threshold(card, 0.0);
    geo.w = device::widthForCurrent(model_, card, geo, current, vth + gc.veff,
                                    gc.veff + 0.3, 0.0, temp);
  };
  sizeGroup(pmos, choices.mirror, d.tailCurrent / 2.0, d.mirror);
  sizeGroup(nmos, choices.tail, d.tailCurrent, d.tail);
  // The second-stage sink shares the tail's gate line (vbn): size it for
  // the stage-2 current at that exact gate voltage so the mirror ratio is
  // embodied in the widths.
  {
    const double vgsTail = model_.threshold(nmos, 0.0) + choices.tail.veff;
    d.sink2.l = choices.sink2.length;
    d.sink2.w = device::widthForCurrent(model_, nmos, d.sink2, d.stage2Current, vgsTail,
                                        choices.tail.veff + 0.3, 0.0, temp);
  }
  // Driver gate rides the mirror node: its VGS is the mirror's VGS, so its
  // width follows from the stage-2 current at that drive (this also nulls
  // the systematic offset).
  {
    const double vgs3 = device::vgsForCurrent(model_, pmos, d.mirror, d.tailCurrent / 2.0,
                                              0.5, 0.0, specs.vdd, temp);
    d.driver.l = choices.driver.length;
    d.driver.w = device::widthForCurrent(model_, pmos, d.driver, d.stage2Current, vgs3,
                                         vgs3 + 0.3, 0.0, temp);
  }

  for (TwoStageGroup g : circuit::kAllTwoStageGroups) {
    applyJunctionPolicy(tech_, policy, g, d.geometry(g));
  }

  d.vbn = device::vgsForCurrent(model_, nmos, d.tail, d.tailCurrent, 0.3, 0.0, specs.vdd,
                                temp);
  // Nulling resistor slightly past 1/gm6 pushes the zero into the left half
  // plane where it helps the phase.
  const TwoStageSnapshot s = snapshot(d, specs.inputCmMid());
  d.rz = 1.25 / std::max(s.driver.gm, 1e-6);
}

TwoStageSizingResult TwoStageSizer::size(const OtaSpecs& specs, const SizingPolicy& policy,
                                         TwoStageChoices choices) const {
  TwoStageSizingResult result;
  double stage2Ratio = 2.5;
  double gmScale = 1.0;

  TwoStageOtaDesign d;
  for (int outer = 0; outer < 20; ++outer) {
    ++result.gbwIterations;
    const double gm1 = 2.0 * M_PI * specs.gbw * (choices.ccOverCl * specs.cload) * gmScale;
    buildDesign(specs, policy, choices, gm1, stage2Ratio, d);

    for (int inner = 0; inner < 25; ++inner) {
      const OtaPerformance perf = evaluate(d, specs, policy);
      if (perf.phaseMarginDeg < specs.phaseMarginDeg) {
        ++result.pmIterations;
        stage2Ratio = std::min(12.0, stage2Ratio * 1.15);
      } else if (perf.phaseMarginDeg > specs.phaseMarginDeg + 4.0 && stage2Ratio > 1.2) {
        ++result.pmIterations;
        stage2Ratio = std::max(1.2, stage2Ratio * 0.92);
      } else {
        break;
      }
      buildDesign(specs, policy, choices, gm1, stage2Ratio, d);
    }

    const OtaPerformance perf = evaluate(d, specs, policy);
    const double gbwError = perf.gbwHz / specs.gbw - 1.0;
    if (std::abs(gbwError) < 5e-3) {
      result.converged = true;
      break;
    }
    gmScale *= specs.gbw / perf.gbwHz;
  }

  result.design = d;
  result.predicted = evaluate(d, specs, policy);
  return result;
}

}  // namespace lo::sizing
