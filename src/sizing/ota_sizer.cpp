#include "sizing/ota_sizer.hpp"

#include <algorithm>
#include <cmath>

#include "device/folding.hpp"
#include "device/inversion.hpp"
#include "tech/units.hpp"

namespace lo::sizing {

namespace {

using circuit::FoldedCascodeOtaDesign;
using circuit::OtaGroup;

/// Width and drain current of a device that realises `targetGm` at a fixed
/// gate drive (gm is proportional to W at fixed veff, so one scaling step).
struct GmAtVeff {
  double w = 0.0;
  double id = 0.0;
  double vgs = 0.0;  ///< Normalised gate-source voltage.
};

GmAtVeff sizeForGmAtVeff(const device::MosModel& model, const tech::MosModelCard& card,
                         double targetGm, double veff, double length, double tempK) {
  const double vth = model.threshold(card, 0.0);
  const double vgs = vth + veff;
  const double vds = veff + 0.3;  // Comfortably saturated.
  device::MosGeometry ref;
  ref.w = 10e-6;
  ref.l = length;
  const device::MosOpPoint op = model.evaluateNormalized(card, ref, vgs, vds, 0.0, tempK);
  GmAtVeff out;
  out.w = ref.w * targetGm / op.gm;
  out.id = std::abs(op.id) * out.w / ref.w;
  out.vgs = vgs;
  return out;
}

}  // namespace

void OtaSizer::applyJunctionPolicy(const SizingPolicy& policy, OtaGroup group,
                                   device::MosGeometry& geo) const {
  if (!policy.diffusionCaps) {
    // Case 1: the sizing run pretends junctions are free.
    geo.ad = geo.as = geo.pd = geo.ps = 0.0;
    return;
  }
  const auto it = policy.junctionTemplates.find(group);
  if (policy.exactDiffusion && it != policy.junctionTemplates.end() && it->second.w > 0) {
    // Cases 3/4: scale the layout-reported junction figures with width
    // (exact for areas at a fixed fold count; perimeters are nearly
    // proportional because strip extents dominate).
    const device::MosGeometry& tpl = it->second;
    const double k = geo.w / tpl.w;
    geo.nf = tpl.nf;
    geo.ad = tpl.ad * k;
    geo.as = tpl.as * k;
    geo.pd = tpl.pd * k;
    geo.ps = tpl.ps * k;
    return;
  }
  // Case 2 (and the very first pass of cases 3/4, before any layout call):
  // pessimistic single-fold junctions.
  device::applyUnfoldedGeometry(tech_.rules, geo);
}

void OtaSizer::buildDesign(const OtaSpecs& specs, const SizingPolicy& policy,
                           const OperatingChoices& choices, double gm1,
                           double cascodeRatio, FoldedCascodeOtaDesign& d) const {
  const double temp = tech_.temperature;
  const tech::MosModelCard& nmos = tech_.nmos;
  const tech::MosModelCard& pmos = tech_.pmos;

  d.vdd = specs.vdd;
  d.cload = specs.cload;
  d.inputCm = specs.inputCmMid();

  // Input pair from the gm target.
  const auto pairChoice = choices.of(OtaGroup::kInputPair);
  const GmAtVeff pair = sizeForGmAtVeff(model_, pmos, gm1, pairChoice.veff,
                                        pairChoice.length, temp);
  d.inputPair.w = pair.w;
  d.inputPair.l = pairChoice.length;
  d.tailCurrent = 2.0 * pair.id;
  d.cascodeCurrent = cascodeRatio * d.tailCurrent;

  // Remaining groups by current at their fixed gate drive.
  auto sizeGroup = [&](OtaGroup g, const tech::MosModelCard& card, double current,
                       device::MosGeometry& geo) {
    const auto gc = choices.of(g);
    geo.l = gc.length;
    const double vth = model_.threshold(card, 0.0);
    geo.w = device::widthForCurrent(model_, card, geo, current, vth + gc.veff,
                                    gc.veff + 0.3, 0.0, temp);
  };
  sizeGroup(OtaGroup::kTail, pmos, d.tailCurrent, d.tail);
  sizeGroup(OtaGroup::kSink, nmos, d.sinkCurrent(), d.sink);
  sizeGroup(OtaGroup::kNCascode, nmos, d.cascodeCurrent, d.nCascode);
  sizeGroup(OtaGroup::kPSource, pmos, d.cascodeCurrent, d.pSource);
  sizeGroup(OtaGroup::kPCascode, pmos, d.cascodeCurrent, d.pCascode);

  // Junction knowledge per the policy.
  for (OtaGroup g : circuit::kAllOtaGroups) applyJunctionPolicy(policy, g, d.geometry(g));

  // Bias voltages from model inversion on the final geometries.
  const double vgsTail =
      device::vgsForCurrent(model_, pmos, d.tail, d.tailCurrent, 0.5, 0.0, specs.vdd, temp);
  d.vp1 = specs.vdd - vgsTail;
  d.vbn = device::vgsForCurrent(model_, nmos, d.sink, d.sinkCurrent(), 0.5, 0.0,
                                specs.vdd, temp);
  // Folding node held one saturation margin above the sink.
  const double vxTarget = choices.of(OtaGroup::kSink).veff + 0.1;
  d.vc1 = vxTarget + device::vgsForCurrent(model_, nmos, d.nCascode, d.cascodeCurrent, 0.5,
                                           -vxTarget, specs.vdd, temp);
  const double vzTarget = specs.vdd - (choices.of(OtaGroup::kPSource).veff + 0.1);
  d.vc3 = vzTarget - device::vgsForCurrent(model_, pmos, d.pCascode, d.cascodeCurrent, 0.5,
                                           -(specs.vdd - vzTarget), specs.vdd, temp);
}

circuit::OtaBiasDesign designOtaBias(const tech::Technology& t,
                                     const device::MosModel& model,
                                     const FoldedCascodeOtaDesign& d) {
  const double temp = t.temperature;
  circuit::OtaBiasDesign b;
  b.biasCurrent = std::clamp(d.cascodeCurrent / 8.0, 2e-6, 20e-6);

  // Mirror legs: scaled copies of the devices they bias.
  b.nDiode = d.sink;
  b.nDiode.w = std::max(d.sink.w * b.biasCurrent / d.sinkCurrent(), 1e-6);
  device::applyUnfoldedGeometry(t.rules, b.nDiode);
  b.pDiode = d.tail;
  b.pDiode.w = std::max(d.tail.w * b.biasCurrent / d.tailCurrent, 1e-6);
  device::applyUnfoldedGeometry(t.rules, b.pDiode);

  // Cascode-bias diodes: one device whose VGS at the reference current is
  // the designed level (large gate drive, so the width comes out small).
  b.nCascDiode.l = d.nCascode.l;
  b.nCascDiode.w = 2e-6;
  b.nCascDiode.w = device::widthForCurrent(model, t.nmos, b.nCascDiode, b.biasCurrent,
                                           d.vc1, d.vc1, 0.0, temp);
  device::applyUnfoldedGeometry(t.rules, b.nCascDiode);
  b.pCascDiode.l = d.pCascode.l;
  b.pCascDiode.w = 2e-6;
  b.pCascDiode.w = device::widthForCurrent(model, t.pmos, b.pCascDiode, b.biasCurrent,
                                           d.vdd - d.vc3, d.vdd - d.vc3, 0.0, temp);
  device::applyUnfoldedGeometry(t.rules, b.pCascDiode);
  return b;
}

SizingResult OtaSizer::size(const OtaSpecs& specs, const SizingPolicy& policy,
                            OperatingChoices choices) const {
  SizingResult result;
  double cascodeRatio = 0.5;
  double cout = 1.3 * specs.cload;  // Bootstrap estimate for the first pass.
  // Corrects the difference between the gm target (sized at a nominal bias)
  // and the gm the device actually shows at the solved operating point.
  double gmScale = 1.0;

  FoldedCascodeOtaDesign d;
  for (int outer = 0; outer < 20; ++outer) {
    ++result.gbwIterations;
    const double gm1 = 2.0 * M_PI * specs.gbw * cout * gmScale;
    buildDesign(specs, policy, choices, gm1, cascodeRatio, d);

    // Phase-margin loop: more folded-branch current first, then larger gate
    // drives on the non-input devices (smaller, faster devices).  Excess
    // margin is trimmed back so the design lands just above the target and
    // no power is wasted.
    for (int inner = 0; inner < 30; ++inner) {
      const OtaPerformance perf = evaluator_.evaluate(d, specs, policy);
      if (perf.phaseMarginDeg < specs.phaseMarginDeg) {
        ++result.pmIterations;
        if (cascodeRatio < 1.0) {
          cascodeRatio = std::min(1.0, cascodeRatio * 1.12);
        } else {
          for (OtaGroup g : {OtaGroup::kSink, OtaGroup::kNCascode, OtaGroup::kPSource,
                             OtaGroup::kPCascode}) {
            choices.of(g).veff = std::min(0.6, choices.of(g).veff * 1.06);
          }
        }
      } else if (perf.phaseMarginDeg > specs.phaseMarginDeg + 3.0 && cascodeRatio > 0.40) {
        ++result.pmIterations;
        cascodeRatio = std::max(0.40, cascodeRatio * 0.93);
      } else {
        break;
      }
      buildDesign(specs, policy, choices, gm1, cascodeRatio, d);
    }

    // Re-estimate the GBW capacitance budget and the realised GBW;
    // converged when both are stable on target.
    const OtaPerformance perf = evaluator_.evaluate(d, specs, policy);
    const OtaOpSnapshot snap = evaluator_.snapshot(d, specs.inputCmMid());
    const double coutNew = evaluator_.capBudget(d, snap, policy).out;
    const double gbwError = perf.gbwHz / specs.gbw - 1.0;
    if (std::abs(coutNew - cout) < 2e-3 * cout && std::abs(gbwError) < 5e-3) {
      result.converged = true;
      cout = coutNew;
      break;
    }
    gmScale *= specs.gbw / perf.gbwHz;
    cout = coutNew;
  }

  result.design = d;
  result.predicted = evaluator_.evaluate(d, specs, policy);
  result.finalChoices = choices;
  return result;
}

}  // namespace lo::sizing
