// Monte-Carlo statistical verification (paper section 4: the verification
// interface "permits to undergo statistical analysis to check the
// reliability of the synthesized circuit").
//
// Each sample draws independent threshold-voltage and transconductance
// mismatch for every transistor (Pelgrom-style, sigma scaled by 1/sqrt(WL)),
// re-solves the DC operating point of the unity-feedback testbench for the
// input-referred offset, and measures the DC gain.  The matched-pair layout
// machinery in src/layout controls the systematic part of these numbers;
// this models the random part.
#pragma once

#include "circuit/ota.hpp"
#include "device/mos_model.hpp"
#include "layout/extract.hpp"
#include "sizing/ota_spec.hpp"
#include "tech/technology.hpp"

namespace lo::sizing {

struct MonteCarloOptions {
  int samples = 50;
  /// Pelgrom threshold mismatch coefficient A_vt [V*m]: sigma(Vto) of one
  /// device = avt / sqrt(W * L).
  double avt = 9e-9;  // 9 mV*um, typical for a 0.6 um process.
  /// Relative transconductance mismatch coefficient A_beta [m]:
  /// sigma(kp)/kp = abeta / sqrt(W * L).
  double abeta = 20e-9;  // 2 %*um.
  unsigned seed = 1;
};

struct MonteCarloResult {
  int samples = 0;
  int failures = 0;  ///< DC operating points that did not converge.
  double offsetMeanMv = 0.0;
  double offsetSigmaMv = 0.0;
  double gainMeanDb = 0.0;
  double gainSigmaDb = 0.0;
  std::vector<double> offsetsMv;
  std::vector<double> gainsDb;
};

/// Run the analysis on the OTA design (optionally parasitic-annotated).
[[nodiscard]] MonteCarloResult runMonteCarlo(const tech::Technology& t,
                                             const device::MosModel& model,
                                             const circuit::FoldedCascodeOtaDesign& design,
                                             const layout::ParasiticReport* parasitics,
                                             MonteCarloOptions options = {});

}  // namespace lo::sizing
