// Design plan and analytic evaluation for the two-stage Miller OTA.
//
// The second topology of the tool (paper section 4: hierarchy "simplifies
// the addition of new topologies").  Same recipe as the folded cascode:
// fixed gate drives, currents from the GBW target (through the compensation
// capacitor), phase margin met by raising the second-stage current, and the
// same SizingPolicy cases for what the plan knows about the layout.
#pragma once

#include "circuit/two_stage.hpp"
#include "device/mos_model.hpp"
#include "sizing/ota_spec.hpp"
#include "tech/technology.hpp"

namespace lo::sizing {

struct TwoStageChoices {
  OperatingChoices::GroupChoice inputPair{0.16, 1.0e-6};
  OperatingChoices::GroupChoice mirror{0.30, 1.5e-6};
  /// The tail's gate drive must stay below the tail-node voltage
  /// (inputCm - VGS(pair)) or it leaves saturation.
  OperatingChoices::GroupChoice tail{0.12, 2.0e-6};
  OperatingChoices::GroupChoice driver{0.30, 0.8e-6};
  OperatingChoices::GroupChoice sink2{0.12, 1.0e-6};  ///< Length only; the
                                                      ///< width mirrors the tail.
  /// Compensation capacitor as a fraction of the load.
  double ccOverCl = 0.30;
};

struct TwoStageSnapshot {
  device::MosOpPoint pair, mirror, tail, driver, sink2;
  double vtail = 0.0, vd1 = 0.0, vout = 0.0;
};

struct TwoStageSizingResult {
  circuit::TwoStageOtaDesign design;
  OtaPerformance predicted;
  int gbwIterations = 0;
  int pmIterations = 0;
  bool converged = false;
};

class TwoStageSizer {
 public:
  TwoStageSizer(const tech::Technology& t, const device::MosModel& model)
      : tech_(t), model_(model) {}

  [[nodiscard]] TwoStageSizingResult size(const OtaSpecs& specs, const SizingPolicy& policy,
                                          TwoStageChoices choices = {}) const;

  [[nodiscard]] TwoStageSnapshot snapshot(const circuit::TwoStageOtaDesign& d,
                                          double inputCm) const;

  [[nodiscard]] OtaPerformance evaluate(const circuit::TwoStageOtaDesign& d,
                                        const OtaSpecs& specs,
                                        const SizingPolicy& policy) const;

 private:
  void buildDesign(const OtaSpecs& specs, const SizingPolicy& policy,
                   const TwoStageChoices& choices, double gm1, double stage2Ratio,
                   circuit::TwoStageOtaDesign& d) const;

  const tech::Technology& tech_;
  const device::MosModel& model_;
};

}  // namespace lo::sizing
