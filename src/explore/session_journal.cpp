#include "explore/session_journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "service/cache.hpp"  // ResultCache::fnv1a

namespace lo::explore {

using service::FramedLog;
using service::FramedLogOptions;
using service::FrameReplay;
using service::Json;

namespace {

// Json numbers are doubles, which cannot carry a full 64-bit digest;
// the journal stores digests as fixed-width hex strings instead.
std::string digestToHex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::uint64_t digestFromHex(const std::string& hex) {
  return std::strtoull(hex.c_str(), nullptr, 16);
}

bool validSessionPayload(const std::string& payload) {
  try {
    (void)SessionRecord::fromJson(Json::parse(payload));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

FramedLogOptions framedOptionsFor(const SessionJournalOptions& options) {
  if (options.dir.empty()) {
    throw std::invalid_argument("SessionJournal needs a directory");
  }
  FramedLogOptions framed;
  framed.path = (std::filesystem::path(options.dir) / "explore.wal").string();
  framed.fsyncEachRecord = options.fsyncEachRecord;
  return framed;
}

SessionReplay digestFrames(FrameReplay frames) {
  SessionReplay replay;
  replay.tornTail = frames.tornTail;
  replay.truncatedBytes = frames.truncatedBytes;
  replay.records.reserve(frames.payloads.size());
  for (const std::string& payload : frames.payloads) {
    replay.records.push_back(SessionRecord::fromJson(Json::parse(payload)));
  }

  std::vector<std::uint64_t> terminalIds;
  for (const SessionRecord& rec : replay.records) {
    if (rec.id > replay.maxId) replay.maxId = rec.id;
    if (rec.type == SessionRecordType::kFinished) {
      terminalIds.push_back(rec.id);
      ++replay.finished;
    }
  }
  for (const SessionRecord& rec : replay.records) {
    if (rec.type != SessionRecordType::kStarted) continue;
    bool skip = false;
    for (const std::uint64_t id : terminalIds) {
      if (id == rec.id) {
        skip = true;
        break;
      }
    }
    // Duplicate started records for one id (a session handed off between
    // shards logs on both) restart once, not once per record.
    for (const SessionRecord& seen : replay.pending) {
      if (skip) break;
      if (seen.id == rec.id) skip = true;
    }
    if (!skip) replay.pending.push_back(rec);
  }
  return replay;
}

}  // namespace

SessionRecordType sessionRecordTypeFromName(const std::string& name) {
  for (const SessionRecordType t :
       {SessionRecordType::kStarted, SessionRecordType::kProgress,
        SessionRecordType::kFinished}) {
    if (name == sessionRecordTypeName(t)) return t;
  }
  throw std::invalid_argument("unknown session record type \"" + name + "\"");
}

Json SessionRecord::toJson() const {
  Json j = Json::object();
  j.set("type", sessionRecordTypeName(type));
  j.set("id", id);
  switch (type) {
    case SessionRecordType::kStarted:
      j.set("request", request);
      break;
    case SessionRecordType::kProgress:
      j.set("evaluated", evaluated);
      j.set("front_size", frontSize);
      j.set("front_digest", digestToHex(frontDigest));
      break;
    case SessionRecordType::kFinished:
      j.set("ok", ok);
      if (!ok) j.set("error", error);
      j.set("evaluated", evaluated);
      j.set("front_size", frontSize);
      j.set("front_digest", digestToHex(frontDigest));
      break;
  }
  return j;
}

SessionRecord SessionRecord::fromJson(const Json& j) {
  SessionRecord rec;
  rec.type = sessionRecordTypeFromName(j.at("type").asString());
  rec.id = j.at("id").asUint64();
  if (rec.id == 0) throw std::invalid_argument("session record needs an id");
  if (const Json* request = j.find("request")) rec.request = *request;
  if (rec.type == SessionRecordType::kStarted && rec.request.isNull()) {
    throw std::invalid_argument("started session record needs a request");
  }
  rec.evaluated = j.at("evaluated").asInt();
  rec.frontSize = j.at("front_size").asInt();
  rec.frontDigest = digestFromHex(j.at("front_digest").asString());
  if (const Json* ok = j.find("ok")) rec.ok = ok->asBool();
  rec.error = j.at("error").asString();
  return rec;
}

std::uint64_t frontDigestOf(const std::vector<std::string>& frontKeys) {
  std::string joined;
  for (const std::string& key : frontKeys) {
    joined += key;
    joined += '\n';
  }
  return service::ResultCache::fnv1a(joined);
}

SessionJournal::SessionJournal(SessionJournalOptions options)
    : log_(framedOptionsFor(options)) {}

SessionReplay SessionJournal::replay() {
  return digestFrames(log_.replay(validSessionPayload));
}

SessionReplay SessionJournal::replayFile(const std::string& path) {
  return digestFrames(FramedLog::replayFile(path, validSessionPayload));
}

void SessionJournal::append(const SessionRecord& record, bool durable) {
  log_.append(record.toJson().dump(), durable);
}

void SessionJournal::compact(const std::vector<SessionRecord>& live) {
  std::vector<std::string> payloads;
  payloads.reserve(live.size());
  for (const SessionRecord& rec : live) payloads.push_back(rec.toJson().dump());
  log_.rewrite(payloads);
}

}  // namespace lo::explore
