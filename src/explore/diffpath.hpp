// Differential-verification entry point into the exploration machinery.
//
// The testkit's differential oracle needs to push a single (topology,
// spec, corner) point through the *same* code the explorer runs -- space
// validation, canonical coordinate keys, evaluateBatch's dedup and the
// scheduler submission it performs -- and then compare the synthesis
// result against the engine-direct run.  evaluateSinglePoint wraps that:
// a budget-1 exploration over a one-axis space anchored at the point, so
// exactly one job (the point itself) is evaluated.  The EngineResult lands
// in the scheduler's cache under the point's content-addressed key, where
// the oracle retrieves it for byte comparison.
#pragma once

#include "explore/explore.hpp"

namespace lo::explore {

/// Run one point through the full explore pipeline over `scheduler`.
/// Returns its PointEval (ok/error/objectives); the synthesis result is in
/// scheduler.cache() under ResultCache::keyFor(options, specs, corner, ...).
[[nodiscard]] PointEval evaluateSinglePoint(service::JobScheduler& scheduler,
                                            const core::EngineOptions& options,
                                            const sizing::OtaSpecs& specs,
                                            tech::ProcessCorner corner);

}  // namespace lo::explore
