// ExploreManager: named, background explorations for the daemon.
//
// Each start() spawns one thread that drives an Explorer to completion
// over the shared JobScheduler (the per-point parallelism lives in the
// scheduler's worker pool, so one manager thread per exploration is
// cheap).  The daemon's `explore` op starts or waits on explorations and
// the `stats` op reports live snapshots of every one.
//
// With a journal directory, the manager write-ahead-logs every session
// through SessionJournal: the request durably before launch, progress
// breadcrumbs per batch, a durable terminal record at completion.  On
// construction it replays the log and restarts every pending session under
// its original id -- the explorer's (space, options) determinism plus the
// result cache make the restart a fast-forward to where the dead process
// stopped, with a byte-identical front.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "explore/explore.hpp"
#include "explore/session_journal.hpp"

namespace lo::explore {

class ExploreManager {
 public:
  /// The scheduler must outlive the manager.  A non-empty journalDir
  /// enables session durability: pending sessions found in the journal are
  /// restarted (under their original ids) before the constructor returns.
  explicit ExploreManager(service::JobScheduler& scheduler,
                          std::string journalDir = {});
  ~ExploreManager();  ///< Joins every exploration thread.

  ExploreManager(const ExploreManager&) = delete;
  ExploreManager& operator=(const ExploreManager&) = delete;

  /// Launch an exploration in the background; returns its id immediately.
  /// Space/option validation happens on the worker thread -- a degenerate
  /// space surfaces as a failed outcome, not a throw.  When journalling is
  /// on, the session's started record is durable before this returns.
  std::uint64_t start(ExploreSpace space, ExploreOptions options);

  struct Outcome {
    std::uint64_t id = 0;
    bool ok = false;
    std::string error;  ///< Exception text when !ok.
    ExploreResult result;
    ExploreSpace space;      ///< For exporters, which need the axes.
    ExploreOptions options;
  };

  /// Block until the exploration finishes; throws std::invalid_argument on
  /// an unknown id.
  [[nodiscard]] Outcome wait(std::uint64_t id) const;

  struct Snapshot {
    std::uint64_t id = 0;
    ExploreProgress progress;
    bool done = false;
    bool ok = false;
    std::string error;
  };

  /// Live view of every exploration ever started, ordered by id.
  [[nodiscard]] std::vector<Snapshot> snapshots() const;

  [[nodiscard]] std::size_t count() const;

  [[nodiscard]] bool journalEnabled() const { return journal_ != nullptr; }
  /// Valid only when journalEnabled().
  [[nodiscard]] const SessionJournal* journal() const { return journal_.get(); }
  /// Pending sessions restarted from the journal at construction.
  [[nodiscard]] std::uint64_t recoveredSessions() const { return recovered_; }

 private:
  struct Record {
    std::uint64_t id = 0;
    std::unique_ptr<Explorer> explorer;
    std::thread thread;
    bool done = false;
    bool ok = false;
    std::string error;
    ExploreResult result;
    service::Json startedRequest;  ///< For compaction (journalled sessions).
  };

  /// Shared start path; fixedId != 0 re-launches a recovered session under
  /// its original id, and `recovering` skips the started append (the
  /// original record is already durable in the log).
  std::uint64_t startSession(ExploreSpace space, ExploreOptions options,
                             std::uint64_t fixedId, bool recovering);
  void journalFinish(const std::shared_ptr<Record>& rec);
  void compactIfDue();

  service::JobScheduler& scheduler_;
  std::unique_ptr<SessionJournal> journal_;
  std::uint64_t recovered_ = 0;
  mutable std::mutex mutex_;
  mutable std::condition_variable doneCv_;
  std::map<std::uint64_t, std::shared_ptr<Record>> records_;
  std::uint64_t nextId_ = 1;
  std::uint64_t finishedSinceCompact_ = 0;
};

}  // namespace lo::explore
