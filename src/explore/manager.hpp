// ExploreManager: named, background explorations for the daemon.
//
// Each start() spawns one thread that drives an Explorer to completion
// over the shared JobScheduler (the per-point parallelism lives in the
// scheduler's worker pool, so one manager thread per exploration is
// cheap).  The daemon's `explore` op starts or waits on explorations and
// the `stats` op reports live snapshots of every one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "explore/explore.hpp"

namespace lo::explore {

class ExploreManager {
 public:
  /// The scheduler must outlive the manager.
  explicit ExploreManager(service::JobScheduler& scheduler);
  ~ExploreManager();  ///< Joins every exploration thread.

  ExploreManager(const ExploreManager&) = delete;
  ExploreManager& operator=(const ExploreManager&) = delete;

  /// Launch an exploration in the background; returns its id immediately.
  /// Space/option validation happens on the worker thread -- a degenerate
  /// space surfaces as a failed outcome, not a throw.
  std::uint64_t start(ExploreSpace space, ExploreOptions options);

  struct Outcome {
    std::uint64_t id = 0;
    bool ok = false;
    std::string error;  ///< Exception text when !ok.
    ExploreResult result;
    ExploreSpace space;      ///< For exporters, which need the axes.
    ExploreOptions options;
  };

  /// Block until the exploration finishes; throws std::invalid_argument on
  /// an unknown id.
  [[nodiscard]] Outcome wait(std::uint64_t id) const;

  struct Snapshot {
    std::uint64_t id = 0;
    ExploreProgress progress;
    bool done = false;
    bool ok = false;
    std::string error;
  };

  /// Live view of every exploration ever started, ordered by id.
  [[nodiscard]] std::vector<Snapshot> snapshots() const;

  [[nodiscard]] std::size_t count() const;

 private:
  struct Record {
    std::uint64_t id = 0;
    std::unique_ptr<Explorer> explorer;
    std::thread thread;
    bool done = false;
    bool ok = false;
    std::string error;
    ExploreResult result;
  };

  service::JobScheduler& scheduler_;
  mutable std::mutex mutex_;
  mutable std::condition_variable doneCv_;
  std::map<std::uint64_t, std::shared_ptr<Record>> records_;
  std::uint64_t nextId_ = 1;
};

}  // namespace lo::explore
