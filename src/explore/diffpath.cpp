#include "explore/diffpath.hpp"

#include <stdexcept>

namespace lo::explore {

PointEval evaluateSinglePoint(service::JobScheduler& scheduler,
                              const core::EngineOptions& options,
                              const sizing::OtaSpecs& specs,
                              tech::ProcessCorner corner) {
  ExploreSpace space;
  space.engineOptions = options;
  space.corner = corner;
  space.base = specs;
  // One axis whose lower bound is exactly the requested GBW: the budget-1
  // seed evaluates only the grid's first point, which is the point itself
  // (specsAt overrides "gbw" with the axis value, bit-identically).
  SpecAxis axis;
  axis.field = "gbw";
  axis.lo = specs.gbw;
  axis.hi = specs.gbw * 2.0;
  axis.points = 2;
  space.axes.push_back(axis);

  ExploreOptions exploreOptions;
  exploreOptions.budget = 1;
  exploreOptions.maxRounds = 1;

  Explorer explorer(scheduler, std::move(space), exploreOptions);
  const ExploreResult result = explorer.run();
  if (result.points.size() != 1) {
    throw std::logic_error("single-point exploration evaluated " +
                           std::to_string(result.points.size()) + " points");
  }
  return result.points.front();
}

}  // namespace lo::explore
