// Pareto archive for the design-space explorer.
//
// Every evaluated design point carries the three layout-aware objectives
// the paper's flow produces for free -- power (supply current x VDD),
// layout area (slicing-tree bounding box) and integrated input-referred
// noise -- plus a feasibility verdict (the measured performance meets the
// specs the point was synthesised for).  The archive keeps the set of
// feasible points no other feasible point weakly dominates; insertion is
// thread-safe so a daemon can snapshot the front mid-exploration.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "sizing/ota_spec.hpp"

namespace lo::explore {

/// Objectives the archive can minimise; the caller selects a subset.
enum class Objective { kPowerMw, kAreaUm2, kNoiseUv };

[[nodiscard]] constexpr const char* objectiveName(Objective o) {
  switch (o) {
    case Objective::kPowerMw: return "power_mw";
    case Objective::kAreaUm2: return "area_um2";
    case Objective::kNoiseUv: return "noise_uv";
  }
  return "?";
}

/// "power" / "power_mw" / "area" / ... -> Objective; throws on anything else.
[[nodiscard]] Objective objectiveFromName(const std::string& name);

/// The default objective set: the full power / area / noise trade-off.
[[nodiscard]] std::vector<Objective> allObjectives();

/// One evaluated design point: where it sits in the spec space, whether
/// the synthesis met its specs, and the objective values.
struct PointEval {
  std::string key;             ///< Canonical coordinate key (space.hpp).
  std::vector<double> coords;  ///< Axis values, aligned with the space's axes.
  bool ok = false;             ///< Synthesis job reached "done".
  bool converged = false;      ///< Parasitic loop reached a fixed point.
  bool feasible = false;       ///< ok && converged && performance meets specs.
  bool postLayoutPass = false; ///< Post-layout verification ran and passed.
  bool cacheHit = false;       ///< Served from the result cache.
  std::string error;           ///< Failure text when !ok.

  double powerMw = 0.0;
  double areaUm2 = 0.0;
  double noiseUv = 0.0;
  // Context for reports (not objectives).
  double gbwHz = 0.0;
  double phaseMarginDeg = 0.0;
  double slewRateVPerUs = 0.0;

  [[nodiscard]] double objective(Objective o) const {
    switch (o) {
      case Objective::kPowerMw: return powerMw;
      case Objective::kAreaUm2: return areaUm2;
      case Objective::kNoiseUv: return noiseUv;
    }
    return 0.0;
  }
};

class ParetoArchive {
 public:
  /// `requirePostLayout` additionally rejects points whose post-layout
  /// verification tier did not run or did not pass, so the front only ever
  /// contains designs the extracted netlist re-confirmed.
  explicit ParetoArchive(std::vector<Objective> objectives = allObjectives(),
                         bool requirePostLayout = false);

  /// a is no worse than b on every selected objective.
  [[nodiscard]] static bool weaklyDominates(const PointEval& a, const PointEval& b,
                                            const std::vector<Objective>& objectives);
  /// Weak dominance plus strictly better on at least one objective.
  [[nodiscard]] static bool dominates(const PointEval& a, const PointEval& b,
                                      const std::vector<Objective>& objectives);

  /// Offer a point.  Infeasible points and points weakly dominated by a
  /// current member are rejected; an accepted point evicts every member it
  /// dominates.  Returns true when the point entered the archive.
  bool insert(const PointEval& p);

  /// Current non-dominated feasible set, sorted by key (deterministic).
  [[nodiscard]] std::vector<PointEval> front() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::vector<Objective>& objectives() const {
    return objectives_;
  }

  /// True when some member of `front` weakly dominates `p` -- the bench's
  /// "refined front dominates the coarse front" acceptance check.
  [[nodiscard]] static bool frontWeaklyDominates(const std::vector<PointEval>& front,
                                                 const PointEval& p,
                                                 const std::vector<Objective>& objectives);

 private:
  std::vector<Objective> objectives_;
  bool requirePostLayout_ = false;
  mutable std::mutex mutex_;
  std::vector<PointEval> points_;  ///< Kept sorted by key.
};

}  // namespace lo::explore
