#include "explore/explore.hpp"

#include <set>
#include <stdexcept>
#include <utility>

namespace lo::explore {

Explorer::Explorer(service::JobScheduler& scheduler, ExploreSpace space,
                   ExploreOptions options, ProgressCallback onProgress)
    : scheduler_(scheduler),
      space_(std::move(space)),
      options_(std::move(options)),
      onProgress_(std::move(onProgress)),
      archive_(options_.objectives, options_.requirePostLayout) {}

ExploreProgress Explorer::progress() const {
  const std::lock_guard<std::mutex> lock(progressMutex_);
  return progress_;
}

void Explorer::notifyProgress() const {
  if (!onProgress_) return;
  std::vector<std::string> frontKeys;
  for (const PointEval& p : archive_.front()) frontKeys.push_back(p.key);
  onProgress_(progress(), frontKeys);
}

int Explorer::remainingBudget() const {
  const std::lock_guard<std::mutex> lock(progressMutex_);
  return options_.budget - progress_.evaluated;
}

PointEval Explorer::makeEval(const std::vector<double>& coords,
                             const service::JobStatus& status) const {
  PointEval eval;
  eval.key = coordKey(coords);
  eval.coords = coords;
  eval.ok = status.state == service::JobState::kDone;
  eval.cacheHit = status.cacheHit;
  eval.error = status.error;
  if (!eval.ok && eval.error.empty()) {
    eval.error = service::jobStateName(status.state);
  }
  if (eval.ok) {
    const sizing::OtaSpecs specs = specsAt(space_, coords);
    const auto& m = status.result.measured;
    eval.converged = status.result.convergence.converged();
    eval.powerMw = m.powerMw;
    eval.areaUm2 = status.result.layoutAreaUm2();
    eval.noiseUv = m.inputNoiseUv;
    eval.gbwHz = m.gbwHz;
    eval.phaseMarginDeg = m.phaseMarginDeg;
    eval.slewRateVPerUs = m.slewRateVPerUs;
    const double tol = options_.specTolerance;
    // A point whose parasitic loop never settled (the convergence watchdog
    // flagged oscillation or drift) reports numbers measured at an
    // arbitrary stop, not at a fixed point: it must not anchor the front.
    eval.feasible = eval.converged &&
                    m.gbwHz >= specs.gbw * (1.0 - tol) &&
                    m.phaseMarginDeg >= specs.phaseMarginDeg * (1.0 - tol);
    const verify::VerificationReport& report = status.result.verification;
    eval.postLayoutPass = report.ran && report.pass;
    if (options_.requirePostLayout) {
      eval.feasible = eval.feasible && eval.postLayoutPass;
    }
  }
  return eval;
}

bool Explorer::evaluateBatch(const std::vector<std::vector<double>>& coords) {
  // New distinct points, in first-appearance order.
  std::vector<std::vector<double>> fresh;
  std::set<std::string> batchKeys;
  for (const auto& c : coords) {
    const std::string key = coordKey(c);
    if (evals_.count(key) || !batchKeys.insert(key).second) continue;
    fresh.push_back(c);
  }
  const int room = remainingBudget();
  const bool cut = static_cast<int>(fresh.size()) > room;
  if (cut) fresh.resize(static_cast<std::size_t>(room));
  if (fresh.empty()) return !cut;

  std::vector<std::uint64_t> ids;
  ids.reserve(fresh.size());
  for (const auto& c : fresh) {
    service::JobRequest req;
    req.label = "explore:" + coordKey(c);
    req.options = space_.engineOptions;
    if (options_.requirePostLayout) req.options.postLayoutVerify.enabled = true;
    req.specs = specsAt(space_, c);
    req.corner = space_.corner;
    req.priority = options_.priority;
    req.deadlineSeconds = options_.deadlineSeconds;
    ids.push_back(scheduler_.submit(req));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const service::JobStatus status = scheduler_.wait(ids[i]);
    PointEval eval = makeEval(fresh[i], status);
    if (eval.feasible) archive_.insert(eval);
    const std::lock_guard<std::mutex> lock(progressMutex_);
    ++progress_.evaluated;
    if (eval.cacheHit) ++progress_.cacheHits;
    if (eval.feasible) ++progress_.feasibleCount;
    progress_.frontSize = static_cast<int>(archive_.size());
    evals_.emplace(eval.key, std::move(eval));
  }
  return !cut;
}

ExploreResult Explorer::run() {
  validateSpace(space_);
  if (options_.budget <= 0) {
    throw std::invalid_argument("explore budget must be positive");
  }

  {
    const std::lock_guard<std::mutex> lock(progressMutex_);
    progress_ = ExploreProgress{};
    progress_.phase = ExplorePhase::kSeed;
    progress_.budget = options_.budget;
  }

  ExploreResult result;
  bool exhausted = !evaluateBatch(seedGrid(space_));
  notifyProgress();

  result.seedFront = archive_.front();

  {
    const std::lock_guard<std::mutex> lock(progressMutex_);
    progress_.phase = ExplorePhase::kRefine;
  }

  std::vector<Cell> cells = seedCells(space_);
  for (int round = 1; round <= options_.maxRounds && !exhausted; ++round) {
    // A cell is interesting when every corner has been evaluated and
    // either the corners disagree on feasibility or one of them sits on
    // the current front.  Cells that are not interesting are retired:
    // nothing in them borders the boundary or the trade-off surface.
    std::set<std::string> frontKeys;
    for (const PointEval& p : archive_.front()) frontKeys.insert(p.key);

    std::vector<std::size_t> interesting;
    std::vector<std::vector<std::vector<double>>> cornerCache(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      cornerCache[i] = cellCorners(cells[i]);
      bool allEvaluated = true;
      bool anyFeasible = false, anyInfeasible = false, onFront = false;
      for (const auto& corner : cornerCache[i]) {
        const auto it = evals_.find(coordKey(corner));
        if (it == evals_.end()) {
          allEvaluated = false;
          break;
        }
        (it->second.feasible ? anyFeasible : anyInfeasible) = true;
        if (frontKeys.count(it->second.key)) onFront = true;
      }
      if (allEvaluated && ((anyFeasible && anyInfeasible) || onFront)) {
        interesting.push_back(i);
      }
    }
    if (interesting.empty()) break;

    // Collect whole-cell lattices while the budget affords them; a cell is
    // refined completely or not at all, so the trajectory is independent
    // of cache warmth and worker count.
    std::vector<std::vector<double>> batch;
    std::set<std::string> planned;
    std::vector<std::size_t> refined;
    int room = remainingBudget();
    bool truncated = false;
    for (const std::size_t i : interesting) {
      const auto lattice = cellLattice(cells[i]);
      std::vector<std::vector<double>> freshHere;
      for (const auto& c : lattice) {
        const std::string key = coordKey(c);
        if (evals_.count(key) || planned.count(key)) continue;
        freshHere.push_back(c);
      }
      if (static_cast<int>(freshHere.size()) > room) {
        truncated = true;
        break;
      }
      room -= static_cast<int>(freshHere.size());
      for (const auto& c : freshHere) {
        planned.insert(coordKey(c));
        batch.push_back(c);
      }
      refined.push_back(i);
    }
    if (refined.empty()) {
      exhausted = true;
      break;
    }

    {
      const std::lock_guard<std::mutex> lock(progressMutex_);
      progress_.round = round;
    }
    if (!evaluateBatch(batch)) exhausted = true;
    notifyProgress();
    result.rounds = round;
    if (truncated) exhausted = true;

    // Next generation: children of every refined cell, plus interesting
    // cells the budget skipped (in case a later round can afford them).
    std::vector<Cell> next;
    const std::set<std::size_t> refinedSet(refined.begin(), refined.end());
    for (const std::size_t i : refined) {
      for (Cell& child : splitCell(cells[i])) next.push_back(std::move(child));
    }
    for (const std::size_t i : interesting) {
      if (!refinedSet.count(i)) next.push_back(cells[i]);
    }
    cells = std::move(next);
  }

  result.budgetExhausted = exhausted;
  result.front = archive_.front();
  result.points.reserve(evals_.size());
  for (const auto& [key, eval] : evals_) result.points.push_back(eval);
  {
    const std::lock_guard<std::mutex> lock(progressMutex_);
    progress_.phase = ExplorePhase::kDone;
    result.evaluations = progress_.evaluated;
    result.cacheHits = progress_.cacheHits;
  }
  notifyProgress();
  return result;
}

}  // namespace lo::explore
