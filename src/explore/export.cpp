#include "explore/export.hpp"

namespace lo::explore {

namespace {

using service::Json;

void appendNumber(std::string& out, double v) {
  out += Json::formatNumber(v);
}

}  // namespace

std::string frontCsv(const ExploreResult& result, const ExploreSpace& space) {
  std::string out;
  for (const SpecAxis& axis : space.axes) {
    out += axis.field;
    out += ',';
  }
  out += "power_mw,area_um2,noise_uv,gbw_hz,phase_margin_deg,slew_rate_v_per_us\n";
  for (const PointEval& p : result.front) {
    for (const double c : p.coords) {
      appendNumber(out, c);
      out += ',';
    }
    appendNumber(out, p.powerMw);
    out += ',';
    appendNumber(out, p.areaUm2);
    out += ',';
    appendNumber(out, p.noiseUv);
    out += ',';
    appendNumber(out, p.gbwHz);
    out += ',';
    appendNumber(out, p.phaseMarginDeg);
    out += ',';
    appendNumber(out, p.slewRateVPerUs);
    out += '\n';
  }
  return out;
}

service::Json frontJson(const ExploreResult& result, const ExploreSpace& space,
                        const ExploreOptions& options) {
  Json j = Json::object();

  Json axes = Json::array();
  for (const SpecAxis& axis : space.axes) {
    Json a = Json::object();
    a.set("field", axis.field);
    a.set("lo", axis.lo);
    a.set("hi", axis.hi);
    a.set("points", static_cast<double>(axis.points));
    axes.push(std::move(a));
  }
  j.set("axes", std::move(axes));

  Json objectives = Json::array();
  for (const Objective o : options.objectives) {
    objectives.push(std::string(objectiveName(o)));
  }
  j.set("objectives", std::move(objectives));

  Json front = Json::array();
  for (const PointEval& p : result.front) {
    Json point = Json::object();
    Json coords = Json::array();
    for (std::size_t k = 0; k < p.coords.size(); ++k) {
      coords.push(p.coords[k]);
    }
    point.set("coords", std::move(coords));
    point.set("power_mw", p.powerMw);
    point.set("area_um2", p.areaUm2);
    point.set("noise_uv", p.noiseUv);
    point.set("gbw_hz", p.gbwHz);
    point.set("phase_margin_deg", p.phaseMarginDeg);
    point.set("slew_rate_v_per_us", p.slewRateVPerUs);
    point.set("converged", p.converged);
    point.set("cache_hit", p.cacheHit);
    front.push(std::move(point));
  }
  j.set("front", std::move(front));

  j.set("evaluations", static_cast<double>(result.evaluations));
  j.set("cache_hits", static_cast<double>(result.cacheHits));
  j.set("rounds", static_cast<double>(result.rounds));
  j.set("seed_front_size", static_cast<double>(result.seedFront.size()));
  j.set("budget_exhausted", result.budgetExhausted);
  return j;
}

}  // namespace lo::explore
