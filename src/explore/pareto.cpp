#include "explore/pareto.hpp"

#include <algorithm>
#include <stdexcept>

namespace lo::explore {

Objective objectiveFromName(const std::string& name) {
  for (const Objective o :
       {Objective::kPowerMw, Objective::kAreaUm2, Objective::kNoiseUv}) {
    if (name == objectiveName(o)) return o;
  }
  if (name == "power") return Objective::kPowerMw;
  if (name == "area") return Objective::kAreaUm2;
  if (name == "noise") return Objective::kNoiseUv;
  throw std::invalid_argument("unknown objective \"" + name +
                              "\" (power, area, noise)");
}

std::vector<Objective> allObjectives() {
  return {Objective::kPowerMw, Objective::kAreaUm2, Objective::kNoiseUv};
}

ParetoArchive::ParetoArchive(std::vector<Objective> objectives,
                             bool requirePostLayout)
    : objectives_(std::move(objectives)), requirePostLayout_(requirePostLayout) {
  if (objectives_.empty()) {
    throw std::invalid_argument("ParetoArchive needs at least one objective");
  }
}

bool ParetoArchive::weaklyDominates(const PointEval& a, const PointEval& b,
                                    const std::vector<Objective>& objectives) {
  for (const Objective o : objectives) {
    if (a.objective(o) > b.objective(o)) return false;
  }
  return true;
}

bool ParetoArchive::dominates(const PointEval& a, const PointEval& b,
                              const std::vector<Objective>& objectives) {
  bool strict = false;
  for (const Objective o : objectives) {
    if (a.objective(o) > b.objective(o)) return false;
    if (a.objective(o) < b.objective(o)) strict = true;
  }
  return strict;
}

bool ParetoArchive::insert(const PointEval& p) {
  if (!p.feasible) return false;
  if (requirePostLayout_ && !p.postLayoutPass) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const PointEval& q : points_) {
    if (weaklyDominates(q, p, objectives_)) return false;
  }
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const PointEval& q) {
                                 return weaklyDominates(p, q, objectives_);
                               }),
                points_.end());
  const auto pos = std::lower_bound(
      points_.begin(), points_.end(), p,
      [](const PointEval& a, const PointEval& b) { return a.key < b.key; });
  points_.insert(pos, p);
  return true;
}

std::vector<PointEval> ParetoArchive::front() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return points_;
}

std::size_t ParetoArchive::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return points_.size();
}

bool ParetoArchive::frontWeaklyDominates(const std::vector<PointEval>& front,
                                         const PointEval& p,
                                         const std::vector<Objective>& objectives) {
  for (const PointEval& q : front) {
    if (weaklyDominates(q, p, objectives)) return true;
  }
  return false;
}

}  // namespace lo::explore
