#include "explore/manager.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "explore/service_ops.hpp"

namespace lo::explore {

namespace {

/// Finished sessions tolerated in the log before it is rewritten down to
/// the still-running ones.
constexpr std::uint64_t kCompactEvery = 8;

}  // namespace

ExploreManager::ExploreManager(service::JobScheduler& scheduler,
                               std::string journalDir)
    : scheduler_(scheduler) {
  if (journalDir.empty()) return;
  SessionJournalOptions jopts;
  jopts.dir = std::move(journalDir);
  journal_ = std::make_unique<SessionJournal>(std::move(jopts));
  const SessionReplay replay = journal_->replay();
  nextId_ = replay.maxId + 1;
  for (const SessionRecord& pending : replay.pending) {
    try {
      ExploreSpace space = spaceFromJson(pending.request);
      ExploreOptions options = optionsFromJson(pending.request);
      startSession(std::move(space), std::move(options), pending.id,
                   /*recovering=*/true);
      ++recovered_;
    } catch (const std::exception&) {
      // A started record whose request no longer parses cannot be re-run;
      // leave it in the log (compaction will eventually drop it) rather
      // than refuse to boot.
    }
  }
}

ExploreManager::~ExploreManager() {
  // Snapshot the records, then join outside the lock: the worker threads
  // take the lock to publish their outcome.
  std::vector<std::shared_ptr<Record>> records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, rec] : records_) records.push_back(rec);
  }
  for (auto& rec : records) {
    if (rec->thread.joinable()) rec->thread.join();
  }
}

std::uint64_t ExploreManager::start(ExploreSpace space, ExploreOptions options) {
  return startSession(std::move(space), std::move(options), /*fixedId=*/0,
                      /*recovering=*/false);
}

std::uint64_t ExploreManager::startSession(ExploreSpace space,
                                           ExploreOptions options,
                                           std::uint64_t fixedId,
                                           bool recovering) {
  auto rec = std::make_shared<Record>();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    rec->id = fixedId != 0 ? fixedId : nextId_++;
    nextId_ = std::max(nextId_, rec->id + 1);
    records_[rec->id] = rec;
  }

  Explorer::ProgressCallback onProgress;
  if (journal_ != nullptr) {
    rec->startedRequest = exploreRequestJson(space, options);
    const std::uint64_t id = rec->id;
    onProgress = [this, id](const ExploreProgress& p,
                            const std::vector<std::string>& frontKeys) {
      SessionRecord crumb;
      crumb.type = SessionRecordType::kProgress;
      crumb.id = id;
      crumb.evaluated = p.evaluated;
      crumb.frontSize = static_cast<int>(frontKeys.size());
      crumb.frontDigest = frontDigestOf(frontKeys);
      try {
        // Breadcrumbs are non-durable observability, never worth failing
        // the exploration over.
        journal_->append(crumb, /*durable=*/false);
      } catch (const std::exception&) {
      }
    };
  }
  rec->explorer = std::make_unique<Explorer>(
      scheduler_, std::move(space), std::move(options), std::move(onProgress));

  if (journal_ != nullptr && !recovering) {
    // Durable before the thread launches: once start() returns an id to a
    // client, no crash may forget the session.
    SessionRecord started;
    started.type = SessionRecordType::kStarted;
    started.id = rec->id;
    started.request = rec->startedRequest;
    journal_->append(started, /*durable=*/true);
  }

  rec->thread = std::thread([this, rec] {
    ExploreResult result;
    std::string error;
    bool ok = true;
    try {
      result = rec->explorer->run();
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      rec->result = std::move(result);
      rec->error = std::move(error);
      rec->ok = ok;
      rec->done = true;
    }
    journalFinish(rec);
    doneCv_.notify_all();
  });
  return rec->id;
}

void ExploreManager::journalFinish(const std::shared_ptr<Record>& rec) {
  if (journal_ == nullptr) return;
  SessionRecord fin;
  fin.type = SessionRecordType::kFinished;
  fin.id = rec->id;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fin.ok = rec->ok;
    fin.error = rec->error;
    fin.evaluated = rec->result.evaluations;
    fin.frontSize = static_cast<int>(rec->result.front.size());
    std::vector<std::string> frontKeys;
    for (const PointEval& p : rec->result.front) frontKeys.push_back(p.key);
    fin.frontDigest = frontDigestOf(frontKeys);
  }
  try {
    journal_->append(fin, /*durable=*/true);
  } catch (const std::exception&) {
    // A full disk must not turn a finished exploration into a failure; at
    // worst the session re-runs (as cache hits) on the next boot.
  }
  compactIfDue();
}

void ExploreManager::compactIfDue() {
  std::vector<SessionRecord> live;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (++finishedSinceCompact_ < kCompactEvery) return;
    finishedSinceCompact_ = 0;
    for (const auto& [id, rec] : records_) {
      if (rec->done) continue;
      SessionRecord started;
      started.type = SessionRecordType::kStarted;
      started.id = id;
      started.request = rec->startedRequest;
      live.push_back(std::move(started));
    }
  }
  try {
    journal_->compact(live);
  } catch (const std::exception&) {
    // Compaction is an optimisation; the un-compacted log stays correct.
  }
}

ExploreManager::Outcome ExploreManager::wait(std::uint64_t id) const {
  std::shared_ptr<Record> rec;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = records_.find(id);
    if (it == records_.end()) {
      throw std::invalid_argument("unknown exploration id " + std::to_string(id));
    }
    rec = it->second;
    doneCv_.wait(lock, [&] { return rec->done; });
  }
  Outcome out;
  out.id = id;
  out.ok = rec->ok;
  out.error = rec->error;
  out.result = rec->result;
  out.space = rec->explorer->space();
  out.options = rec->explorer->options();
  return out;
}

std::vector<ExploreManager::Snapshot> ExploreManager::snapshots() const {
  std::vector<std::shared_ptr<Record>> records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, rec] : records_) records.push_back(rec);
  }
  std::vector<Snapshot> out;
  out.reserve(records.size());
  for (const auto& rec : records) {
    Snapshot s;
    s.id = rec->id;
    s.progress = rec->explorer->progress();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      s.done = rec->done;
      s.ok = rec->ok;
      s.error = rec->error;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t ExploreManager::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

}  // namespace lo::explore
