#include "explore/manager.hpp"

#include <stdexcept>
#include <utility>

namespace lo::explore {

ExploreManager::ExploreManager(service::JobScheduler& scheduler)
    : scheduler_(scheduler) {}

ExploreManager::~ExploreManager() {
  // Snapshot the records, then join outside the lock: the worker threads
  // take the lock to publish their outcome.
  std::vector<std::shared_ptr<Record>> records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, rec] : records_) records.push_back(rec);
  }
  for (auto& rec : records) {
    if (rec->thread.joinable()) rec->thread.join();
  }
}

std::uint64_t ExploreManager::start(ExploreSpace space, ExploreOptions options) {
  auto rec = std::make_shared<Record>();
  rec->explorer = std::make_unique<Explorer>(scheduler_, std::move(space),
                                             std::move(options));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    rec->id = nextId_++;
    records_[rec->id] = rec;
  }
  rec->thread = std::thread([this, rec] {
    ExploreResult result;
    std::string error;
    bool ok = true;
    try {
      result = rec->explorer->run();
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      rec->result = std::move(result);
      rec->error = std::move(error);
      rec->ok = ok;
      rec->done = true;
    }
    doneCv_.notify_all();
  });
  return rec->id;
}

ExploreManager::Outcome ExploreManager::wait(std::uint64_t id) const {
  std::shared_ptr<Record> rec;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = records_.find(id);
    if (it == records_.end()) {
      throw std::invalid_argument("unknown exploration id " + std::to_string(id));
    }
    rec = it->second;
    doneCv_.wait(lock, [&] { return rec->done; });
  }
  Outcome out;
  out.id = id;
  out.ok = rec->ok;
  out.error = rec->error;
  out.result = rec->result;
  out.space = rec->explorer->space();
  out.options = rec->explorer->options();
  return out;
}

std::vector<ExploreManager::Snapshot> ExploreManager::snapshots() const {
  std::vector<std::shared_ptr<Record>> records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, rec] : records_) records.push_back(rec);
  }
  std::vector<Snapshot> out;
  out.reserve(records.size());
  for (const auto& rec : records) {
    Snapshot s;
    s.id = rec->id;
    s.progress = rec->explorer->progress();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      s.done = rec->done;
      s.ok = rec->ok;
      s.error = rec->error;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t ExploreManager::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

}  // namespace lo::explore
