#include "explore/service_ops.hpp"

#include <stdexcept>

#include "explore/export.hpp"
#include "service/serialize.hpp"

namespace lo::explore {

namespace {

using service::Json;

Json outcomeToJson(const ExploreManager::Outcome& outcome, bool includeCsv) {
  Json out = Json::object();
  out.set("ok", outcome.ok);
  out.set("explore_id", outcome.id);
  if (!outcome.ok) {
    out.set("error", outcome.error);
    return out;
  }
  Json front = frontJson(outcome.result, outcome.space, outcome.options);
  for (const auto& [key, value] : front.members()) out.set(key, value);
  if (includeCsv) out.set("csv", frontCsv(outcome.result, outcome.space));
  return out;
}

}  // namespace

ExploreSpace spaceFromJson(const Json& request) {
  ExploreSpace space;
  if (const Json* topology = request.find("topology")) {
    space.engineOptions.topology = topology->asString();
  }
  if (const Json* sizingCase = request.find("case")) {
    space.engineOptions.sizingCase = service::sizingCaseFromJson(*sizingCase);
  }
  if (const Json* model = request.find("model")) {
    space.engineOptions.modelName = model->asString();
  }
  if (const Json* bias = request.find("bias")) {
    space.engineOptions.includeBiasGenerator = bias->asBool();
  }
  if (const Json* corner = request.find("corner")) {
    space.corner = service::cornerFromName(corner->asString());
  }
  if (const Json* spec = request.find("spec")) {
    service::specsFromJson(*spec, space.base);
  }
  const Json* axes = request.find("axes");
  if (axes == nullptr || !axes->isArray() || axes->items().empty()) {
    throw std::invalid_argument("\"explore\" needs a non-empty \"axes\" array");
  }
  for (const Json& entry : axes->items()) {
    SpecAxis axis;
    axis.field = entry.at("field").asString();
    axis.lo = entry.at("lo").asDouble();
    axis.hi = entry.at("hi").asDouble();
    axis.points = entry.at("points").asInt(3);
    space.axes.push_back(std::move(axis));
  }
  validateSpace(space);
  return space;
}

ExploreOptions optionsFromJson(const Json& request) {
  ExploreOptions options;
  if (const Json* budget = request.find("budget")) {
    options.budget = budget->asInt();
  }
  if (const Json* rounds = request.find("max_rounds")) {
    options.maxRounds = rounds->asInt();
  }
  if (const Json* tolerance = request.find("tolerance")) {
    options.specTolerance = tolerance->asDouble();
  }
  if (const Json* rpl = request.find("require_post_layout")) {
    options.requirePostLayout = rpl->asBool();
  }
  if (const Json* objectives = request.find("objectives")) {
    if (!objectives->isArray() || objectives->items().empty()) {
      throw std::invalid_argument("\"objectives\" must be a non-empty array");
    }
    options.objectives.clear();
    for (const Json& name : objectives->items()) {
      options.objectives.push_back(objectiveFromName(name.asString()));
    }
  }
  options.priority = request.at("priority").asInt();
  options.deadlineSeconds = request.at("deadline_seconds").asDouble();
  if (options.budget <= 0) {
    throw std::invalid_argument("\"budget\" must be positive");
  }
  if (options.maxRounds < 0) {
    throw std::invalid_argument("\"max_rounds\" must be non-negative");
  }
  return options;
}

Json exploreRequestJson(const ExploreSpace& space, const ExploreOptions& options) {
  Json req = Json::object();
  req.set("op", "explore");
  req.set("topology", space.engineOptions.topology);
  req.set("case", core::sizingCaseName(space.engineOptions.sizingCase));
  req.set("model", space.engineOptions.modelName);
  req.set("bias", space.engineOptions.includeBiasGenerator);
  req.set("corner", tech::cornerName(space.corner));
  req.set("spec", service::toJson(space.base));
  Json axes = Json::array();
  for (const SpecAxis& axis : space.axes) {
    Json a = Json::object();
    a.set("field", axis.field);
    a.set("lo", axis.lo);
    a.set("hi", axis.hi);
    a.set("points", axis.points);
    axes.push(std::move(a));
  }
  req.set("axes", std::move(axes));
  req.set("budget", options.budget);
  req.set("max_rounds", options.maxRounds);
  req.set("tolerance", options.specTolerance);
  req.set("require_post_layout", options.requirePostLayout);
  Json objectives = Json::array();
  for (const Objective o : options.objectives) {
    objectives.push(std::string(objectiveName(o)));
  }
  req.set("objectives", std::move(objectives));
  req.set("priority", options.priority);
  req.set("deadline_seconds", options.deadlineSeconds);
  return req;
}

void installExploreOps(service::ServiceProtocol& protocol, ExploreManager& manager) {
  protocol.registerOp("explore", [&manager](const Json& request) {
    const ExploreSpace space = spaceFromJson(request);
    const ExploreOptions options = optionsFromJson(request);
    const std::uint64_t id = manager.start(space, options);
    if (request.at("async").asBool()) {
      Json out = Json::object();
      out.set("ok", true);
      out.set("explore_id", id);
      out.set("state", "running");
      return out;
    }
    return outcomeToJson(manager.wait(id), request.at("csv").asBool());
  });

  protocol.registerOp("explore_result", [&manager](const Json& request) {
    const std::uint64_t id = request.at("explore_id").asUint64();
    if (id == 0) {
      throw std::invalid_argument(
          "\"explore_result\" needs a numeric \"explore_id\"");
    }
    return outcomeToJson(manager.wait(id), request.at("csv").asBool());
  });

  if (manager.journalEnabled()) {
    protocol.registerStatsSection("explore_journal", [&manager] {
      Json j = Json::object();
      j.set("appended", manager.journal()->appended());
      j.set("records_in_log", manager.journal()->recordsInLog());
      j.set("compactions", manager.journal()->compactions());
      j.set("recovered_sessions", manager.recoveredSessions());
      return j;
    });
  }

  protocol.registerStatsSection("explorations", [&manager] {
    Json list = Json::array();
    for (const ExploreManager::Snapshot& s : manager.snapshots()) {
      Json entry = Json::object();
      entry.set("id", s.id);
      entry.set("phase", explorePhaseName(s.progress.phase));
      entry.set("evaluated", static_cast<double>(s.progress.evaluated));
      entry.set("budget", static_cast<double>(s.progress.budget));
      entry.set("round", static_cast<double>(s.progress.round));
      entry.set("front_size", static_cast<double>(s.progress.frontSize));
      entry.set("feasible", static_cast<double>(s.progress.feasibleCount));
      entry.set("cache_hits", static_cast<double>(s.progress.cacheHits));
      entry.set("done", s.done);
      if (s.done && !s.ok) entry.set("error", s.error);
      list.push(std::move(entry));
    }
    return list;
  });
}

}  // namespace lo::explore
