#include "explore/space.hpp"

#include <algorithm>
#include <stdexcept>

#include "service/json.hpp"
#include "service/serialize.hpp"

namespace lo::explore {

void validateSpace(const ExploreSpace& space) {
  if (space.axes.empty()) {
    throw std::invalid_argument("explore space has no axes");
  }
  if (space.axes.size() > 4) {
    throw std::invalid_argument("explore space has more than 4 axes");
  }
  const auto& known = service::specFieldNames();
  for (const SpecAxis& axis : space.axes) {
    if (std::find(known.begin(), known.end(), axis.field) == known.end()) {
      throw std::invalid_argument("unknown spec axis field \"" + axis.field + "\"");
    }
    if (!(axis.hi > axis.lo)) {
      throw std::invalid_argument("axis \"" + axis.field +
                                  "\": hi must be greater than lo");
    }
    if (axis.points < 2) {
      throw std::invalid_argument("axis \"" + axis.field +
                                  "\": needs at least 2 grid points");
    }
  }
  for (std::size_t i = 0; i < space.axes.size(); ++i) {
    for (std::size_t j = i + 1; j < space.axes.size(); ++j) {
      if (space.axes[i].field == space.axes[j].field) {
        throw std::invalid_argument("duplicate spec axis \"" +
                                    space.axes[i].field + "\"");
      }
    }
  }
}

std::string coordKey(const std::vector<double>& coords) {
  std::string key;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (i) key += ',';
    key += service::Json::formatNumber(coords[i]);
  }
  return key;
}

sizing::OtaSpecs specsAt(const ExploreSpace& space,
                         const std::vector<double>& coords) {
  sizing::OtaSpecs specs = space.base;
  for (std::size_t k = 0; k < space.axes.size(); ++k) {
    service::setSpecField(specs, space.axes[k].field, coords[k]);
  }
  return specs;
}

namespace {

/// Row-major walk over a per-axis list of candidate values (last axis
/// fastest), the one deterministic ordering every grid here uses.
std::vector<std::vector<double>> crossProduct(
    const std::vector<std::vector<double>>& axisValues) {
  std::vector<std::vector<double>> out;
  std::size_t total = 1;
  for (const auto& vals : axisValues) total *= vals.size();
  out.reserve(total);
  std::vector<std::size_t> idx(axisValues.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    std::vector<double> point(axisValues.size());
    for (std::size_t k = 0; k < axisValues.size(); ++k) {
      point[k] = axisValues[k][idx[k]];
    }
    out.push_back(std::move(point));
    for (std::size_t k = axisValues.size(); k-- > 0;) {
      if (++idx[k] < axisValues[k].size()) break;
      idx[k] = 0;
    }
  }
  return out;
}

std::vector<double> axisTicks(const SpecAxis& axis) {
  std::vector<double> ticks(static_cast<std::size_t>(axis.points));
  const double step = (axis.hi - axis.lo) / (axis.points - 1);
  for (int i = 0; i < axis.points; ++i) {
    ticks[static_cast<std::size_t>(i)] =
        (i == axis.points - 1) ? axis.hi : axis.lo + step * i;
  }
  return ticks;
}

}  // namespace

std::vector<std::vector<double>> seedGrid(const ExploreSpace& space) {
  std::vector<std::vector<double>> axisValues;
  axisValues.reserve(space.axes.size());
  for (const SpecAxis& axis : space.axes) axisValues.push_back(axisTicks(axis));
  return crossProduct(axisValues);
}

std::vector<Cell> seedCells(const ExploreSpace& space) {
  std::vector<std::vector<double>> lows;
  std::vector<std::vector<double>> ticksPerAxis;
  ticksPerAxis.reserve(space.axes.size());
  for (const SpecAxis& axis : space.axes) ticksPerAxis.push_back(axisTicks(axis));

  // A cell per interval on each axis: cross product of interval indices.
  std::vector<std::vector<double>> intervalStarts;
  intervalStarts.reserve(ticksPerAxis.size());
  for (const auto& ticks : ticksPerAxis) {
    std::vector<double> starts(ticks.begin(), ticks.end() - 1);
    intervalStarts.push_back(std::move(starts));
  }
  const auto startPoints = crossProduct(intervalStarts);

  std::vector<Cell> cells;
  cells.reserve(startPoints.size());
  for (const auto& start : startPoints) {
    Cell cell;
    cell.lo = start;
    cell.hi.resize(start.size());
    for (std::size_t k = 0; k < start.size(); ++k) {
      const auto& ticks = ticksPerAxis[k];
      const auto it = std::find(ticks.begin(), ticks.end(), start[k]);
      cell.hi[k] = *(it + 1);
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<std::vector<double>> cellCorners(const Cell& cell) {
  std::vector<std::vector<double>> axisValues;
  axisValues.reserve(cell.lo.size());
  for (std::size_t k = 0; k < cell.lo.size(); ++k) {
    axisValues.push_back({cell.lo[k], cell.hi[k]});
  }
  return crossProduct(axisValues);
}

std::vector<std::vector<double>> cellLattice(const Cell& cell) {
  std::vector<std::vector<double>> axisValues;
  axisValues.reserve(cell.lo.size());
  for (std::size_t k = 0; k < cell.lo.size(); ++k) {
    const double mid = 0.5 * (cell.lo[k] + cell.hi[k]);
    axisValues.push_back({cell.lo[k], mid, cell.hi[k]});
  }
  return crossProduct(axisValues);
}

std::vector<Cell> splitCell(const Cell& cell) {
  std::vector<std::vector<double>> starts;
  starts.reserve(cell.lo.size());
  for (std::size_t k = 0; k < cell.lo.size(); ++k) {
    const double mid = 0.5 * (cell.lo[k] + cell.hi[k]);
    starts.push_back({cell.lo[k], mid});
  }
  const auto startPoints = crossProduct(starts);

  std::vector<Cell> children;
  children.reserve(startPoints.size());
  for (const auto& start : startPoints) {
    Cell child;
    child.lo = start;
    child.hi.resize(start.size());
    child.level = cell.level + 1;
    for (std::size_t k = 0; k < start.size(); ++k) {
      const double mid = 0.5 * (cell.lo[k] + cell.hi[k]);
      child.hi[k] = (start[k] == cell.lo[k]) ? mid : cell.hi[k];
    }
    children.push_back(std::move(child));
  }
  return children;
}

}  // namespace lo::explore
