// SessionJournal: the explore-session write-ahead log -- what makes a
// long-running exploration survive the death of the process (or cluster
// shard) that was driving it.
//
// It reuses service::FramedLog, so the on-disk format is exactly the job
// journal's: checksummed frames, durable appends, torn-tail truncation to
// the last good frame boundary.  The record types are:
//
//   started   the full explore request (space + options, request-shaped
//             JSON) -- appended durably *before* the exploration launches,
//             so an acknowledged session is never lost;
//   progress  evaluated count, front size and a front digest -- appended
//             non-durably after each evaluation batch (cheap breadcrumbs
//             for health/stats, not needed for recovery);
//   finished  terminal verdict (ok/error) plus the final front digest --
//             appended durably when the session completes.
//
// Recovery leans on the explorer's core determinism property: a
// trajectory is a pure function of (space, options), and every evaluated
// point lives in the content-addressed result cache.  So "restoring" a
// session is simply re-running its started record -- all completed
// evaluations replay as cache hits (fast-forward), and the re-run front
// is byte-identical to what the dead process would have produced.  The
// progress/finished digests exist to *prove* that equality, not to seed
// state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/journal.hpp"

namespace lo::explore {

enum class SessionRecordType { kStarted, kProgress, kFinished };

[[nodiscard]] constexpr const char* sessionRecordTypeName(SessionRecordType t) {
  switch (t) {
    case SessionRecordType::kStarted: return "started";
    case SessionRecordType::kProgress: return "progress";
    case SessionRecordType::kFinished: return "finished";
  }
  return "?";
}

/// Inverse of sessionRecordTypeName; throws std::invalid_argument.
[[nodiscard]] SessionRecordType sessionRecordTypeFromName(const std::string& name);

struct SessionRecord {
  SessionRecordType type = SessionRecordType::kStarted;
  std::uint64_t id = 0;       ///< Manager exploration id; stable across restarts.
  service::Json request;      ///< The explore request (kStarted only).
  int evaluated = 0;          ///< Points evaluated so far (kProgress/kFinished).
  int frontSize = 0;          ///< Archive front size (kProgress/kFinished).
  std::uint64_t frontDigest = 0;  ///< FNV-1a over the front's point keys.
  bool ok = false;            ///< Terminal verdict (kFinished only).
  std::string error;          ///< Failure text when !ok (kFinished only).

  [[nodiscard]] service::Json toJson() const;
  [[nodiscard]] static SessionRecord fromJson(const service::Json& j);
};

/// Digest of the archive front for progress/finished records: FNV-1a over
/// the sorted point keys.  Two runs of the same (space, options) produce
/// the same digest -- the failover smoke's byte-identity check in hash form.
[[nodiscard]] std::uint64_t frontDigestOf(const std::vector<std::string>& frontKeys);

struct SessionJournalOptions {
  /// Directory holding the log (created if missing).  Must be non-empty;
  /// shares the job journal's directory in the daemon (explore.wal next to
  /// journal.wal).
  std::string dir;
  bool fsyncEachRecord = true;
};

/// What a replay found.  `pending` holds the started records with no
/// finished counterpart -- the sessions a dead process still owed results
/// for, each carrying the request needed to re-run it.
struct SessionReplay {
  std::vector<SessionRecord> records;
  std::vector<SessionRecord> pending;
  std::uint64_t finished = 0;
  std::uint64_t maxId = 0;
  bool tornTail = false;
  std::uint64_t truncatedBytes = 0;
};

class SessionJournal {
 public:
  explicit SessionJournal(SessionJournalOptions options);

  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  /// Read the log, truncating a torn tail, and return the digest.  Same
  /// contract as JobJournal::replay().
  [[nodiscard]] SessionReplay replay();

  /// Parse a session journal read-only (no truncation, no side effects).
  [[nodiscard]] static SessionReplay replayFile(const std::string& path);

  /// Append one record; durable appends fsync before returning.
  void append(const SessionRecord& record, bool durable = true);

  /// Rewrite the log to exactly `live` (the started records of sessions
  /// still running), dropping finished history.
  void compact(const std::vector<SessionRecord>& live);

  /// Test seam: drop every subsequent append, as if the process died now.
  void simulateCrash() { log_.freeze(); }

  [[nodiscard]] std::string logPath() const { return log_.path(); }
  [[nodiscard]] std::uint64_t recordsInLog() const { return log_.recordsInLog(); }
  [[nodiscard]] std::uint64_t appended() const { return log_.appended(); }
  [[nodiscard]] std::uint64_t compactions() const { return log_.compactions(); }

 private:
  service::FramedLog log_;
};

}  // namespace lo::explore
