// Front exporters: CSV for plotting, JSON for the daemon protocol and the
// experiment logs.  Both use the exact-round-trip number formatting, so
// identical explorations produce byte-identical exports.
#pragma once

#include <string>

#include "explore/explore.hpp"
#include "service/json.hpp"

namespace lo::explore {

/// One row per front point: the axis columns (named after the swept spec
/// fields), then power_mw, area_um2, noise_uv, gbw_hz, phase_margin_deg,
/// slew_rate_v_per_us.
[[nodiscard]] std::string frontCsv(const ExploreResult& result,
                                   const ExploreSpace& space);

/// {"axes": [...], "objectives": [...], "front": [...], "evaluations": N,
///  "cache_hits": N, "rounds": N, "seed_front_size": N,
///  "budget_exhausted": bool} -- the payload the daemon's `explore` op
/// returns.
[[nodiscard]] service::Json frontJson(const ExploreResult& result,
                                      const ExploreSpace& space,
                                      const ExploreOptions& options);

}  // namespace lo::explore
