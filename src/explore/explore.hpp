// The design-space explorer: coarse grid seeding plus adaptive cell
// refinement over the synthesis service.
//
// Every candidate point is one synthesis job submitted through a
// service::JobScheduler, so exploration inherits the service layer's
// coalescing, result cache, retries, deadlines and metrics for free.  The
// budget counts *distinct evaluated points* -- cache hits included -- so a
// run's trajectory is a pure function of (space, options); warm caches
// change wall-clock time, never the result.
//
// Phase 1 (seed) evaluates the row-major coarse grid.  Phase 2 (refine)
// repeatedly bisects the "interesting" cells: a cell whose corners are all
// evaluated and either disagree on feasibility (the feasibility boundary
// runs through it) or touch the current Pareto front (the trade-off is
// locally active).  Each refined cell contributes its 3^d lattice of new
// points and is replaced by its 2^d children.  Rounds stop when the
// budget is exhausted, no cell is interesting, or maxRounds is reached.
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "explore/pareto.hpp"
#include "explore/space.hpp"
#include "service/scheduler.hpp"

namespace lo::explore {

struct ExploreOptions {
  /// Maximum number of distinct points evaluated (seed + refinement).
  int budget = 64;
  /// Maximum refinement rounds after the seed phase.
  int maxRounds = 8;
  /// Objectives the archive minimises (defaults to power/area/noise).
  std::vector<Objective> objectives = allObjectives();
  /// Relative slack on the spec targets when judging feasibility: a point
  /// is feasible when measured GBW and phase margin reach (1 - tol) of the
  /// specs it was synthesised for.
  double specTolerance = 0.02;
  /// Run the post-layout verification tier on every candidate and only
  /// admit points to the front whose extracted netlist passed it.  Costs
  /// extra simulations per point; off by default.
  bool requirePostLayout = false;
  int priority = 0;            ///< Forwarded to every submitted job.
  double deadlineSeconds = 0;  ///< Per-job deadline; 0 = none.
};

enum class ExplorePhase { kPending, kSeed, kRefine, kDone };

[[nodiscard]] constexpr const char* explorePhaseName(ExplorePhase p) {
  switch (p) {
    case ExplorePhase::kPending: return "pending";
    case ExplorePhase::kSeed: return "seed";
    case ExplorePhase::kRefine: return "refine";
    case ExplorePhase::kDone: return "done";
  }
  return "?";
}

/// Live snapshot, safe to read from another thread while run() executes
/// (the daemon's `stats` op reports these).
struct ExploreProgress {
  ExplorePhase phase = ExplorePhase::kPending;
  int evaluated = 0;     ///< Distinct points evaluated so far.
  int budget = 0;
  int round = 0;         ///< Current refinement round (0 during seed).
  int frontSize = 0;
  int feasibleCount = 0;
  int cacheHits = 0;
};

struct ExploreResult {
  std::vector<PointEval> points;     ///< Every evaluated point, sorted by key.
  std::vector<PointEval> front;      ///< Final non-dominated feasible set.
  std::vector<PointEval> seedFront;  ///< Front snapshot after the seed phase.
  int evaluations = 0;
  int cacheHits = 0;
  int rounds = 0;                 ///< Refinement rounds actually run.
  bool budgetExhausted = false;   ///< Stopped because the budget ran out.
};

class Explorer {
 public:
  /// Invoked on run()'s thread after every evaluation batch (and once more
  /// when the run completes) with the live progress and the current
  /// archive front keys.  The explore session journal hangs its progress
  /// breadcrumbs off this; must not call back into the explorer.
  using ProgressCallback = std::function<void(
      const ExploreProgress&, const std::vector<std::string>& frontKeys)>;

  /// The scheduler must outlive the explorer; its engine configuration is
  /// taken from space.engineOptions per job.
  Explorer(service::JobScheduler& scheduler, ExploreSpace space,
           ExploreOptions options = {}, ProgressCallback onProgress = {});

  /// Run the full exploration (blocking).  Throws std::invalid_argument on
  /// a degenerate space or non-positive budget.  Not re-entrant.
  [[nodiscard]] ExploreResult run();

  [[nodiscard]] ExploreProgress progress() const;

  [[nodiscard]] const ExploreSpace& space() const { return space_; }
  [[nodiscard]] const ExploreOptions& options() const { return options_; }

 private:
  /// Evaluate every not-yet-seen coordinate in `coords` (deduplicated, in
  /// order) up to the remaining budget.  Returns false when the budget cut
  /// the batch short.
  bool evaluateBatch(const std::vector<std::vector<double>>& coords);
  [[nodiscard]] PointEval makeEval(const std::vector<double>& coords,
                                   const service::JobStatus& status) const;
  [[nodiscard]] int remainingBudget() const;
  void notifyProgress() const;  ///< Fire onProgress_ with a fresh snapshot.

  service::JobScheduler& scheduler_;
  ExploreSpace space_;
  ExploreOptions options_;
  ProgressCallback onProgress_;
  ParetoArchive archive_;

  /// Every evaluated point, keyed canonically; only run()'s thread writes.
  std::map<std::string, PointEval> evals_;

  mutable std::mutex progressMutex_;
  ExploreProgress progress_;
};

}  // namespace lo::explore
