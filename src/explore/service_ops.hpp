// Protocol glue: installs the exploration ops into a ServiceProtocol via
// its extension seam, so losynthd gains
//
//   explore         start an exploration; {"async":true} returns the
//                   exploration id immediately, otherwise blocks and
//                   returns the front
//   explore_result  block until an exploration finishes and return its
//                   front ({"csv":true} adds the CSV export)
//
// plus an "explorations" section in the `stats` response with each
// exploration's live phase / evaluated / front-size counters.  The
// dependency points explore -> service only; the protocol knows nothing
// about this library.
#pragma once

#include "explore/manager.hpp"
#include "service/protocol.hpp"

namespace lo::explore {

/// Parse the space/options fields of an `explore` request (topology, case,
/// model, corner, spec, axes, budget, max_rounds, objectives, tolerance,
/// priority, deadline_seconds).  Throws std::invalid_argument on missing
/// or malformed fields; shared with the loexplore CLI's config file.
[[nodiscard]] ExploreSpace spaceFromJson(const service::Json& request);
[[nodiscard]] ExploreOptions optionsFromJson(const service::Json& request);

/// Inverse of spaceFromJson/optionsFromJson: serialise a space + options
/// back into the request shape they parse.  Round trips are exact (the
/// doubles survive bit-identically), so the explore session journal can
/// store a session as its request and re-run it verbatim after a crash or
/// a shard failover.
[[nodiscard]] service::Json exploreRequestJson(const ExploreSpace& space,
                                               const ExploreOptions& options);

/// Register the ops and the stats section.  Both objects must outlive the
/// protocol's serving loop.
void installExploreOps(service::ServiceProtocol& protocol, ExploreManager& manager);

}  // namespace lo::explore
