// The explorable spec space: named spec axes over a base specification,
// plus the grid / cell machinery the adaptive refinement walks.
//
// A point is a coordinate vector (one value per axis); its canonical key
// is the exact-round-trip text of those values, so two visits to the same
// coordinates -- in either exploration phase, or across re-runs -- always
// collapse to one evaluation and one cache entry.  Cells are the axis-
// aligned boxes between adjacent evaluated coordinates; refinement bisects
// a cell on every axis at once (the 3^d lattice of corner/edge/centre
// midpoints) and replaces it with its 2^d children.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"

namespace lo::explore {

/// One swept spec dimension, by protocol field name ("gbw", "cload", ...).
struct SpecAxis {
  std::string field;
  double lo = 0.0;
  double hi = 0.0;
  int points = 3;  ///< Coarse-grid samples on this axis (>= 2).
};

/// Everything that defines an exploration's search space: the synthesis
/// configuration (topology, sizing case, model, corner), the base specs
/// every point starts from, and the swept axes.
struct ExploreSpace {
  core::EngineOptions engineOptions;
  tech::ProcessCorner corner = tech::ProcessCorner::kTypical;
  sizing::OtaSpecs base;
  std::vector<SpecAxis> axes;
};

/// Throws std::invalid_argument on an empty/degenerate space (no axes,
/// unknown field names, hi <= lo, points < 2, more than 4 axes).
void validateSpace(const ExploreSpace& space);

/// Canonical key for a coordinate vector (exact-round-trip doubles joined
/// with ','), used for dedup, archive ordering and reproducibility.
[[nodiscard]] std::string coordKey(const std::vector<double>& coords);

/// The specs at a grid point: base specs with each axis field overridden.
[[nodiscard]] sizing::OtaSpecs specsAt(const ExploreSpace& space,
                                       const std::vector<double>& coords);

/// The coarse seed grid in deterministic row-major order (last axis
/// fastest): points[i][k] is the value on axis k.
[[nodiscard]] std::vector<std::vector<double>> seedGrid(const ExploreSpace& space);

/// An axis-aligned box in the spec space, tracked by the refiner.
struct Cell {
  std::vector<double> lo;  ///< Per-axis lower corner.
  std::vector<double> hi;  ///< Per-axis upper corner.
  int level = 0;           ///< Bisection depth (seed cells are level 0).
};

/// The seed grid's cells in deterministic row-major order.
[[nodiscard]] std::vector<Cell> seedCells(const ExploreSpace& space);

/// The cell's 2^d corner coordinates, row-major.
[[nodiscard]] std::vector<std::vector<double>> cellCorners(const Cell& cell);

/// The full 3^d refinement lattice over {lo, mid, hi} per axis, row-major
/// (includes the corners; callers skip already-evaluated points).
[[nodiscard]] std::vector<std::vector<double>> cellLattice(const Cell& cell);

/// The 2^d child cells produced by bisecting every axis, row-major.
[[nodiscard]] std::vector<Cell> splitCell(const Cell& cell);

}  // namespace lo::explore
